//! Sensor-network scenario: a self-join that finds pairs of near-identical
//! readings while the value distribution drifts over time (e.g. a temperature
//! front moving through a sensor field).
//!
//! This exercises the part of the PIM-Tree design that the paper studies in
//! Figures 13a/13b: partition ranges adapt to the distribution at every
//! merge, so a *slow* drift is absorbed gracefully while a *fast* drift
//! temporarily skews the partition load and costs throughput until the next
//! merges re-balance it. The example reports, per drift speed, the insert
//! skew across sub-indexes and the achieved throughput.
//!
//! ```sh
//! cargo run --release --example sensor_drift
//! ```

use pimtree::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let window = 1usize << 15;
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8);
    let dist = KeyDistribution::gaussian_paper();
    let diff = calibrate_diff(dist, window, 2.0, 11);
    let predicate = BandPredicate::new(diff);
    println!("self-join over drifting sensor readings (window {window}, band ±{diff})");
    println!(
        "{:<8} {:>12} {:>16} {:>14}",
        "drift r", "Mtuples/s", "hottest part.", "idle partitions"
    );

    for r in [0.0, 0.2, 0.6, 1.0] {
        let mut rng = StdRng::seed_from_u64(11);
        let drift = ShiftingGaussian::scaled(r, window, 4 * window, window);
        let readings: Vec<Tuple> = drift
            .generate(&mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, key)| Tuple::r(i as u64, key))
            .collect();

        // Throughput of the parallel self-join over the whole three-phase trace.
        let config = JoinConfig::symmetric(window, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(8)
            .with_pim(PimConfig::for_window(window).with_insertion_depth(4));
        let join = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, true);
        let (stats, _) = join.run(&readings);

        // Insert skew across sub-indexes, measured on a standalone PIM-Tree
        // driven through the same trace (mirrors Figure 13a).
        let pim = PimTree::new(PimConfig::for_window(window).with_insertion_depth(4));
        for (i, t) in readings.iter().enumerate() {
            pim.insert(t.key, t.seq);
            if pim.needs_merge() {
                pim.merge((i + 1).saturating_sub(window) as u64);
            }
            if i + 1 == window {
                // Ignore the initial fill (everything lands in one partition
                // while TS is still empty); measure skew from here on.
                pim.reset_insert_histogram();
            }
        }
        let hist = pim.insert_histogram();
        let total: u64 = hist.iter().sum::<u64>().max(1);
        let mean = total as f64 / hist.len().max(1) as f64;
        let hottest = *hist.iter().max().unwrap_or(&0) as f64 / total as f64;
        let idle = hist.iter().filter(|&&c| (c as f64) < 0.01 * mean).count();

        println!(
            "{:<8.1} {:>12.2} {:>15.1}% {:>13}/{}",
            r,
            stats.million_tuples_per_second(),
            hottest * 100.0,
            idle,
            hist.len()
        );
    }
    println!(
        "\nslow drifts keep the load spread out; fast drifts funnel inserts into few partitions"
    );
}
