//! Algorithmic-trading scenario: correlate two order streams whose prices lie
//! within a spread of each other (the paper's motivating band-join use case).
//!
//! Stream `R` carries buy orders, stream `S` carries sell orders; a pair is
//! reported whenever the two prices differ by at most `SPREAD` ticks while
//! both orders are inside their sliding windows. The example compares the
//! index choices a practitioner has: no index (NLWJ), a single B+-Tree, and
//! the PIM-Tree.
//!
//! ```sh
//! cargo run --release --example trading_band_join
//! ```

use pimtree::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPREAD: i64 = 3;

/// Generates an order stream whose price follows a slowly drifting mid-price
/// with Gaussian noise — a crude but serviceable stand-in for tick data.
fn order_stream(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mid: f64 = 10_000.0;
    let mut seqs = [0u64, 0u64];
    (0..n)
        .map(|_| {
            mid += rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-50.0..50.0);
            let price = (mid + noise).round() as Key;
            let side = if rng.gen::<bool>() {
                StreamSide::R
            } else {
                StreamSide::S
            };
            let seq = seqs[side.index()];
            seqs[side.index()] += 1;
            Tuple::new(side, seq, price)
        })
        .collect()
}

fn main() {
    let window = 1usize << 15; // ~32k resting orders per side
    let orders = order_stream(6 * window, 7);
    let predicate = BandPredicate::new(SPREAD);
    println!(
        "correlating {} orders, window {} per side, spread ±{SPREAD} ticks",
        orders.len(),
        window
    );

    for kind in [IndexKind::None, IndexKind::BTree, IndexKind::PimTree] {
        let config = JoinConfig::symmetric(window, kind)
            .with_pim(PimConfig::for_window(window).with_merge_ratio(1.0 / 8.0));
        let mut op = build_single_threaded(&config, predicate, false);
        // NLWJ is quadratic-ish; give it a shorter prefix so the demo stays snappy.
        let slice: &[Tuple] = if kind == IndexKind::None {
            &orders[..window]
        } else {
            &orders
        };
        let (stats, _) = op.run(slice, false);
        println!(
            "  {:<22} {:>8.2} M orders/s   ({} matched pairs, match rate {:.2})",
            op.name(),
            stats.million_tuples_per_second(),
            stats.results,
            stats.observed_match_rate()
        );
    }

    // The parallel engine is what you would deploy: same semantics, every core busy.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8);
    let config = JoinConfig::symmetric(window, IndexKind::PimTree)
        .with_threads(threads)
        .with_task_size(8)
        .with_pim(PimConfig::for_window(window));
    let parallel = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false);
    let (stats, _) = parallel.run(&orders);
    println!(
        "  parallel ibwj/pim-tree {:>8.2} M orders/s on {threads} threads   ({} matched pairs)",
        stats.million_tuples_per_second(),
        stats.results
    );
}
