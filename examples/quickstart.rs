//! Quickstart: run a parallel index-based band join over two synthetic
//! streams and print its throughput, latency and a few sample results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pimtree::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Workload: two uniform integer streams, window of 2^16 tuples per
    //    stream, band predicate calibrated so each probe matches ~2 tuples.
    let window = 1usize << 16;
    let tuples_to_process = 4 * window;
    let dist = KeyDistribution::uniform();
    let diff = calibrate_diff(dist, window, 2.0, 42);
    let predicate = BandPredicate::new(diff);
    let mut rng = StdRng::seed_from_u64(42);
    let mut generator = StreamGenerator::new(dist, StreamMix::symmetric());
    let tuples = generator.generate(&mut rng, tuples_to_process);
    println!(
        "workload: {} tuples, window 2^16 per stream, band half-width {diff}",
        tuples.len()
    );

    // 2. Operator: the paper's parallel IBWJ over a shared PIM-Tree per
    //    window, with non-blocking merges and dynamic task scheduling.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8);
    let config = JoinConfig::symmetric(window, IndexKind::PimTree)
        .with_threads(threads)
        .with_task_size(8)
        .with_pim(PimConfig::for_window(window).with_insertion_depth(3));
    let join = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
        .with_collected_results(true);

    // 3. Run and report.
    let (stats, results) = join.run(&tuples);
    println!(
        "processed {} tuples on {threads} threads in {:.3}s -> {:.2} M tuples/s",
        stats.tuples,
        stats.elapsed.as_secs_f64(),
        stats.million_tuples_per_second()
    );
    println!(
        "results: {} pairs (match rate {:.2}), mean latency {:.1} µs, merges {}",
        stats.results,
        stats.observed_match_rate(),
        stats.latency.mean_micros(),
        stats.merges
    );
    for r in results.iter().take(5) {
        let (a, b) = r.as_r_s();
        println!(
            "  sample result: R(seq={}, x={}) ⋈ S(seq={}, x={})",
            a.seq, a.key, b.seq, b.key
        );
    }

    // 4. The same join single-threaded, for comparison.
    let st_config = JoinConfig::symmetric(window, IndexKind::PimTree)
        .with_pim(PimConfig::for_window(window).with_merge_ratio(1.0 / 8.0));
    let mut single = build_single_threaded(&st_config, predicate, false);
    let (st_stats, _) = single.run(&tuples, false);
    println!(
        "single-threaded PIM-Tree baseline: {:.2} M tuples/s (speed-up {:.1}x)",
        st_stats.million_tuples_per_second(),
        stats.million_tuples_per_second() / st_stats.million_tuples_per_second().max(1e-9)
    );
}
