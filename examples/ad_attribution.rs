//! Ad attribution with a time-based window join.
//!
//! Stream `R` carries ad impressions, stream `S` carries clicks; both are
//! keyed by a (coarsened) user identifier. A click is attributed to an
//! impression for the same user shown within the last 30 seconds. This is the
//! classic event-time band join (here with `diff = 0`, i.e. an equality band)
//! and demonstrates the paper's claim that the PIM-Tree approach applies to
//! time-based sliding windows as-is.
//!
//! ```sh
//! cargo run --release --example ad_attribution
//! ```

use pimtree::common::BandPredicate;
use pimtree::join::{TimeBasedIbwj, TimedStreamTuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Window: 30 seconds of event time, in milliseconds.
    let window_ms = 30_000u64;
    // Impressions arrive at ~2 kHz, clicks at ~200 Hz.
    let users = 5_000i64;
    let total_events = 400_000usize;

    let mut rng = StdRng::seed_from_u64(7);
    let mut now_ms = 0u64;
    let mut events = Vec::with_capacity(total_events);
    for _ in 0..total_events {
        now_ms += rng.gen_range(0..=1u64);
        let user = rng.gen_range(0..users);
        if rng.gen_bool(0.9) {
            events.push(TimedStreamTuple::r(user, now_ms)); // impression
        } else {
            events.push(TimedStreamTuple::s(user, now_ms)); // click
        }
    }

    // Equality on the user id: band half-width zero. The expected tuples per
    // window estimate sizes the PIM-Tree merge cadence.
    let expected_per_window = 60_000;
    let mut join = TimeBasedIbwj::new(window_ms, expected_per_window, BandPredicate::new(0));

    let start = std::time::Instant::now();
    let (stats, results) = join.run(&events);
    let elapsed = start.elapsed();

    let impressions = events
        .iter()
        .filter(|e| e.side == pimtree::common::StreamSide::R)
        .count();
    let clicks = events.len() - impressions;
    println!(
        "replayed {} events ({} impressions, {} clicks) spanning {:.1}s of event time",
        events.len(),
        impressions,
        clicks,
        now_ms as f64 / 1e3
    );
    println!(
        "processed in {:.3}s wall time -> {:.2} M events/s, {} merges",
        elapsed.as_secs_f64(),
        stats.million_tuples_per_second(),
        stats.merges
    );
    println!(
        "attributed pairs: {} ({:.2} per click on average)",
        stats.results,
        stats.results as f64 / clicks.max(1) as f64
    );

    // Show a few attributions: click (probe on S) matched with the impression
    // it is attributed to.
    let mut shown = 0;
    for r in results
        .iter()
        .filter(|r| r.probe.side == pimtree::common::StreamSide::S)
    {
        println!(
            "  click by user {:>5} attributed to impression #{} of the same user",
            r.probe.key, r.matched.seq
        );
        shown += 1;
        if shown == 5 {
            break;
        }
    }
}
