//! Spatial ride matching with the multidimensional PIM-Tree.
//!
//! Stream `R` carries driver position updates, stream `S` carries ride
//! requests, both as points on a 2^16 x 2^16 city grid. A request matches
//! every driver whose last update within the window lies inside a rectangle
//! around the pickup point (and vice versa: a driver update matches nearby
//! open requests). This exercises the multidimensional extension the paper
//! lists as future work: Z-order mapped points indexed by an unmodified
//! PIM-Tree.
//!
//! ```sh
//! cargo run --release --example rideshare_matching
//! ```

use pimtree::common::StreamSide;
use pimtree::multidim::{MdBandPredicate, MdTuple, MultiDimIbwj};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Window: the last 8k events per stream (drivers ping frequently).
    let window = 1usize << 13;
    let events = 4 * window;
    // Match radius: ~120 grid cells in x and y (a rectangle, per the band
    // predicate's per-dimension semantics).
    let predicate = MdBandPredicate::new([120u16, 120]);

    // Drivers and requests cluster around a handful of hot spots downtown.
    let hotspots: [[u16; 2]; 4] = [
        [12_000, 9_000],
        [30_000, 31_000],
        [45_000, 20_000],
        [52_000, 52_000],
    ];
    let mut rng = StdRng::seed_from_u64(99);
    let mut seqs = [0u64; 2];
    let mut tuples = Vec::with_capacity(events);
    for _ in 0..events {
        let hs = hotspots[rng.gen_range(0..hotspots.len())];
        let jitter = |c: u16, rng: &mut StdRng| -> u16 {
            let d = rng.gen_range(-3000i32..=3000);
            (c as i32 + d).clamp(0, u16::MAX as i32) as u16
        };
        let point = [jitter(hs[0], &mut rng), jitter(hs[1], &mut rng)];
        let side = if rng.gen_bool(0.8) {
            StreamSide::R
        } else {
            StreamSide::S
        };
        let seq = seqs[side.index()];
        seqs[side.index()] += 1;
        tuples.push(MdTuple { side, seq, point });
    }

    let mut join = MultiDimIbwj::new(window, predicate);
    let start = std::time::Instant::now();
    let results = join.run(&tuples);
    let elapsed = start.elapsed();

    let requests = tuples.iter().filter(|t| t.side == StreamSide::S).count();
    println!(
        "replayed {} position updates and {} ride requests over a {}x{} grid",
        tuples.len() - requests,
        requests,
        1 << 16,
        1 << 16
    );
    println!(
        "processed in {:.3}s -> {:.2} M events/s, {} index merges",
        elapsed.as_secs_f64(),
        tuples.len() as f64 / elapsed.as_secs_f64() / 1e6,
        join.merges()
    );
    println!(
        "candidate matches within the rectangle: {} ({:.1} per request)",
        results.len(),
        results.len() as f64 / requests.max(1) as f64
    );

    // Show a few request->driver candidates.
    for (probe, matched) in results
        .iter()
        .filter(|(p, _)| p.side == StreamSide::S)
        .take(5)
    {
        println!(
            "  request at {:?} can be served by driver update #{} at {:?}",
            probe.point, matched.seq, matched.point
        );
    }
}
