//! Cross-crate integration tests: every join operator in the workspace must
//! produce exactly the brute-force reference result, and the analytical model
//! must agree qualitatively with what the real operators measure.

use pimtree::prelude::*;
use pimtree_join::{canonical, reference_join};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mixed_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = [0u64, 0u64];
    (0..n)
        .map(|_| {
            let side = if rng.gen::<bool>() {
                StreamSide::R
            } else {
                StreamSide::S
            };
            let seq = seqs[side.index()];
            seqs[side.index()] += 1;
            Tuple::new(side, seq, rng.gen_range(0..domain))
        })
        .collect()
}

#[test]
fn all_operators_agree_on_the_same_workload() {
    let w = 192usize;
    let tuples = mixed_tuples(4000, 500, 99);
    let predicate = BandPredicate::new(2);
    let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
    assert!(!expected.is_empty());

    // Single-threaded operators over every index kind.
    for kind in [
        IndexKind::None,
        IndexKind::BTree,
        IndexKind::BChain,
        IndexKind::IbChain,
        IndexKind::ImTree,
        IndexKind::PimTree,
        IndexKind::BwTree,
    ] {
        let mut pim = PimConfig::for_window(w)
            .with_merge_ratio(0.25)
            .with_insertion_depth(2);
        pim.css_fanout = 8;
        pim.css_leaf_size = 8;
        pim.btree_fanout = 8;
        let config = JoinConfig::symmetric(w, kind)
            .with_chain_length(3)
            .with_pim(pim);
        let mut op = build_single_threaded(&config, predicate, false);
        let (_, results) = op.run(&tuples, true);
        assert_eq!(canonical(&results), expected, "single-threaded {kind}");
    }

    // Round-robin partitioned join.
    for mode in [HandshakeMode::Nlwj, HandshakeMode::Ibwj] {
        let op = HandshakeJoin::new(4, w, w, predicate, mode).with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected, "handshake {mode:?}");
    }

    // Parallel shared-index engine, PIM-Tree and Bw-Tree backends.
    for (kind, policy) in [
        (SharedIndexKind::PimTree, MergePolicy::NonBlocking),
        (SharedIndexKind::PimTree, MergePolicy::Blocking),
        (SharedIndexKind::BwTree, MergePolicy::NonBlocking),
    ] {
        let mut pim = PimConfig::for_window(w)
            .with_merge_ratio(0.5)
            .with_insertion_depth(2)
            .with_merge_policy(policy);
        pim.css_fanout = 8;
        pim.css_leaf_size = 8;
        pim.btree_fanout = 8;
        let config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(6)
            .with_task_size(3)
            .with_pim(pim);
        let op = ParallelIbwj::new(config, predicate, kind, false).with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(
            canonical(&results),
            expected,
            "parallel {kind:?} {policy:?}"
        );
    }
}

#[test]
fn batched_and_scalar_probe_agree_end_to_end() {
    // The batched, prefetched CSS group probe is a pure performance
    // optimisation: across engines, thread counts and probe tunings the
    // result set must be exactly the scalar path's (and the oracle's).
    let w = 160usize;
    let tuples = mixed_tuples(4500, 350, 123);
    let predicate = BandPredicate::new(2);
    let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
    assert!(!expected.is_empty());
    let mut pim = PimConfig::for_window(w)
        .with_merge_ratio(0.5)
        .with_insertion_depth(2);
    pim.css_fanout = 8;
    pim.css_leaf_size = 8;
    pim.btree_fanout = 8;
    for probe in [
        ProbeConfig::default(),
        ProbeConfig::default().with_prefetch_dist(0),
        ProbeConfig::default().with_prefetch_dist(64),
        ProbeConfig::scalar(),
    ] {
        let config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_pim(pim)
            .with_probe(probe);
        let mut st = build_single_threaded(&config, predicate, false);
        let (_, results) = st.run(&tuples, true);
        assert_eq!(canonical(&results), expected, "single-threaded {probe:?}");
        for threads in [1usize, 4] {
            let config = config.with_threads(threads).with_task_size(5);
            let op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
                .with_collected_results(true);
            let (stats, results) = op.run(&tuples);
            assert_eq!(
                canonical(&results),
                expected,
                "parallel {threads}T {probe:?}"
            );
            if probe.batch {
                assert!(stats.probe.batches > 0, "parallel {threads}T {probe:?}");
            } else {
                assert_eq!(stats.probe.batches, 0, "parallel {threads}T {probe:?}");
            }
        }
    }
}

#[test]
fn parallel_engine_is_deterministic_in_content_across_runs() {
    let w = 128usize;
    let tuples = mixed_tuples(5000, 400, 7);
    let predicate = BandPredicate::new(1);
    let config = JoinConfig::symmetric(w, IndexKind::PimTree)
        .with_threads(8)
        .with_task_size(4)
        .with_pim(
            PimConfig::for_window(w)
                .with_merge_ratio(0.5)
                .with_insertion_depth(2),
        );
    let op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
        .with_collected_results(true);
    let (_, a) = op.run(&tuples);
    let (_, b) = op.run(&tuples);
    assert_eq!(
        canonical(&a),
        canonical(&b),
        "result content must not depend on scheduling"
    );
}

#[test]
fn self_join_parallel_scales_without_changing_results() {
    let w = 256usize;
    let mut rng = StdRng::seed_from_u64(3);
    let tuples: Vec<Tuple> = (0..6000u64)
        .map(|i| Tuple::r(i, rng.gen_range(0..800)))
        .collect();
    let predicate = BandPredicate::new(2);
    let expected = canonical(&reference_join(&tuples, predicate, w, w, true));
    for threads in [1, 2, 8] {
        let config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(8)
            .with_pim(PimConfig::for_window(w).with_insertion_depth(2));
        let op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, true)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected, "threads = {threads}");
    }
}

#[test]
fn sharded_engine_agrees_end_to_end_across_routing_modes() {
    // The sharded task ring is a pure scaling layer: across shard counts,
    // routing modes (round-robin and key-range partitioned) and both index
    // backends, the result set must be exactly the single-ring engine's (and
    // the oracle's), and the steal/traffic accounting must cover every tuple.
    let w = 160usize;
    let tuples = mixed_tuples(4500, 400, 321);
    let predicate = BandPredicate::new(2);
    let expected = canonical(&reference_join(&tuples, predicate, w, w, false));
    assert!(!expected.is_empty());
    let mut pim = PimConfig::for_window(w)
        .with_merge_ratio(0.5)
        .with_insertion_depth(2);
    pim.css_fanout = 8;
    pim.css_leaf_size = 8;
    pim.btree_fanout = 8;
    let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();
    for kind in [SharedIndexKind::PimTree, SharedIndexKind::BwTree] {
        for shards in [1usize, 2, 4] {
            for range_routed in [false, true] {
                let config = JoinConfig::symmetric(w, IndexKind::PimTree)
                    .with_threads(4)
                    .with_task_size(4)
                    .with_pim(pim)
                    .with_shard(ShardConfig::default().with_shards(shards));
                let mut op =
                    ParallelIbwj::new(config, predicate, kind, false).with_collected_results(true);
                if range_routed {
                    op = op.with_partitioner(RangePartitioner::from_key_sample(shards, &sample));
                }
                let (stats, results) = op.run(&tuples);
                let label = format!("{kind:?}, {shards} shards, range_routed={range_routed}");
                assert_eq!(canonical(&results), expected, "{label}");
                assert_eq!(
                    stats.shard.local_tuples + stats.shard.stolen_tuples,
                    tuples.len() as u64,
                    "{label}"
                );
            }
        }
    }
}

#[test]
fn drift_repartition_round_trip_under_the_sharded_engine() {
    // A partitioner built for one key distribution degrades when the stream
    // drifts: the DriftMonitor observes the drifted keys, plans a
    // repartition, and the sharded engine adopted the new partitioner must
    // still produce oracle-exact results with the routing imbalance repaired.
    let w = 128usize;
    let shards = 4usize;
    let predicate = BandPredicate::new(2);
    let initial_sample: Vec<i64> = (0..1000).collect();
    let stale = RangePartitioner::from_key_sample(shards, &initial_sample);

    // The drifted stream lives entirely in 50_000..51_000.
    let mut rng = StdRng::seed_from_u64(99);
    let mut seqs = [0u64, 0u64];
    let drifted: Vec<Tuple> = (0..4000)
        .map(|_| {
            let side = if rng.gen::<bool>() {
                StreamSide::R
            } else {
                StreamSide::S
            };
            let seq = seqs[side.index()];
            seqs[side.index()] += 1;
            Tuple::new(side, seq, rng.gen_range(50_000..51_000))
        })
        .collect();
    let expected = canonical(&reference_join(&drifted, predicate, w, w, false));
    assert!(!expected.is_empty());

    let run = |partitioner: RangePartitioner| {
        let config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(4)
            .with_task_size(4)
            .with_pim(PimConfig::for_window(w).with_insertion_depth(2))
            .with_shard(ShardConfig::default().with_shards(shards));
        let op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
            .with_partitioner(partitioner)
            .with_collected_results(true);
        op.run(&drifted)
    };

    // How the drifted stream would be routed across shards: the
    // deterministic measure of what each partitioner does to the engine
    // (steal *fractions* on a 1-core host are scheduling noise, so the
    // routing distribution is what the round-trip asserts on).
    let route_spread = |p: &RangePartitioner| {
        let mut per_shard = vec![0u64; shards];
        for t in &drifted {
            per_shard[p.node_of(t.key)] += 1;
        }
        (
            *per_shard.iter().max().unwrap(),
            *per_shard.iter().min().unwrap(),
        )
    };

    // Under the stale partitioner every key routes to one shard: the run is
    // still exact (stealing covers the three home-less workers), but the
    // routing is maximally imbalanced.
    let (stale_max, _) = route_spread(&stale);
    assert_eq!(
        stale_max,
        drifted.len() as u64,
        "the drifted stream must route entirely to one stale shard"
    );
    let (stale_stats, stale_results) = run(stale.clone());
    assert_eq!(canonical(&stale_results), expected, "stale partitioner");
    assert_eq!(
        stale_stats.shard.local_tuples + stale_stats.shard.stolen_tuples,
        drifted.len() as u64
    );

    // Observe the drift, repartition, re-run: still exact, now balanced.
    let mut monitor = DriftMonitor::new(2000, 1.5);
    for t in &drifted {
        monitor.observe(t.key, 0);
    }
    assert!(monitor.should_repartition(&stale));
    let plan = monitor.plan(&stale);
    assert!(plan.moved_fraction > 0.5, "drift moves most of the weight");
    assert!(
        plan.new_partitioner.imbalance(monitor.sample()) < 1.3,
        "repartitioning must rebalance the observed window"
    );
    let (fresh_max, fresh_min) = route_spread(&plan.new_partitioner);
    assert!(
        fresh_max < drifted.len() as u64 / 2 && fresh_min > 0,
        "repartitioned routing must spread the drifted stream: max {fresh_max}, min {fresh_min}"
    );
    let (fresh_stats, fresh_results) = run(plan.new_partitioner.clone());
    assert_eq!(canonical(&fresh_results), expected, "repartitioned");
    assert_eq!(
        fresh_stats.shard.local_tuples + fresh_stats.shard.stolen_tuples,
        drifted.len() as u64
    );
}

#[test]
fn analytical_model_orders_approaches_like_the_implementation() {
    // The model says: for a reasonably large window, the PIM-Tree's per-tuple
    // cost is below the single B+-Tree's, and a chained index with a long
    // chain searches more than a short chain. We cross-check the *ordering*
    // (not the constants) against measured throughput on a small workload.
    use pimtree_model::{btree_cost, chained_cost, pim_tree_cost, ModelParams};

    let params = ModelParams::for_window(1 << 20);
    assert!(pim_tree_cost(&params, 0.125, 3).total() < btree_cost(&params).total());
    assert!(chained_cost(&params, 8).search > chained_cost(&params, 2).search);
}

#[test]
fn time_based_window_composes_with_the_btree_index() {
    // The indexing approach is not tied to count-based windows: maintain a
    // B+-Tree next to a time-based window and keep them consistent.
    let mut window = TimeWindow::new(100);
    let mut index = BTreeIndex::new();
    let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for i in 0..1000u64 {
        let key = (i * 37 % 500) as i64;
        let seq = window.append(key, i * 3);
        index.insert(key, seq);
        live.insert(seq);
        // Evict from the index whatever the window evicted.
        let still_live: std::collections::HashSet<u64> = window.iter().map(|t| t.seq).collect();
        for gone in live.difference(&still_live).copied().collect::<Vec<_>>() {
            let key_gone = (gone * 37 % 500) as i64;
            assert!(index.remove(key_gone, gone));
            live.remove(&gone);
        }
        assert_eq!(index.len(), window.len());
    }
    index.check_invariants();
}
