//! Property-based tests over the core data structures: the arena B+-Tree, the
//! immutable CSS-Tree, the Bw-Tree-style concurrent index and the PIM-Tree
//! are all checked against simple model structures under random operation
//! sequences.

use proptest::prelude::*;

use pimtree::prelude::*;
use pimtree_btree::{bulk, BTreeIndex, Entry};
use pimtree_bwtree::BwTreeIndex;
use pimtree_common::simd;

/// A random `(key, seq)` operation sequence: inserts and deletes of previously
/// inserted entries.
fn key_seq_ops() -> impl Strategy<Value = Vec<(i64, bool)>> {
    prop::collection::vec((0i64..200, prop::bool::ANY), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model_under_random_ops(ops in key_seq_ops(), fanout in 4usize..16) {
        let mut tree = BTreeIndex::with_fanout(fanout);
        let mut model: std::collections::BTreeSet<Entry> = Default::default();
        let mut seq = 0u64;
        let mut inserted: Vec<Entry> = Vec::new();
        for (key, is_insert) in ops {
            if is_insert || inserted.is_empty() {
                let e = Entry::new(key, seq);
                seq += 1;
                tree.insert_entry(e);
                model.insert(e);
                inserted.push(e);
            } else {
                let victim = inserted.swap_remove((key as usize) % inserted.len());
                prop_assert_eq!(tree.remove(victim.key, victim.seq), model.remove(&victim));
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        let got = tree.to_sorted_vec();
        let expected: Vec<Entry> = model.iter().copied().collect();
        prop_assert_eq!(got, expected);
        // Range queries agree with the model on a few probes.
        for lo in [-10i64, 0, 50, 150, 250] {
            let range = KeyRange::new(lo, lo + 37);
            let got = tree.range_collect(range);
            let expected: Vec<Entry> = model
                .iter()
                .copied()
                .filter(|e| range.contains(e.key))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn bulk_loaded_btree_equals_incremental(keys in prop::collection::vec(0i64..1000, 0..500), fanout in 4usize..16) {
        let mut entries: Vec<Entry> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Entry::new(k, i as u64))
            .collect();
        entries.sort();
        let bulk_tree = bulk::from_sorted_with_fanout(entries.clone(), fanout);
        bulk_tree.check_invariants();
        let mut incr = BTreeIndex::with_fanout(fanout);
        for e in &entries {
            incr.insert_entry(*e);
        }
        prop_assert_eq!(bulk_tree.to_sorted_vec(), incr.to_sorted_vec());
    }

    #[test]
    fn css_tree_lower_bound_matches_binary_search(keys in prop::collection::vec(0i64..500, 0..600), probes in prop::collection::vec(-10i64..520, 1..50)) {
        let mut entries: Vec<Entry> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Entry::new(k, i as u64))
            .collect();
        entries.sort();
        let tree = pimtree_css::CssBuilder::new().fanout(4).leaf_size(4).build(entries.clone());
        tree.check_invariants();
        for p in probes {
            let expected = entries.partition_point(|e| e.key < p);
            prop_assert_eq!(tree.lower_bound_key(p), expected);
        }
    }

    #[test]
    fn bwtree_matches_model_under_random_ops(ops in key_seq_ops()) {
        let tree = BwTreeIndex::with_parameters(16, 4);
        let mut model: std::collections::BTreeSet<Entry> = Default::default();
        let mut seq = 0u64;
        let mut inserted: Vec<Entry> = Vec::new();
        for (key, is_insert) in ops {
            if is_insert || inserted.is_empty() {
                let e = Entry::new(key, seq);
                seq += 1;
                tree.insert(e.key, e.seq);
                model.insert(e);
                inserted.push(e);
            } else {
                let victim = inserted.swap_remove((key as usize) % inserted.len());
                prop_assert_eq!(tree.remove(victim.key, victim.seq), model.remove(&victim));
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        let mut got = tree.range_collect(KeyRange::new(i64::MIN, i64::MAX));
        got.sort();
        let expected: Vec<Entry> = model.iter().copied().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn pim_tree_window_contents_survive_merges(keys in prop::collection::vec(0i64..10_000, 32..400), window_exp in 3usize..7, merge_ratio in prop::sample::select(vec![0.25f64, 0.5, 1.0])) {
        let w = 1usize << window_exp;
        let mut config = PimConfig::for_window(w)
            .with_merge_ratio(merge_ratio)
            .with_insertion_depth(2);
        config.css_fanout = 4;
        config.css_leaf_size = 4;
        config.btree_fanout = 4;
        let pim = PimTree::new(config);
        for (i, &k) in keys.iter().enumerate() {
            pim.insert(k, i as u64);
            if pim.needs_merge() {
                pim.merge((i + 1).saturating_sub(w) as u64);
            }
        }
        // Every live tuple — and no expired one — must be reachable.
        let earliest = keys.len().saturating_sub(w) as u64;
        let live = pim.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), earliest);
        let mut seqs: Vec<u64> = live.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), live.len(), "no duplicate results");
        let expected: Vec<u64> = (earliest..keys.len() as u64).collect();
        prop_assert_eq!(seqs, expected);
        for e in &live {
            prop_assert_eq!(e.key, keys[e.seq as usize]);
        }
    }

    #[test]
    fn sharded_engine_steals_never_violate_arrival_order(
        keys in prop::collection::vec(0i64..300, 40..250),
        sides in prop::collection::vec(prop::bool::ANY, 40..250),
        shards in 1usize..5,
        threads in 1usize..5,
        steal_batch in 0usize..5,
        range_routed in prop::bool::ANY,
        window_exp in 3usize..6,
    ) {
        let n = keys.len().min(sides.len());
        let mut seqs = [0u64, 0u64];
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                let side = if sides[i] { StreamSide::R } else { StreamSide::S };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, keys[i])
            })
            .collect();
        let w = 1usize << window_exp;
        let predicate = BandPredicate::new(2);
        let expected = pimtree_join::canonical(&pimtree_join::reference_join(&tuples, predicate, w, w, false));
        let mut pim = PimConfig::for_window(w).with_merge_ratio(0.5).with_insertion_depth(2);
        pim.css_fanout = 4;
        pim.css_leaf_size = 4;
        pim.btree_fanout = 4;
        let config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(2)
            .with_pim(pim)
            .with_shard(
                ShardConfig::default()
                    .with_shards(shards)
                    .with_steal_batch(steal_batch),
            );
        let mut op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
            .with_collected_results(true);
        if range_routed {
            let sample: Vec<Key> = tuples.iter().map(|t| t.key).collect();
            op = op.with_partitioner(RangePartitioner::from_key_sample(shards, &sample));
        }
        let (stats, results) = op.run(&tuples);
        // Exactness: the sharded engine is a pure scaling layer.
        prop_assert_eq!(pimtree_join::canonical(&results), expected);
        // Accounting: every tuple claimed exactly once, home or stolen.
        prop_assert_eq!(stats.shard.local_tuples + stats.shard.stolen_tuples, n as u64);
        // Ordering: steals must never reorder the propagated stream — the
        // probing tuples appear in their global arrival order.
        let mut pos_of = std::collections::HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            pos_of.insert((t.side, t.seq), i);
        }
        let positions: Vec<usize> = results
            .iter()
            .map(|r| pos_of[&(r.probe.side, r.probe.seq)])
            .collect();
        prop_assert!(
            positions.windows(2).all(|w| w[0] <= w[1]),
            "arrival-order propagation violated at shards={}, threads={}",
            shards,
            threads
        );
    }

    #[test]
    fn single_threaded_ibwj_matches_reference_on_random_workloads(
        keys in prop::collection::vec(0i64..300, 10..300),
        sides in prop::collection::vec(prop::bool::ANY, 10..300),
        window_exp in 2usize..6,
        diff in 0i64..4,
    ) {
        let n = keys.len().min(sides.len());
        let mut seqs = [0u64, 0u64];
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                let side = if sides[i] { StreamSide::R } else { StreamSide::S };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, keys[i])
            })
            .collect();
        let w = 1usize << window_exp;
        let predicate = BandPredicate::new(diff);
        let expected = pimtree_join::canonical(&pimtree_join::reference_join(&tuples, predicate, w, w, false));
        for kind in [IndexKind::BTree, IndexKind::PimTree] {
            let mut pim = PimConfig::for_window(w).with_merge_ratio(0.5).with_insertion_depth(1);
            pim.css_fanout = 4;
            pim.css_leaf_size = 4;
            pim.btree_fanout = 4;
            let config = JoinConfig::symmetric(w, kind).with_pim(pim);
            let mut op = build_single_threaded(&config, predicate, false);
            let (_, results) = op.run(&tuples, true);
            prop_assert_eq!(pimtree_join::canonical(&results), expected.clone(), "kind {}", kind);
        }
    }

    /// The SIMD u64 lower bound must equal `partition_point` on arbitrary
    /// sorted contents — including duplicates, extremes and targets probing
    /// past both ends. (CI re-runs this with `PIMTREE_SIMD=off` so the
    /// scalar fallback is pinned to the same oracle.)
    #[test]
    fn simd_u64_lower_bound_matches_partition_point(
        values in prop::collection::vec(any::<u64>(), 0..80),
        extra in prop::collection::vec(any::<u64>(), 0..4),
        target in any::<u64>(),
    ) {
        let mut values = values;
        values.extend([0, u64::MAX]); // always exercise both extremes
        values.extend(extra.iter().copied()); // and some duplicates-to-be
        values.extend(extra);
        values.sort_unstable();
        for t in [target, 0, u64::MAX, values[values.len() / 2]] {
            let expected = values.partition_point(|&v| v < t);
            prop_assert_eq!(simd::lower_bound_u64(&values, t), expected, "target {}", t);
        }
        prop_assert_eq!(simd::lower_bound_u64(&[], target), 0);
    }

    /// The SIMD entry-key count must equal `partition_point` on sorted
    /// `[key, seq]` blocks padded with `i64::MAX` sentinel slots, the exact
    /// shape of a CSS-Tree inner node after bulk load.
    #[test]
    fn simd_key_count_matches_partition_point_with_sentinel_padding(
        keys in prop::collection::vec(-1000i64..1000, 0..64),
        pad in 0usize..9,
        target in -1100i64..1100,
    ) {
        let mut keys = keys;
        keys.sort_unstable();
        let mut pairs: Vec<[i64; 2]> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| [k, i as i64])
            .collect();
        pairs.extend(std::iter::repeat_n([i64::MAX, i64::MAX], pad));
        for t in [target, i64::MIN, i64::MAX] {
            let expected = pairs.partition_point(|p| p[0] < t);
            prop_assert_eq!(simd::count_keys_below(&pairs, t), expected, "target {}", t);
        }
        // Sentinel padding is never counted below a real target.
        prop_assert_eq!(simd::count_keys_below(&pairs, i64::MAX), keys.len());
    }
}
