//! Model-checked protocol tests for the real [`pimtree_join::TaskRing`].
//!
//! These tests only compile under `--cfg pimtree_model`: the `pimtree-join`
//! crate is then built against the instrumented atomics of
//! `pimtree_common::sync`, so every `Acquire`/`Release`/`SeqCst` annotation
//! in `ring.rs` is checked — not trusted — across all bounded-preemption
//! interleavings.
#![cfg(pimtree_model)]

use std::sync::Arc;

use pimtree_check::{thread, Builder};
use pimtree_common::types::{StreamSide, Tuple};
use pimtree_join::stats::RingCounters;
use pimtree_join::TaskRing;
use pimtree_window::WindowBounds;

fn tuple(seq: u64) -> Tuple {
    // Encode the sequence into the key so a torn slot read is detectable.
    Tuple::new(StreamSide::R, seq, seq as i64 * 10 + 3)
}

fn bounds(seq: u64) -> WindowBounds {
    WindowBounds::new(seq, seq + 1)
}

/// The core claim/publish/drain protocol on the real ring, two threads:
///
/// * the ingester publishes tuples (`INGESTED` + tail, both `Release`) and
///   then drains completed-prefix slots;
/// * a worker claims via the `next_claim` CAS ticket, reads the slot payload
///   (tear check: key/bounds must match what was pushed for that seq) and
///   completes (`result_count` then `COMPLETED`, `Release`).
///
/// Invariants pinned: no slot tear, drain emits in arrival order, and the
/// ring is empty once everything drained.
#[test]
fn ring_claim_publish_drain_holds_under_all_interleavings() {
    const N: u64 = 2;
    let report = Builder::default()
        .check_report(|| {
            let ring = Arc::new(TaskRing::with_capacity(4));

            let worker = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut counters = RingCounters::default();
                    let mut done = 0u64;
                    while done < N {
                        out.clear();
                        let n = ring.claim(N as usize, &mut out, &mut counters);
                        if n == 0 {
                            thread::yield_now();
                            continue;
                        }
                        for task in &out {
                            let seq = task.tuple.seq;
                            // Tear check: the payload fields are written with
                            // Relaxed stores ordered by the Release publish of
                            // the slot state + tail; a weaker publish would
                            // let a claimer observe a half-written slot.
                            assert_eq!(task.tuple.key, seq as i64 * 10 + 3, "torn slot payload");
                            assert_eq!(task.bounds.earliest, seq, "torn slot bounds");
                            ring.complete(task.gid, seq, Vec::new());
                        }
                        done += n as u64;
                    }
                })
            };

            // Ingest N tuples, then drain the completed prefix in arrival
            // order, concurrently with the worker's claim/complete.
            {
                let guard = ring.try_ingest().expect("fresh ring: token free");
                for seq in 0..N {
                    assert!(guard.can_push(), "capacity 4 cannot fill with N=2");
                    guard.push(tuple(seq), bounds(seq));
                }
            }
            let mut drained = Vec::new();
            while (drained.len() as u64) < N {
                let got = ring.try_drain(false, |count, _| drained.push(count));
                if got.unwrap_or(0) == 0 {
                    thread::yield_now();
                }
            }
            worker.join().unwrap();

            // `complete` stored result_count = seq, so the drain order is
            // observable: it must equal arrival order.
            assert_eq!(
                drained,
                (0..N).collect::<Vec<_>>(),
                "drain out of arrival order"
            );
            assert!(ring.is_empty(), "ring not empty after full drain");
        })
        .expect("ring claim/publish/drain protocol violated");

    assert!(
        report.schedules > 1,
        "exhaustive exploration must cover more than one schedule, got {}",
        report.schedules
    );
    assert!(report.complete, "exploration hit a bound before completing");
}

/// Two concurrent claimers racing on the `next_claim` CAS ticket: every
/// published tuple is claimed by exactly one worker (no double-claim, no
/// loss).
#[test]
fn ring_concurrent_claimers_partition_tasks() {
    let report = Builder::default()
        .check_report(|| {
            let ring = Arc::new(TaskRing::with_capacity(4));
            {
                let guard = ring.try_ingest().expect("fresh ring: token free");
                for seq in 0..2 {
                    guard.push(tuple(seq), bounds(seq));
                }
            }

            let claimers: Vec<_> = (0..2)
                .map(|_| {
                    let ring = Arc::clone(&ring);
                    thread::spawn(move || {
                        let mut out = Vec::new();
                        let mut counters = RingCounters::default();
                        ring.claim(1, &mut out, &mut counters);
                        out.iter().map(|t| t.gid).collect::<Vec<_>>()
                    })
                })
                .collect();

            let mut gids: Vec<u64> = claimers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            gids.sort_unstable();
            gids.dedup();
            // Both tuples were published before the claimers started, so the
            // CAS ticket must hand each out exactly once.
            assert_eq!(gids, vec![0, 1], "claim ticket lost or duplicated a task");
        })
        .expect("concurrent claim protocol violated");
    assert!(report.schedules > 1);
}
