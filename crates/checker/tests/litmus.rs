//! Litmus tests for the checker itself: classic memory-model shapes whose
//! verdicts are known. These validate the explorer and memory model in
//! *both* build modes (they use `pimtree_check`'s types directly, not the
//! `pimtree-common::sync` facade), so a regression in the checker is caught
//! by plain `cargo test` before anyone trusts a protocol verdict.

use std::sync::Arc;

use pimtree_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use pimtree_check::sync::Mutex;
use pimtree_check::{model, thread, Builder};

/// Release/acquire message passing is correct: the reader that observes the
/// flag must observe the payload.
#[test]
fn message_passing_release_acquire_is_safe() {
    let report = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            if f2.load(Ordering::Acquire) {
                assert_eq!(
                    d2.load(Ordering::Relaxed),
                    1,
                    "flag visible but payload stale"
                );
            }
        });
        data.store(1, Ordering::Relaxed);
        flag.store(true, Ordering::Release);
        t.join().unwrap();
    });
    assert!(report.complete, "exploration must exhaust the tree");
    assert!(report.schedules > 1, "expected multiple interleavings");
}

/// The same shape with a relaxed flag store is a real bug, and the checker
/// must find the schedule where the reader sees the flag but stale payload.
#[test]
fn message_passing_relaxed_flag_is_caught() {
    let result = Builder::default().check_report(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            if f2.load(Ordering::Acquire) {
                assert_eq!(
                    d2.load(Ordering::Relaxed),
                    1,
                    "flag visible but payload stale"
                );
            }
        });
        data.store(1, Ordering::Relaxed);
        // BUG under test: Relaxed publication gives the reader no edge.
        flag.store(true, Ordering::Relaxed);
        t.join().unwrap();
    });
    let failure = result.expect_err("relaxed publication must be caught");
    assert!(
        failure.message.contains("payload stale"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.seed.is_empty(), "failure must carry a replay seed");
    assert!(
        !failure.trace.is_empty(),
        "failure must carry a schedule trace"
    );
}

/// Store buffering with `SeqCst` on both sides: both threads reading zero is
/// forbidden; the per-location `SeqCst` approximation must enforce it.
#[test]
fn store_buffering_seqcst_forbids_both_zero() {
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        x.store(1, Ordering::SeqCst);
        let r1 = y.load(Ordering::SeqCst);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SeqCst store buffering: both saw zero");
    });
    assert!(report.complete);
}

/// Store buffering with relaxed ordering: both-zero is a legal outcome and
/// the explorer must be able to produce it.
#[test]
fn store_buffering_relaxed_allows_both_zero() {
    let result = Builder::default().check_report(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            x2.load(Ordering::Relaxed)
        });
        x.store(1, Ordering::Relaxed);
        let r1 = y.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        // Deliberately assert the impossible-under-SeqCst outcome so the
        // explorer proves relaxed loads really branch over stale values.
        assert!(r1 == 1 || r2 == 1, "relaxed store buffering: both saw zero");
    });
    assert!(
        result.is_err(),
        "the both-zero relaxed outcome must be reachable"
    );
}

/// Two concurrent RMWs never lose an increment (C11 RMW atomicity).
#[test]
fn concurrent_fetch_add_never_loses_updates() {
    let report = model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.schedules > 1);
}

/// Model mutexes provide mutual exclusion and an acquire/release edge.
#[test]
fn mutex_guards_plain_data() {
    let report = model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            *n2.lock() += 1;
        });
        *n.lock() += 1;
        t.join().unwrap();
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.complete);
}

/// ABBA lock ordering deadlocks in some schedule; the checker must say so
/// rather than hang.
#[test]
fn abba_lock_order_deadlock_is_caught() {
    let result = Builder::default().check_report(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _b = b2.lock();
            let _a = a2.lock();
        });
        let _a = a.lock();
        let _b = b.lock();
        drop(_b);
        drop(_a);
        t.join().unwrap();
    });
    let failure = result.expect_err("ABBA deadlock must be detected");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
}

/// A spin-wait loop on a flag terminates in every explored schedule thanks
/// to yield deprioritisation, and the acquire edge carries the payload.
#[test]
fn spin_wait_terminates_and_synchronises() {
    let report = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            while !f2.load(Ordering::Acquire) {
                thread::yield_now();
            }
            assert_eq!(d2.load(Ordering::Relaxed), 7);
        });
        data.store(7, Ordering::Relaxed);
        flag.store(true, Ordering::Release);
        t.join().unwrap();
    });
    assert!(
        report.complete,
        "spin loop must not be reported as livelock"
    );
}

/// Replaying a failure seed reproduces the identical violation: same
/// message, byte-for-byte same trace.
#[test]
fn replay_reproduces_identical_failure() {
    let scenario = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            if f2.load(Ordering::Acquire) {
                assert_eq!(d2.load(Ordering::Relaxed), 1, "stale payload");
            }
        });
        data.store(1, Ordering::Relaxed);
        flag.store(true, Ordering::Relaxed);
        t.join().unwrap();
    };
    let failure = Builder::default()
        .check_report(scenario)
        .expect_err("scenario is buggy by construction");
    let replay1 = Builder::default()
        .replay(&failure.seed, scenario)
        .expect_err("replay must reproduce the violation");
    let replay2 = Builder::default()
        .replay(&failure.seed, scenario)
        .expect_err("replay must reproduce the violation");
    assert_eq!(replay1.message, failure.message);
    assert_eq!(
        replay1.trace, failure.trace,
        "replay trace differs from original"
    );
    assert_eq!(replay1.trace, replay2.trace, "replay is not deterministic");
}
