//! Model-checked dual-ownership handoff test over the real retrofitted
//! components: two [`pimtree_window::ShardWindow`]s (old and new home), the
//! real [`pimtree_join::QuiesceGate`], and a `Release`-published split point
//! — the same shape as the `ShardStore` incremental sub-range handoff
//! (`store.rs`): writers route by `seq < split → old home, else new home`,
//! the migrator quiesces in-flight writers, copies the moved sub-range into
//! the new home and publishes the new split. Entries the handoff moved out
//! stay in the old window as stale leftovers; *ownership* is defined by
//! `(home, split)`, so the invariant is on the owned regions.
//!
//! Invariants pinned:
//!
//! * the two homes' owned regions are disjoint by seq at every split;
//! * no tuple is lost or duplicated across the handoff — every appended seq
//!   is owned by exactly one home afterwards.
#![cfg(pimtree_model)]

use std::sync::Arc;

use pimtree_check::sync::atomic::{AtomicU64, Ordering};
use pimtree_check::{thread, Builder};
use pimtree_join::QuiesceGate;
use pimtree_window::ShardWindow;

#[test]
fn handoff_moves_subrange_without_loss_or_duplication() {
    const TOTAL: u64 = 3; // seqs 0..3; the migrator moves seq >= 1
    const MOVE_FROM: u64 = 1;
    let report = Builder::default()
        .check_report(|| {
            let old_home = Arc::new(ShardWindow::new(8, 8));
            let new_home = Arc::new(ShardWindow::new(8, 8));
            // All seqs start at the old home; the migrator publishes the
            // real split once the moved sub-range is in place.
            let split = Arc::new(AtomicU64::new(u64::MAX));
            let gate = Arc::new(QuiesceGate::new());

            let writer = {
                let (old_home, new_home) = (Arc::clone(&old_home), Arc::clone(&new_home));
                let (split, gate) = (Arc::clone(&split), Arc::clone(&gate));
                thread::spawn(move || {
                    for seq in 0..TOTAL {
                        // Claim admission for this append; the gate bounds
                        // the stall while the migrator runs.
                        while !gate.try_enter() {
                            thread::yield_now();
                        }
                        let home = if seq < split.load(Ordering::Acquire) {
                            &old_home
                        } else {
                            &new_home
                        };
                        home.append(seq, seq as i64, 0).expect("window not full");
                        gate.exit();
                    }
                })
            };

            // Migrator: quiesce writers, copy the moved sub-range into the
            // new home, publish the split, reopen.
            gate.close();
            gate.await_quiesce();
            for (seq, key, _) in old_home.snapshot() {
                if seq >= MOVE_FROM {
                    new_home.append(seq, key, 0).expect("window not full");
                }
            }
            split.store(MOVE_FROM, Ordering::Release);
            gate.open();
            writer.join().unwrap();

            // Owned regions: old home answers seq < split, new home answers
            // seq >= split. Together they must cover every appended seq
            // exactly once.
            let split_now = split.load(Ordering::Acquire);
            let mut owned: Vec<u64> = old_home
                .snapshot()
                .into_iter()
                .filter(|&(seq, _, _)| seq < split_now)
                .map(|(seq, _, _)| seq)
                .chain(
                    new_home
                        .snapshot()
                        .into_iter()
                        .filter(|&(seq, _, _)| seq >= split_now)
                        .map(|(seq, _, _)| seq),
                )
                .collect();
            owned.sort_unstable();
            assert_eq!(
                owned,
                (0..TOTAL).collect::<Vec<_>>(),
                "handoff lost or duplicated a tuple"
            );
        })
        .expect("dual-ownership handoff protocol violated");

    assert!(report.schedules > 1);
}
