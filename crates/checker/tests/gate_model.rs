//! Model-checked quiesce test for the real [`pimtree_join::QuiesceGate`].
//!
//! The gate implements the SeqCst Dekker handshake the migration path relies
//! on: a worker does `in_flight.fetch_add` *then* loads `closed`; the closer
//! stores `closed` *then* polls `in_flight`. Only sequential consistency on
//! those four accesses forbids the "both sides read stale" outcome in which
//! a worker slips past a closed gate — weaken any of them and the
//! `mutation_harness` doubles show the checker catching it.
#![cfg(pimtree_model)]

use std::sync::Arc;

use pimtree_check::sync::atomic::{AtomicU64, Ordering};
use pimtree_check::{thread, Builder};
use pimtree_join::QuiesceGate;

/// No claim survives the gate: once `close()` + `await_quiesce()` return,
/// every admitted worker has exited and no new worker can enter, so state
/// guarded by the gate cannot change during the maintenance window.
#[test]
fn quiesce_admits_no_claim_past_the_gate() {
    let report = Builder::default()
        .check_report(|| {
            let gate = Arc::new(QuiesceGate::new());
            // Stands in for the index/window state workers mutate while
            // inside the gate. Relaxed on purpose: the *gate* must provide
            // the synchronisation.
            let dirty = Arc::new(AtomicU64::new(0));

            let worker = {
                let gate = Arc::clone(&gate);
                let dirty = Arc::clone(&dirty);
                thread::spawn(move || {
                    if gate.try_enter() {
                        dirty.fetch_add(1, Ordering::Relaxed);
                        gate.exit();
                        true
                    } else {
                        false
                    }
                })
            };

            // Closer (migration) side: close, wait for in-flight claims to
            // drain, then observe the guarded state twice across a yield.
            gate.close();
            gate.await_quiesce();
            let before = dirty.load(Ordering::Relaxed);
            thread::yield_now();
            let after = dirty.load(Ordering::Relaxed);
            assert_eq!(
                before, after,
                "a worker mutated gated state inside the quiesced window"
            );
            gate.open();

            let entered = worker.join().unwrap();
            // Whether the worker got in before the gate closed or was turned
            // away, the final count must match its admission.
            assert_eq!(dirty.load(Ordering::Relaxed), u64::from(entered));
        })
        .expect("quiesce gate protocol violated");

    assert!(report.schedules > 1);
    assert!(report.complete, "gate exploration hit a bound");
}

/// Reopening the gate admits workers again, and their effects are visible to
/// a later close/quiesce cycle (release/acquire through the gate's SeqCst
/// accesses).
#[test]
fn reopened_gate_admits_and_publishes_work() {
    let report = Builder::default()
        .check_report(|| {
            let gate = Arc::new(QuiesceGate::new());
            let dirty = Arc::new(AtomicU64::new(0));

            // First maintenance window with nobody around.
            gate.close();
            gate.await_quiesce();
            gate.open();

            let worker = {
                let gate = Arc::clone(&gate);
                let dirty = Arc::clone(&dirty);
                thread::spawn(move || {
                    // Retry until admitted: the gate may be closed again by
                    // the main thread's second cycle, but it always reopens.
                    loop {
                        if gate.try_enter() {
                            dirty.fetch_add(1, Ordering::Relaxed);
                            gate.exit();
                            return;
                        }
                        thread::yield_now();
                    }
                })
            };

            // Second cycle racing the worker's entry.
            gate.close();
            gate.await_quiesce();
            let seen = dirty.load(Ordering::Relaxed);
            gate.open();
            worker.join().unwrap();
            let final_count = dirty.load(Ordering::Relaxed);
            assert_eq!(final_count, 1, "admitted work lost");
            // Inside the quiesced window the count is frozen at whatever the
            // drained claims produced — 0 (turned away) or 1 (drained).
            assert!(seen <= 1);
        })
        .expect("gate reopen protocol violated");
    assert!(report.schedules > 1);
}
