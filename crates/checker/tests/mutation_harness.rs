//! Mutation harness: checker-only test doubles of the engine's three atomic
//! protocols, each in a *correct* variant (must pass exhaustive exploration)
//! and a *weakened* variant seeding the exact bug class the real code's
//! orderings exist to prevent (must be caught, with a printed failing
//! schedule). This is the evidence that the model tests in `ring_model.rs`,
//! `shard_model.rs` and `gate_model.rs` are load-bearing: the checker
//! demonstrably detects the violations those orderings rule out.
//!
//! The doubles mirror the shapes in the real code:
//!
//! * **ring publish** — `ring.rs` `complete()` stores the result count with
//!   `Relaxed` and publishes `COMPLETED` with `Release`; `drain_one()` pairs
//!   it with an `Acquire` state load. Weakening the publish to `Relaxed`
//!   lets the drainer read a stale result count (a torn slot).
//! * **shard stamp** — `shard.rs` `push_unguarded()` stores the arrival
//!   stamp with `Relaxed` ordered by the ring's `Release` tail publish; the
//!   merge cursor pairs it with an `Acquire` tail load. Weakening the tail
//!   publish lets the cursor peek a stale stamp and drain out of global
//!   arrival order.
//! * **quiesce gate** — `gate.rs` `try_enter()` must *re-check* `closed`
//!   (SeqCst) after raising `in_flight` (SeqCst), the Dekker handshake.
//!   Dropping the re-check, or weakening the closed load to `Relaxed`, lets
//!   a claim survive the gate and mutate state inside the quiesced window.
//!
//! The harness uses `pimtree_check::sync` types directly, so it runs (and
//! the seeded mutants are caught) in **both** the normal and the
//! `--cfg pimtree_model` configuration of the test suite.

use std::sync::Arc;

use pimtree_check::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use pimtree_check::{thread, Builder, Failure};

// ------------------------------------------------------------------ ring

const COMPLETED: u8 = 2;
const PAYLOAD: u64 = 7;

/// Double of the ring slot completion/drain pair. `publish` is the ordering
/// of the `COMPLETED` state store — `Release` in `ring.rs`.
fn ring_publish_double(publish: Ordering) {
    let state = Arc::new(AtomicU8::new(0));
    let payload = Arc::new(AtomicU64::new(0));

    let completer = {
        let (state, payload) = (Arc::clone(&state), Arc::clone(&payload));
        thread::spawn(move || {
            payload.store(PAYLOAD, Ordering::Relaxed); // result_count
            state.store(COMPLETED, publish);
        })
    };

    // drain_one: Acquire state check, then the Relaxed payload read it
    // orders.
    while state.load(Ordering::Acquire) != COMPLETED {
        thread::yield_now();
    }
    let seen = payload.load(Ordering::Relaxed);
    assert_eq!(seen, PAYLOAD, "drained a torn slot: result count {seen}");
    completer.join().unwrap();
}

#[test]
fn ring_publish_release_passes_exhaustively() {
    let report = Builder::default()
        .check_report(|| ring_publish_double(Ordering::Release))
        .expect("the real ring publish protocol must verify");
    assert!(report.schedules > 1, "exploration must branch");
    assert!(
        report.complete,
        "exploration must exhaust the 2-thread model"
    );
}

#[test]
fn ring_publish_relaxed_mutant_is_caught() {
    let failure = Builder::default()
        .check_report(|| ring_publish_double(Ordering::Relaxed))
        .expect_err("weakened COMPLETED publish must be caught");
    assert!(failure.message.contains("torn slot"));
    print_caught("ring COMPLETED publish Release→Relaxed", &failure);
}

// ----------------------------------------------------------------- shard

const STAMP: u64 = 5;

/// Double of the shard push / merge-cursor peek pair. `publish` is the
/// ordering of the ring tail store that orders the stamp — `Release` in
/// `shard.rs`/`ring.rs`.
fn shard_stamp_double(publish: Ordering) {
    let arrival = Arc::new(AtomicU64::new(0));
    let tail = Arc::new(AtomicU64::new(0));

    let pusher = {
        let (arrival, tail) = (Arc::clone(&arrival), Arc::clone(&tail));
        thread::spawn(move || {
            arrival.store(STAMP, Ordering::Relaxed); // slot arrival stamp
            tail.store(1, publish); // ring tail publish
        })
    };

    // Merge cursor: Acquire frontier/tail load, then the stamp peek.
    while tail.load(Ordering::Acquire) != 1 {
        thread::yield_now();
    }
    let stamp = arrival.load(Ordering::Relaxed);
    assert_eq!(
        stamp, STAMP,
        "merge cursor peeked stale stamp {stamp}: would drain out of arrival order"
    );
    pusher.join().unwrap();
}

#[test]
fn shard_stamp_release_passes_exhaustively() {
    let report = Builder::default()
        .check_report(|| shard_stamp_double(Ordering::Release))
        .expect("the real shard stamp protocol must verify");
    assert!(report.schedules > 1);
    assert!(report.complete);
}

#[test]
fn shard_stamp_relaxed_mutant_is_caught() {
    let failure = Builder::default()
        .check_report(|| shard_stamp_double(Ordering::Relaxed))
        .expect_err("weakened tail publish must be caught");
    assert!(failure.message.contains("stale stamp"));
    print_caught("shard tail publish Release→Relaxed", &failure);
}

// ------------------------------------------------------------------ gate

/// Double of `QuiesceGate`. `recheck` drops the Dekker re-check of `closed`
/// when `false`; `gate_load` weakens its ordering.
fn gate_double(recheck: bool, gate_load: Ordering) {
    let closed = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicUsize::new(0));
    let dirty = Arc::new(AtomicU64::new(0));

    let worker = {
        let (closed, in_flight) = (Arc::clone(&closed), Arc::clone(&in_flight));
        let dirty = Arc::clone(&dirty);
        thread::spawn(move || {
            // try_enter
            in_flight.fetch_add(1, Ordering::SeqCst);
            if recheck && closed.load(gate_load) {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            dirty.fetch_add(1, Ordering::Relaxed); // the guarded mutation
            in_flight.fetch_sub(1, Ordering::SeqCst); // exit
        })
    };

    // close + await_quiesce
    closed.store(true, Ordering::SeqCst);
    while in_flight.load(Ordering::SeqCst) != 0 {
        thread::yield_now();
    }
    // The maintenance window: gated state must be frozen.
    let before = dirty.load(Ordering::Relaxed);
    thread::yield_now();
    let after = dirty.load(Ordering::Relaxed);
    assert_eq!(before, after, "a claim survived the gate");
    closed.store(false, Ordering::SeqCst);
    worker.join().unwrap();
}

#[test]
fn gate_dekker_handshake_passes_exhaustively() {
    let report = Builder::default()
        .check_report(|| gate_double(true, Ordering::SeqCst))
        .expect("the real quiesce gate protocol must verify");
    assert!(report.schedules > 1);
    assert!(report.complete);
}

#[test]
fn gate_dropped_recheck_mutant_is_caught() {
    let failure = Builder::default()
        .check_report(|| gate_double(false, Ordering::SeqCst))
        .expect_err("dropping the closed re-check must be caught");
    assert!(failure.message.contains("survived the gate"));
    print_caught("gate closed re-check dropped", &failure);
}

#[test]
fn gate_relaxed_load_mutant_is_caught() {
    let failure = Builder::default()
        .check_report(|| gate_double(true, Ordering::Relaxed))
        .expect_err("weakening the closed load must be caught");
    assert!(failure.message.contains("survived the gate"));
    print_caught("gate closed load SeqCst→Relaxed", &failure);
}

// ---------------------------------------------------------------- replay

/// Satellite: deterministic replay. A recorded failing seed reproduces the
/// *same* violation with a byte-for-byte identical trace across two
/// independent replay runs.
#[test]
fn recorded_seed_replays_byte_identical() {
    let failure = Builder::default()
        .check_report(|| ring_publish_double(Ordering::Relaxed))
        .expect_err("mutant must fail");

    let one = Builder::default()
        .replay(&failure.seed, || ring_publish_double(Ordering::Relaxed))
        .expect_err("replaying the failing seed must fail again");
    let two = Builder::default()
        .replay(&failure.seed, || ring_publish_double(Ordering::Relaxed))
        .expect_err("replaying the failing seed must fail again");

    assert_eq!(one.message, failure.message);
    assert_eq!(one.seed, failure.seed);
    assert_eq!(one.trace, failure.trace, "replay diverged from recording");
    assert_eq!(
        format!("{one}"),
        format!("{two}"),
        "two replays of the same seed diverged"
    );
}

/// Prints the caught mutation's failing schedule (visible with
/// `--nocapture`; always part of the test's captured output).
fn print_caught(mutation: &str, failure: &Failure) {
    assert!(!failure.seed.is_empty(), "failure must carry a seed");
    assert!(!failure.trace.is_empty(), "failure must carry a trace");
    println!("caught seeded mutation [{mutation}]:\n{failure}");
}
