//! Model-checked protocol test for the real [`pimtree_join::ShardedRing`]
//! cross-shard merge cursor.
//!
//! The cursor drains completed tasks across shards in *global arrival-stamp
//! order*: each push stores the slot payload and arrival stamp with Relaxed
//! stores ordered by the shard ring's `Release` tail publish, then advances
//! the global `next_arrival` frontier with a `Release` store; the drainer
//! reads the frontier with `Acquire` and peeks every shard's head stamp. A
//! weaker stamp publication would let the cursor drain a stale (smaller or
//! torn) stamp out of order — the `shard_stamp` double in
//! `mutation_harness.rs` shows the checker catching exactly that.
#![cfg(pimtree_model)]

use std::sync::Arc;

use pimtree_check::{thread, Builder};
use pimtree_common::config::ShardConfig;
use pimtree_common::types::{StreamSide, Tuple};
use pimtree_join::stats::{RingCounters, ShardCounters};
use pimtree_join::ShardedRing;
use pimtree_window::WindowBounds;

/// Two shards, round-robin routing (arrival stamp alternates shards), one
/// worker claiming from home shard 0 with stealing enabled, while the main
/// thread drains. Invariants pinned:
///
/// * the merge cursor emits strictly in global arrival order, even while
///   completions land on both shards from a stealing worker;
/// * no tuple is lost or duplicated across the claim/steal/complete/drain
///   cycle.
#[test]
fn merge_cursor_drains_in_global_arrival_order_under_steals() {
    const N: u64 = 2; // one tuple per shard; arrival stamps 0 and 1
    let report = Builder::default()
        .check_report(|| {
            let cfg = ShardConfig {
                shards: 2,
                steal_batch: 1,
                steal_threshold: 1,
                partition_index: false,
            };
            let ring = Arc::new(ShardedRing::new(&cfg, 1, 4, None));

            // Publish N tuples round-robin before the worker starts; the
            // races explored are claim/steal/complete vs the drain cursor.
            {
                let guard = ring.try_ingest().expect("fresh ring: token free");
                for seq in 0..N {
                    let t = Tuple::new(StreamSide::R, seq, seq as i64);
                    let shard = guard.route(t.key);
                    assert!(guard.can_push(shard));
                    guard.push(shard, t, WindowBounds::new(seq, seq + 1));
                }
            }

            // Worker homed on shard 0: claims its local tuple, then steals
            // shard 1's. Completes with result_count = seq so the drain
            // order is observable.
            let worker = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut rc = RingCounters::default();
                    let mut sc = ShardCounters::default();
                    let mut done = 0u64;
                    while done < N {
                        out.clear();
                        match ring.claim(0, 2, &mut out, &mut rc, &mut sc) {
                            Some(claim) => {
                                for task in &out {
                                    ring.complete(
                                        claim.shard,
                                        task.gid,
                                        task.tuple.seq,
                                        Vec::new(),
                                    );
                                }
                                done += claim.tuples as u64;
                            }
                            None => thread::yield_now(),
                        }
                    }
                })
            };

            // Drain concurrently with the worker's claims/steals/completes.
            let mut drained = Vec::new();
            while (drained.len() as u64) < N {
                let got = ring.try_drain(false, |count, _| drained.push(count));
                if got.unwrap_or(0) == 0 {
                    thread::yield_now();
                }
            }
            worker.join().unwrap();

            // Global arrival order, each stamp exactly once.
            assert_eq!(
                drained,
                (0..N).collect::<Vec<_>>(),
                "merge cursor broke global arrival order"
            );
            assert!(ring.is_empty(), "tuples left behind after full drain");
        })
        .expect("sharded merge-cursor protocol violated");

    assert!(report.schedules > 1);
}
