//! Model threads: `spawn`/`join`/`yield_now` that route through the
//! scheduler inside a model execution and fall back to `std::thread`
//! outside one.
//!
//! Each model thread is backed by a real OS thread, but the scheduler's
//! baton guarantees at most one of them executes user code at a time, so
//! executions stay deterministic.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::{self, Runtime};

/// Handle to a spawned thread; mirrors [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    model: Option<(Arc<Runtime>, usize)>,
    result: Option<Arc<StdMutex<Option<T>>>>,
    std: Option<std::thread::JoinHandle<T>>,
}

/// Spawns a thread. Inside a model execution the child starts parked and
/// only runs when the explorer grants it the baton; its first view of
/// memory is the parent's view at the spawn point (spawn happens-before
/// everything the child does).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = rt::with_ctx(|c| (c.rt.clone(), c.tid));
    match ctx {
        None => JoinHandle {
            model: None,
            result: None,
            std: Some(std::thread::spawn(f)),
        },
        Some((rt, parent)) => {
            let tid = rt.register_thread(parent);
            let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let rt2 = Arc::clone(&rt);
            let os = std::thread::Builder::new()
                .name(format!("model-t{tid}"))
                .spawn(move || {
                    rt::bind_ctx(Arc::clone(&rt2), tid);
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        rt2.start_wait(tid);
                        f()
                    }));
                    match outcome {
                        Ok(v) => {
                            *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        }
                        Err(p) => rt2.thread_panicked(tid, p.as_ref()),
                    }
                    rt2.finish_thread(tid);
                    rt::bind_none();
                })
                .expect("OS thread spawn");
            rt.store_handle(os);
            JoinHandle {
                model: Some((rt, tid)),
                result: Some(slot),
                std: None,
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. Joining a
    /// model thread acquires its final memory view.
    pub fn join(self) -> std::thread::Result<T> {
        match self.model {
            None => self.std.expect("raw handle").join(),
            Some((rt, target)) => {
                let me = rt::with_ctx(|c| c.tid)
                    .expect("a model thread can only be joined from inside the model");
                rt.join_thread(me, target);
                let v = self
                    .result
                    .expect("model handle")
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                match v {
                    Some(v) => Ok(v),
                    // The target panicked; the execution is aborting and this
                    // thread unwinds with it.
                    None => rt::raise_abort(),
                }
            }
        }
    }
}

/// Voluntarily steps aside. Inside the model this deprioritises the
/// calling thread for the next scheduling decision, which is what lets
/// spin-wait loops terminate in every explored schedule.
pub fn yield_now() {
    match rt::with_ctx(|c| (c.rt.clone(), c.tid)) {
        Some((rt, tid)) => rt.yield_now(tid),
        None => std::thread::yield_now(),
    }
}
