//! The model-checking runtime: a cooperative scheduler over real OS threads,
//! a DFS explorer with bounded preemptions, and a simplified C11 memory model
//! tracking acquire/release edges and legal visible-value sets.
//!
//! # Execution model
//!
//! One *execution* runs the user closure once under a fixed *schedule*: at
//! every visible operation (atomic access, lock acquisition, yield) exactly
//! one model thread is active; the arriving thread consults the explorer to
//! decide which thread performs the next operation and parks itself if it is
//! not chosen. Because only one thread ever runs between schedule points, an
//! execution is a deterministic function of its branch choices — which is
//! what makes replay exact.
//!
//! # Exploration
//!
//! Branch points are (a) scheduling choices with more than one runnable
//! candidate and (b) loads with more than one legal visible value. The
//! explorer walks the branch tree depth-first: each execution replays the
//! recorded prefix, extends it with first choices, and on completion the
//! deepest branch with untried alternatives is advanced. Context switches
//! away from a still-runnable thread count as *preemptions* and are bounded
//! (CHESS-style): most concurrency bugs need very few forced preemptions, and
//! the bound collapses the schedule space from exponential to polynomial.
//!
//! # Memory model (simplified C11)
//!
//! Per atomic location the runtime keeps the full modification order as a
//! store list; per thread a vector clock of known events. A load may read any
//! store not superseded for the loading thread: stores it already knows via
//! happens-before, its own reads (read coherence) and its own writes set a
//! floor in the modification order, and everything at or above the floor is a
//! legal candidate — each one a branch. Acquire loads join the release clock
//! of the store they read. Read-modify-writes always read the latest store
//! (C11 atomicity) and continue release sequences. `SeqCst` is approximated:
//! a `SeqCst` load additionally may not read below the latest `SeqCst` store
//! to the same location, which models store-then-load (Dekker) handshakes
//! exactly when both sides use `SeqCst`, as the engine's gate does.
//!
//! Known simplifications (documented limits, not bugs): no load speculation
//! (a load never reads a store that has not yet executed in the schedule), no
//! spurious `compare_exchange_weak` failures, release sequences survive
//! same-thread non-RMW stores, and `SeqCst` fences are not modeled (the
//! engine uses none).

use std::cell::RefCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VersionVec;

/// Unwind payload used to tear threads out of an aborted execution; never a
/// user-visible failure by itself.
pub(crate) struct ModelAbort;

// ------------------------------------------------------------------ context

/// Per-OS-thread binding to the runtime: which model thread this OS thread
/// embodies.
pub(crate) struct Ctx {
    pub(crate) rt: Arc<Runtime>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Runs `f` with the current model context, or returns `None` when this
/// thread is not part of a model execution.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Binds this OS thread to model thread `tid` (spawned-thread preamble).
pub(crate) fn bind_ctx(rt: Arc<Runtime>, tid: usize) {
    set_ctx(Some(Ctx { rt, tid }));
}

/// Clears this OS thread's model binding (spawned-thread epilogue).
pub(crate) fn bind_none() {
    set_ctx(None);
}

/// Unwinds the current thread out of an aborting execution.
pub(crate) fn raise_abort() -> ! {
    abort_unwind()
}

// ------------------------------------------------------------ thread states

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    Blocked,
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wait {
    /// Blocked until the resource is released.
    Resource(usize),
    /// Blocked until the thread finishes.
    Join(usize),
}

struct ThreadSt {
    status: Status,
    yielded: bool,
    waiting: Option<Wait>,
    view: VersionVec,
    /// Logical clock: number of store events this thread has performed.
    time: u64,
}

impl ThreadSt {
    fn new(view: VersionVec) -> Self {
        ThreadSt {
            status: Status::Ready,
            yielded: false,
            waiting: None,
            view,
            time: 0,
        }
    }
}

// ------------------------------------------------------------- memory model

struct StoreEvent {
    value: u64,
    thread: usize,
    time: u64,
    /// Release clock carried by release/`SeqCst` stores (and inherited along
    /// release sequences by RMWs); `None` for relaxed stores.
    release: Option<VersionVec>,
}

struct Location {
    stores: Vec<StoreEvent>,
    /// Index of the latest `SeqCst` store, the floor for `SeqCst` loads.
    last_seqcst: Option<usize>,
    /// Per-thread coherence floor: the modification-order index below which
    /// this thread may no longer read (own writes, prior reads, stores known
    /// via happens-before).
    floors: Vec<usize>,
    /// Per-thread `(index read, store-list length)` of the previous load;
    /// drives the eventual-visibility rule that makes spin loops terminate.
    last_reads: Vec<Option<(usize, usize)>>,
    /// Set by `collapse` (`get_mut`): the next operation must re-import the
    /// raw value mutated through the exclusive reference.
    dirty: bool,
}

/// Lock resource: a mutex is a writer-only resource, an rwlock also counts
/// readers. The resource clock accumulates every releasing holder's view, so
/// lock handoff is an acquire/release edge.
struct Resource {
    writer: Option<usize>,
    readers: usize,
    clock: VersionVec,
}

// -------------------------------------------------------------- exploration

#[derive(Clone, Copy, Debug)]
struct Branch {
    chosen: usize,
    total: usize,
}

pub(crate) struct State {
    // Exploration state, persistent across executions.
    path: Vec<Branch>,
    cursor: usize,
    // Per-execution state.
    threads: Vec<ThreadSt>,
    active: usize,
    live: usize,
    locations: Vec<Location>,
    resources: Vec<Resource>,
    preemptions: usize,
    steps: u64,
    trace: Vec<String>,
    failure: Option<String>,
    abort: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The shared runtime of one [`Builder::check`] call.
pub(crate) struct Runtime {
    state: Mutex<State>,
    cv: Condvar,
    /// Current execution id; atomics stamp it at registration so a cell that
    /// leaks across executions is caught instead of corrupting state.
    exec: AtomicU32,
    cfg: Builder,
}

fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn is_abort(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<ModelAbort>().is_some()
}

fn abort_unwind() -> ! {
    panic::resume_unwind(Box::new(ModelAbort))
}

fn lock_state(rt: &Runtime) -> MutexGuard<'_, State> {
    rt.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Runtime {
    fn new(cfg: Builder) -> Self {
        Runtime {
            state: Mutex::new(State {
                path: Vec::new(),
                cursor: 0,
                threads: Vec::new(),
                active: 0,
                live: 0,
                locations: Vec::new(),
                resources: Vec::new(),
                preemptions: 0,
                steps: 0,
                trace: Vec::new(),
                failure: None,
                abort: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            exec: AtomicU32::new(0),
            cfg,
        }
    }

    pub(crate) fn current_exec(&self) -> u32 {
        self.exec.load(Ordering::Relaxed)
    }

    // ---------------------------------------------------------- exploration

    /// Picks one of `total` alternatives, replaying the recorded path prefix
    /// and extending it with first choices past the frontier. Single-option
    /// decisions are not recorded, keeping seeds short.
    fn choose(st: &mut State, total: usize, what: &str) -> usize {
        debug_assert!(total >= 1);
        if total == 1 {
            return 0;
        }
        if st.cursor < st.path.len() {
            let b = st.path[st.cursor];
            assert_eq!(
                b.total, total,
                "nondeterministic replay at branch {}: recorded {} options, now {} ({})",
                st.cursor, b.total, total, what
            );
            st.cursor += 1;
            b.chosen
        } else {
            st.path.push(Branch { chosen: 0, total });
            st.cursor += 1;
            0
        }
    }

    /// Advances the DFS to the next unexplored schedule; `false` when the
    /// tree is exhausted.
    fn advance_path(&self) -> bool {
        let mut st = lock_state(self);
        let cursor = st.cursor;
        st.path.truncate(cursor);
        while let Some(last) = st.path.last_mut() {
            if last.chosen + 1 < last.total {
                last.chosen += 1;
                return true;
            }
            st.path.pop();
        }
        false
    }

    /// Seed string of the choices taken so far this execution.
    fn seed_of(st: &State) -> String {
        st.path[..st.cursor]
            .iter()
            .map(|b| format!("{}/{}", b.chosen, b.total))
            .collect::<Vec<_>>()
            .join(",")
    }

    // ----------------------------------------------------------- scheduling

    /// Runnable candidates in deterministic (thread-id) order. Yielded
    /// threads are skipped unless nothing else can run, which is what makes
    /// spin-wait loops terminate in every explored schedule.
    fn candidates(st: &State) -> Vec<usize> {
        let ready = |t: &ThreadSt| t.status == Status::Ready;
        let eager: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| ready(t) && !t.yielded)
            .map(|(i, _)| i)
            .collect();
        if !eager.is_empty() {
            return eager;
        }
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| ready(t))
            .map(|(i, _)| i)
            .collect()
    }

    /// The arrival half of a schedule point: `me` (still active) decides who
    /// performs the next operation. Returns the chosen thread; the caller
    /// parks if it was not chosen.
    fn pick_next(&self, st: &mut State, me: usize) -> usize {
        let mut cands = Self::candidates(st);
        debug_assert!(!cands.is_empty(), "the arriving thread is runnable");
        // A voluntarily yielding thread hands the baton over: it may not be
        // re-picked while any other thread can run. Without this, two
        // spin-waiting threads (both marked yielded) would let the DFS
        // first-choice starve one of them forever and report a livelock.
        if st.threads[me].yielded && cands.len() > 1 {
            cands.retain(|&c| c != me);
        }
        let me_contending = st.threads[me].status == Status::Ready && !st.threads[me].yielded;
        if me_contending {
            let budget_left = self.cfg.preemption_bound.is_none_or(|b| st.preemptions < b);
            if !budget_left {
                return me;
            }
        }
        let idx = Self::choose(st, cands.len(), "schedule");
        let next = cands[idx];
        if me_contending && next != me {
            st.preemptions += 1;
        }
        next
    }

    /// Parks until this thread is granted the baton; unwinds on abort.
    fn wait_grant<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        tid: usize,
    ) -> MutexGuard<'a, State> {
        while st.active != tid && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st
    }

    /// Full schedule point: arrive, hand over if another thread is chosen,
    /// and return with the state lock held once this thread is (re)granted.
    /// `yielding` marks the thread as voluntarily deprioritised for this
    /// decision (spin-wait back-off).
    fn enter(&self, tid: usize, yielding: bool) -> MutexGuard<'_, State> {
        let mut st = lock_state(self);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        debug_assert_eq!(st.active, tid, "only the active thread reaches ops");
        st.threads[tid].yielded = yielding;
        let next = self.pick_next(&mut st, tid);
        if next != tid {
            st.active = next;
            self.cv.notify_all();
            st = self.wait_grant(st, tid);
        }
        st.threads[tid].yielded = false;
        st.steps += 1;
        if st.steps > self.cfg.max_steps && st.failure.is_none() {
            let msg = format!(
                "livelock: execution exceeded {} steps without completing",
                self.cfg.max_steps
            );
            self.fail_locked(st, tid, msg);
        }
        st
    }

    /// Records a failure, aborts every thread and unwinds the current one.
    fn fail_locked(&self, mut st: MutexGuard<'_, State>, tid: usize, msg: String) -> ! {
        if st.failure.is_none() {
            st.trace.push(format!("t{tid}: FAILURE: {msg}"));
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
        drop(st);
        abort_unwind();
    }

    fn trace_op(&self, st: &mut State, line: String) {
        if st.trace.len() < 100_000 {
            st.trace.push(line);
        }
    }

    // -------------------------------------------------------------- threads

    /// Registers a spawned model thread; its initial view inherits the
    /// parent's (spawn is a happens-before edge).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = lock_state(self);
        let tid = st.threads.len();
        let view = st.threads[parent].view.clone();
        st.threads.push(ThreadSt::new(view));
        st.live += 1;
        let line = format!("t{parent}: spawn t{tid}");
        self.trace_op(&mut st, line);
        tid
    }

    pub(crate) fn store_handle(&self, h: std::thread::JoinHandle<()>) {
        lock_state(self).handles.push(h);
    }

    /// First wait of a spawned thread: it runs no user code until granted.
    pub(crate) fn start_wait(&self, tid: usize) {
        let st = lock_state(self);
        let st = self.wait_grant(st, tid);
        drop(st);
    }

    /// Marks `tid` finished, wakes joiners and hands the baton over. Never
    /// unwinds — it runs on teardown paths.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = lock_state(self);
        st.threads[tid].status = Status::Finished;
        st.threads[tid].waiting = None;
        st.live -= 1;
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked && t.waiting == Some(Wait::Join(tid)) {
                t.status = Status::Ready;
                t.waiting = None;
            }
        }
        if st.live > 0 && !st.abort {
            let cands = Self::candidates(&st);
            if cands.is_empty() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Blocked)
                    .map(|(i, t)| format!("t{i} on {:?}", t.waiting))
                    .collect();
                let msg = format!(
                    "deadlock: every live thread is blocked ({})",
                    blocked.join(", ")
                );
                if st.failure.is_none() {
                    st.trace.push(format!("t{tid}: FAILURE: {msg}"));
                    st.failure = Some(msg);
                }
                st.abort = true;
            } else {
                let idx = Self::choose(&mut st, cands.len(), "finish handoff");
                st.active = cands[idx];
            }
        }
        self.cv.notify_all();
    }

    /// Records a non-abort panic of thread `tid` as the execution's failure.
    pub(crate) fn thread_panicked(&self, tid: usize, payload: &(dyn std::any::Any + Send)) {
        if is_abort(payload) {
            return;
        }
        let mut st = lock_state(self);
        if st.failure.is_none() {
            let msg = format!("t{tid} panicked: {}", payload_message(payload));
            st.trace.push(format!("t{tid}: FAILURE: {msg}"));
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Voluntary yield: a schedule point at which this thread steps aside.
    pub(crate) fn yield_now(&self, tid: usize) {
        let mut st = self.enter(tid, true);
        let line = format!("t{tid}: yield");
        self.trace_op(&mut st, line);
    }

    /// Blocks until `target` finishes; joining is an acquire of the target's
    /// final view.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        let mut st = self.enter(tid, false);
        loop {
            if st.threads[target].status == Status::Finished {
                let v = st.threads[target].view.clone();
                st.threads[tid].view.join(&v);
                let line = format!("t{tid}: join t{target}");
                self.trace_op(&mut st, line);
                return;
            }
            st = self.block_on(st, tid, Wait::Join(target));
        }
    }

    /// Marks `tid` blocked on `wait`, hands the baton over (detecting
    /// deadlock) and parks until woken *and* granted.
    fn block_on<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        tid: usize,
        wait: Wait,
    ) -> MutexGuard<'a, State> {
        st.threads[tid].status = Status::Blocked;
        st.threads[tid].waiting = Some(wait);
        let cands = Self::candidates(&st);
        if cands.is_empty() {
            let msg = format!("deadlock: t{tid} blocked on {wait:?} with no runnable thread left");
            self.fail_locked(st, tid, msg);
        }
        let idx = Self::choose(&mut st, cands.len(), "block handoff");
        st.active = cands[idx];
        self.cv.notify_all();
        self.wait_grant(st, tid)
    }

    // -------------------------------------------------------------- atomics

    /// Registers an atomic cell, seeding its modification order with the
    /// initial value as a store by the creating thread.
    pub(crate) fn register_atomic(&self, tid: usize, init: u64) -> usize {
        let mut st = lock_state(self);
        let t = &mut st.threads[tid];
        t.time += 1;
        let time = t.time;
        t.view.set(tid, time);
        let loc = st.locations.len();
        st.locations.push(Location {
            stores: vec![StoreEvent {
                value: init,
                thread: tid,
                time,
                release: None,
            }],
            last_seqcst: None,
            floors: Vec::new(),
            last_reads: Vec::new(),
            dirty: false,
        });
        loc
    }

    fn floor_of(st: &State, tid: usize, loc: usize, ord: Ordering) -> usize {
        let l = &st.locations[loc];
        let view = &st.threads[tid].view;
        let mut floor = l.floors.get(tid).copied().unwrap_or(0);
        for (i, s) in l.stores.iter().enumerate().skip(floor) {
            if view.covers(s.thread, s.time) {
                floor = i;
            }
        }
        if matches!(ord, Ordering::SeqCst) {
            if let Some(i) = l.last_seqcst {
                floor = floor.max(i);
            }
        }
        floor
    }

    fn set_floor(st: &mut State, tid: usize, loc: usize, idx: usize) {
        let floors = &mut st.locations[loc].floors;
        if floors.len() <= tid {
            floors.resize(tid + 1, 0);
        }
        floors[tid] = floors[tid].max(idx);
    }

    /// Re-imports a value mutated through `get_mut` before the next op.
    fn sync_dirty(st: &mut State, loc: usize, raw: u64) {
        if st.locations[loc].dirty {
            st.locations[loc].dirty = false;
            if let Some(last) = st.locations[loc].stores.last_mut() {
                last.value = raw;
            }
        }
    }

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// An atomic load: branches over every legal visible value.
    pub(crate) fn atomic_load(&self, tid: usize, loc: usize, ord: Ordering, raw: u64) -> u64 {
        assert!(
            !matches!(ord, Ordering::Release | Ordering::AcqRel),
            "invalid load ordering {ord:?}"
        );
        let mut st = self.enter(tid, false);
        Self::sync_dirty(&mut st, loc, raw);
        let mut floor = Self::floor_of(&st, tid, loc, ord);
        let len = st.locations[loc].stores.len();
        // Eventual visibility (C11 guarantees stores become visible in
        // finite time): a re-read of a location whose store list has not
        // grown since this thread's previous read must move forward in
        // modification order. Without this, a spin loop re-reading the same
        // stale value would branch forever.
        if let Some(Some((prev_idx, prev_len))) = st.locations[loc].last_reads.get(tid).copied() {
            if prev_len == len {
                floor = floor.max((prev_idx + 1).min(len - 1));
            }
        }
        let total = len - floor;
        let pick = floor + Self::choose(&mut st, total, "load value");
        Self::set_floor(&mut st, tid, loc, pick);
        {
            let reads = &mut st.locations[loc].last_reads;
            if reads.len() <= tid {
                reads.resize(tid + 1, None);
            }
            reads[tid] = Some((pick, len));
        }
        let (value, release) = {
            let s = &st.locations[loc].stores[pick];
            (s.value, s.release.clone())
        };
        if Self::is_acquire(ord) {
            if let Some(c) = &release {
                st.threads[tid].view.join(c);
            }
        }
        let line = format!(
            "t{tid}: load a{loc} -> {value} ({ord:?}{})",
            if total > 1 {
                format!(", {total} visible")
            } else {
                String::new()
            }
        );
        self.trace_op(&mut st, line);
        value
    }

    /// Appends a store event; release orderings snapshot the thread's clock.
    fn push_store(
        st: &mut State,
        tid: usize,
        loc: usize,
        value: u64,
        ord: Ordering,
        inherit: Option<VersionVec>,
    ) {
        let t = &mut st.threads[tid];
        t.time += 1;
        let time = t.time;
        t.view.set(tid, time);
        let mut release = if Self::is_release(ord) {
            Some(t.view.clone())
        } else {
            None
        };
        // Release-sequence continuation: an RMW passes the clock of the store
        // it read along, even when the RMW itself is relaxed.
        if let Some(prev) = inherit {
            match &mut release {
                Some(r) => r.join(&prev),
                None => release = Some(prev),
            }
        }
        let l = &mut st.locations[loc];
        l.stores.push(StoreEvent {
            value,
            thread: tid,
            time,
            release,
        });
        let idx = l.stores.len() - 1;
        if matches!(ord, Ordering::SeqCst) {
            l.last_seqcst = Some(idx);
        }
        Self::set_floor(st, tid, loc, idx);
    }

    pub(crate) fn atomic_store(&self, tid: usize, loc: usize, value: u64, ord: Ordering, raw: u64) {
        assert!(
            !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
            "invalid store ordering {ord:?}"
        );
        let mut st = self.enter(tid, false);
        Self::sync_dirty(&mut st, loc, raw);
        Self::push_store(&mut st, tid, loc, value, ord, None);
        let line = format!("t{tid}: store a{loc} = {value} ({ord:?})");
        self.trace_op(&mut st, line);
    }

    /// A read-modify-write: reads the latest store in modification order
    /// (C11 atomicity), applies `f`, appends the result.
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        raw: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut st = self.enter(tid, false);
        Self::sync_dirty(&mut st, loc, raw);
        let idx = st.locations[loc].stores.len() - 1;
        let (old, prev_release) = {
            let s = &st.locations[loc].stores[idx];
            (s.value, s.release.clone())
        };
        if Self::is_acquire(ord) {
            if let Some(c) = &prev_release {
                st.threads[tid].view.join(c);
            }
        }
        Self::set_floor(&mut st, tid, loc, idx);
        let new = f(old);
        Self::push_store(&mut st, tid, loc, new, ord, prev_release);
        let line = format!("t{tid}: rmw a{loc} {old} -> {new} ({ord:?})");
        self.trace_op(&mut st, line);
        old
    }

    /// Compare-exchange; the failure path is a load of the latest value with
    /// the failure ordering (a documented strengthening: C11 lets a failed
    /// CAS read older visible stores, and weak CAS may fail spuriously).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        loc: usize,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        raw: u64,
    ) -> Result<u64, u64> {
        let mut st = self.enter(tid, false);
        Self::sync_dirty(&mut st, loc, raw);
        let idx = st.locations[loc].stores.len() - 1;
        let (old, prev_release) = {
            let s = &st.locations[loc].stores[idx];
            (s.value, s.release.clone())
        };
        Self::set_floor(&mut st, tid, loc, idx);
        if old == expected {
            if Self::is_acquire(success) {
                if let Some(c) = &prev_release {
                    st.threads[tid].view.join(c);
                }
            }
            Self::push_store(&mut st, tid, loc, new, success, prev_release);
            let line = format!("t{tid}: cas a{loc} {old} -> {new} ok ({success:?})");
            self.trace_op(&mut st, line);
            Ok(old)
        } else {
            if Self::is_acquire(failure) {
                if let Some(c) = &prev_release {
                    st.threads[tid].view.join(c);
                }
            }
            let line = format!("t{tid}: cas a{loc} expected {expected}, found {old} (failed)");
            self.trace_op(&mut st, line);
            Err(old)
        }
    }

    /// `get_mut`-style exclusive access: collapses the location to a single
    /// store of the current value and marks it dirty so the next op imports
    /// whatever the `&mut` holder wrote.
    pub(crate) fn atomic_collapse(&self, tid: usize, loc: usize) -> u64 {
        let mut st = lock_state(self);
        let value = st.locations[loc]
            .stores
            .last()
            .map(|s| s.value)
            .unwrap_or(0);
        let t = &mut st.threads[tid];
        t.time += 1;
        let time = t.time;
        t.view.set(tid, time);
        let release = Some(t.view.clone());
        let l = &mut st.locations[loc];
        l.stores = vec![StoreEvent {
            value,
            thread: tid,
            time,
            release,
        }];
        l.last_seqcst = None;
        l.floors.clear();
        l.last_reads.clear();
        l.dirty = true;
        value
    }

    // ------------------------------------------------------------ resources

    pub(crate) fn register_resource(&self) -> usize {
        let mut st = lock_state(self);
        let id = st.resources.len();
        st.resources.push(Resource {
            writer: None,
            readers: 0,
            clock: VersionVec::new(),
        });
        id
    }

    /// Acquires `res` (write = exclusive, read = shared), blocking through
    /// the scheduler until available.
    pub(crate) fn res_acquire(&self, tid: usize, res: usize, write: bool) {
        let mut st = self.enter(tid, false);
        loop {
            let free = {
                let r = &st.resources[res];
                if write {
                    r.writer.is_none() && r.readers == 0
                } else {
                    r.writer.is_none()
                }
            };
            if free {
                let clock = st.resources[res].clock.clone();
                st.threads[tid].view.join(&clock);
                let r = &mut st.resources[res];
                if write {
                    r.writer = Some(tid);
                } else {
                    r.readers += 1;
                }
                let line = format!(
                    "t{tid}: {} m{res}",
                    if write { "lock" } else { "read-lock" }
                );
                self.trace_op(&mut st, line);
                return;
            }
            st = self.block_on(st, tid, Wait::Resource(res));
        }
    }

    /// Non-blocking acquire attempt; still a schedule point.
    pub(crate) fn res_try_acquire(&self, tid: usize, res: usize, write: bool) -> bool {
        let mut st = self.enter(tid, false);
        let free = {
            let r = &st.resources[res];
            if write {
                r.writer.is_none() && r.readers == 0
            } else {
                r.writer.is_none()
            }
        };
        if free {
            let clock = st.resources[res].clock.clone();
            st.threads[tid].view.join(&clock);
            let r = &mut st.resources[res];
            if write {
                r.writer = Some(tid);
            } else {
                r.readers += 1;
            }
        }
        let line = format!(
            "t{tid}: try-{} m{res} -> {}",
            if write { "lock" } else { "read-lock" },
            if free { "acquired" } else { "busy" }
        );
        self.trace_op(&mut st, line);
        free
    }

    /// Releases `res`. Deliberately not a schedule point and never unwinds:
    /// it runs from guard `Drop` impls, including during abort unwinding.
    pub(crate) fn res_release(&self, tid: usize, res: usize, write: bool) {
        let mut st = lock_state(self);
        let view = st.threads[tid].view.clone();
        let r = &mut st.resources[res];
        if write {
            debug_assert_eq!(r.writer, Some(tid));
            r.writer = None;
        } else {
            debug_assert!(r.readers > 0);
            r.readers -= 1;
        }
        r.clock.join(&view);
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked && t.waiting == Some(Wait::Resource(res)) {
                t.status = Status::Ready;
                t.waiting = None;
            }
        }
        let line = format!("t{tid}: unlock m{res}");
        self.trace_op(&mut st, line);
        self.cv.notify_all();
    }
}

// ------------------------------------------------------------------ builder

/// Exploration configuration and entry points.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum forced context switches away from a runnable thread per
    /// execution (CHESS-style); `None` removes the bound.
    pub preemption_bound: Option<usize>,
    /// Stop after exploring this many schedules (the report's `complete`
    /// flag records whether the tree was exhausted first).
    pub max_schedules: u64,
    /// Per-execution step limit; exceeding it is reported as a livelock.
    pub max_steps: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_schedules: 100_000,
            max_steps: 20_000,
        }
    }
}

/// Outcome of an exhausted (or capped) exploration with no violation.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules (executions) explored.
    pub schedules: u64,
    /// Whether the branch tree was exhausted (`false`: `max_schedules` hit).
    pub complete: bool,
}

/// A violation found by the explorer: what failed, the exact failing
/// schedule as a replayable seed, and the operation trace of that execution.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic/assertion message of the violation.
    pub message: String,
    /// Replayable schedule seed (`chosen/total` branch list); feed it to
    /// [`Builder::replay`] to reproduce this exact execution.
    pub seed: String,
    /// The per-operation trace of the failing execution.
    pub trace: Vec<String>,
    /// Schedules explored up to and including the failing one.
    pub schedules_explored: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model checking failed: {}", self.message)?;
        writeln!(
            f,
            "after {} schedule(s); failing schedule seed: [{}]",
            self.schedules_explored, self.seed
        )?;
        writeln!(f, "failing schedule ({} ops):", self.trace.len())?;
        for (i, line) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:4}  {line}")?;
        }
        Ok(())
    }
}

impl Builder {
    /// Explores `f` and panics with the printed failing schedule on any
    /// violation; returns the exploration report otherwise.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        match self.check_report(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Explores `f`, returning the failure (with seed and trace) instead of
    /// panicking — the mutation harness's entry point.
    pub fn check_report<F: Fn()>(&self, f: F) -> Result<Report, Failure> {
        self.run(f, None)
    }

    /// Replays exactly one schedule from a recorded `seed` (as produced in
    /// [`Failure::seed`]), returning its outcome. Replaying the same seed
    /// twice yields byte-identical traces.
    pub fn replay<F: Fn()>(&self, seed: &str, f: F) -> Result<Report, Failure> {
        self.run(f, Some(seed))
    }

    fn run<F: Fn()>(&self, f: F, replay_seed: Option<&str>) -> Result<Report, Failure> {
        let rt = Arc::new(Runtime::new(self.clone()));
        if let Some(seed) = replay_seed {
            let mut st = lock_state(&rt);
            st.path = parse_seed(seed);
        }
        let mut schedules = 0u64;
        loop {
            rt.begin_execution();
            set_ctx(Some(Ctx {
                rt: rt.clone(),
                tid: 0,
            }));
            let result = panic::catch_unwind(AssertUnwindSafe(&f));
            if let Err(payload) = result {
                rt.thread_panicked(0, payload.as_ref());
            }
            rt.finish_thread(0);
            rt.wait_all_done();
            set_ctx(None);
            rt.join_handles();
            schedules += 1;
            if let Some(failure) = rt.take_failure(schedules) {
                return Err(failure);
            }
            if replay_seed.is_some() {
                return Ok(Report {
                    schedules,
                    complete: false,
                });
            }
            if !rt.advance_path() {
                return Ok(Report {
                    schedules,
                    complete: true,
                });
            }
            if schedules >= self.max_schedules {
                return Ok(Report {
                    schedules,
                    complete: false,
                });
            }
        }
    }
}

fn parse_seed(seed: &str) -> Vec<Branch> {
    seed.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            let (c, t) = pair
                .trim()
                .split_once('/')
                .expect("seed entries are chosen/total pairs");
            Branch {
                chosen: c.parse().expect("seed chosen index"),
                total: t.parse().expect("seed option count"),
            }
        })
        .collect()
}

impl Runtime {
    fn begin_execution(&self) {
        let mut st = lock_state(self);
        self.exec.fetch_add(1, Ordering::Relaxed);
        st.cursor = 0;
        st.threads = vec![ThreadSt::new(VersionVec::new())];
        st.active = 0;
        st.live = 1;
        st.locations.clear();
        st.resources.clear();
        st.preemptions = 0;
        st.steps = 0;
        st.trace.clear();
        st.failure = None;
        st.abort = false;
    }

    fn wait_all_done(&self) {
        let mut st = lock_state(self);
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn join_handles(&self) {
        let handles = std::mem::take(&mut lock_state(self).handles);
        for h in handles {
            let _ = h.join();
        }
    }

    fn take_failure(&self, schedules: u64) -> Option<Failure> {
        let st = lock_state(self);
        st.failure.as_ref().map(|message| Failure {
            message: message.clone(),
            seed: Self::seed_of(&st),
            trace: st.trace.clone(),
            schedules_explored: schedules,
        })
    }
}

/// Checks `f` under the default [`Builder`], panicking with the printed
/// failing schedule on any violation.
pub fn model<F: Fn()>(f: F) -> Report {
    Builder::default().check(f)
}
