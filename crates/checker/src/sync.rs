//! Instrumented drop-in replacements for `std::sync::atomic` and
//! `parking_lot` locks.
//!
//! Every cell keeps a *raw* standard atomic mirror next to its model
//! location id. Cells created while a model execution is running on the
//! current OS thread register with the runtime and route every operation
//! through the scheduler and memory model; cells created outside a model
//! (statics, setup code, production builds that still link this crate)
//! behave exactly like the standard types. A cell that leaks from one model
//! execution into the next is detected by an execution-id stamp and
//! panics instead of corrupting exploration state.
//!
//! Locks follow the same pattern, with one extra rule: a *raw* lock used
//! inside a model execution is acquired with a `try_lock` + model-yield
//! loop, never an OS block — blocking the OS thread would deadlock the
//! scheduler if the holder is a parked model thread.

use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;

use crate::rt::{self, Runtime};

pub(crate) fn pack_loc(exec: u32, idx: usize) -> u64 {
    ((exec as u64) << 32) | (idx as u64 + 1)
}

/// Resolves a packed location stamp to `(runtime, current thread, index)`,
/// or `None` when the operation should fall through to the raw mirror.
pub(crate) fn resolve_loc(loc: &StdAtomicU64) -> Option<(Arc<Runtime>, usize, usize)> {
    let packed = loc.load(StdOrdering::Relaxed);
    if packed == 0 {
        return None;
    }
    rt::with_ctx(|ctx| {
        let exec = (packed >> 32) as u32;
        assert_eq!(
            exec,
            ctx.rt.current_exec(),
            "model cell created in a previous execution used again; \
             create all shared state inside the model closure"
        );
        (ctx.rt.clone(), ctx.tid, (packed & 0xffff_ffff) as usize - 1)
    })
}

fn register_atomic(init: u64) -> u64 {
    rt::with_ctx(|ctx| {
        let idx = ctx.rt.register_atomic(ctx.tid, init);
        pack_loc(ctx.rt.current_exec(), idx)
    })
    .unwrap_or(0)
}

fn register_resource() -> u64 {
    rt::with_ctx(|ctx| {
        let idx = ctx.rt.register_resource();
        pack_loc(ctx.rt.current_exec(), idx)
    })
    .unwrap_or(0)
}

/// Model atomics; mirrors the `std::sync::atomic` module layout.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic_base {
        ($name:ident, $std:ident, $ty:ty, $to:expr, $from:expr) => {
            /// Instrumented counterpart of the same-named standard atomic.
            pub struct $name {
                raw: std::sync::atomic::$std,
                loc: StdAtomicU64,
            }

            impl $name {
                const TO: fn($ty) -> u64 = $to;
                const FROM: fn(u64) -> $ty = $from;

                pub fn new(v: $ty) -> Self {
                    $name {
                        raw: std::sync::atomic::$std::new(v),
                        loc: StdAtomicU64::new(register_atomic(($to)(v))),
                    }
                }

                fn resolve(&self) -> Option<(Arc<Runtime>, usize, usize)> {
                    resolve_loc(&self.loc)
                }

                fn raw_now(&self) -> u64 {
                    Self::TO(self.raw.load(Ordering::Relaxed))
                }

                pub fn load(&self, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.load(ord),
                        Some((rt, tid, loc)) => {
                            Self::FROM(rt.atomic_load(tid, loc, ord, self.raw_now()))
                        }
                    }
                }

                pub fn store(&self, v: $ty, ord: Ordering) {
                    match self.resolve() {
                        None => self.raw.store(v, ord),
                        Some((rt, tid, loc)) => {
                            rt.atomic_store(tid, loc, Self::TO(v), ord, self.raw_now());
                            self.raw.store(v, Ordering::Relaxed);
                        }
                    }
                }

                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.swap(v, ord),
                        Some((rt, tid, loc)) => {
                            let old = rt.atomic_rmw(tid, loc, ord, self.raw_now(), |_| Self::TO(v));
                            self.raw.store(v, Ordering::Relaxed);
                            Self::FROM(old)
                        }
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match self.resolve() {
                        None => self.raw.compare_exchange(current, new, success, failure),
                        Some((rt, tid, loc)) => {
                            let r = rt.atomic_cas(
                                tid,
                                loc,
                                Self::TO(current),
                                Self::TO(new),
                                success,
                                failure,
                                self.raw_now(),
                            );
                            if r.is_ok() {
                                self.raw.store(new, Ordering::Relaxed);
                            }
                            r.map(Self::FROM).map_err(Self::FROM)
                        }
                    }
                }

                /// Identical to [`Self::compare_exchange`]: the model does not
                /// generate spurious failures (a documented simplification).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn get_mut(&mut self) -> &mut $ty {
                    if let Some((rt, tid, loc)) = self.resolve() {
                        rt.atomic_collapse(tid, loc);
                    }
                    self.raw.get_mut()
                }

                pub fn into_inner(self) -> $ty {
                    self.raw.into_inner()
                }

                fn fetch_op(&self, ord: Ordering, f: impl Fn($ty) -> $ty) -> $ty {
                    let (rt, tid, loc) = self
                        .resolve()
                        .expect("fetch_op is only routed here for model cells");
                    let old = rt.atomic_rmw(tid, loc, ord, self.raw_now(), |old| {
                        Self::TO(f(Self::FROM(old)))
                    });
                    let old = Self::FROM(old);
                    self.raw.store(f(old), Ordering::Relaxed);
                    old
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    std::fmt::Debug::fmt(&self.raw, f)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl From<$ty> for $name {
                fn from(v: $ty) -> Self {
                    Self::new(v)
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.fetch_add(v, ord),
                        Some(_) => self.fetch_op(ord, |old| old.wrapping_add(v)),
                    }
                }

                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.fetch_sub(v, ord),
                        Some(_) => self.fetch_op(ord, |old| old.wrapping_sub(v)),
                    }
                }

                pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.fetch_or(v, ord),
                        Some(_) => self.fetch_op(ord, |old| old | v),
                    }
                }

                pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.fetch_and(v, ord),
                        Some(_) => self.fetch_op(ord, |old| old & v),
                    }
                }

                pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.fetch_max(v, ord),
                        Some(_) => self.fetch_op(ord, |old| old.max(v)),
                    }
                }

                pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                    match self.resolve() {
                        None => self.raw.fetch_min(v, ord),
                        Some(_) => self.fetch_op(ord, |old| old.min(v)),
                    }
                }
            }
        };
    }

    model_atomic_base!(AtomicU64, AtomicU64, u64, |v| v, |v| v);
    model_atomic_base!(AtomicUsize, AtomicUsize, usize, |v| v as u64, |v| v
        as usize);
    model_atomic_base!(AtomicU8, AtomicU8, u8, |v| v as u64, |v| v as u8);
    model_atomic_base!(AtomicU32, AtomicU32, u32, |v| v as u64, |v| v as u32);
    model_atomic_base!(AtomicI64, AtomicI64, i64, |v| v as u64, |v| v as i64);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU8, u8);
    model_atomic_arith!(AtomicU32, u32);
    model_atomic_arith!(AtomicI64, i64);

    model_atomic_base!(AtomicBool, AtomicBool, bool, |v| v as u64, |v| v != 0);

    impl AtomicBool {
        pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
            match self.resolve() {
                None => self.raw.fetch_or(v, ord),
                Some(_) => self.fetch_op(ord, |old| old | v),
            }
        }

        pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
            match self.resolve() {
                None => self.raw.fetch_and(v, ord),
                Some(_) => self.fetch_op(ord, |old| old & v),
            }
        }
    }
}

// -------------------------------------------------------------------- locks

use std::sync::TryLockError;

/// Acquires the std data lock that the model scheduler has just granted
/// exclusively; poison from an aborted execution is discarded.
fn owned_mutex<'a, T: ?Sized>(m: &'a std::sync::Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => {
            unreachable!("model resource held, so the data lock must be free")
        }
    }
}

/// Instrumented counterpart of `parking_lot::Mutex` (no poisoning).
pub struct Mutex<T: ?Sized> {
    res: StdAtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            res: StdAtomicU64::new(register_resource()),
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn resolve(&self) -> Option<(Arc<Runtime>, usize, usize)> {
        resolve_loc(&self.res)
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.resolve() {
            Some((rt, tid, res)) => {
                rt.res_acquire(tid, res, true);
                MutexGuard {
                    inner: Some(owned_mutex(&self.inner)),
                    model: Some((rt, tid, res)),
                }
            }
            None => {
                if rt::with_ctx(|_| ()).is_some() {
                    // Raw lock inside a model execution: spin through the
                    // scheduler so a parked holder can still be run.
                    loop {
                        match self.inner.try_lock() {
                            Ok(g) => {
                                return MutexGuard {
                                    inner: Some(g),
                                    model: None,
                                }
                            }
                            Err(TryLockError::Poisoned(e)) => {
                                return MutexGuard {
                                    inner: Some(e.into_inner()),
                                    model: None,
                                }
                            }
                            Err(TryLockError::WouldBlock) => crate::thread::yield_now(),
                        }
                    }
                }
                MutexGuard {
                    inner: Some(
                        self.inner
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    ),
                    model: None,
                }
            }
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.resolve() {
            Some((rt, tid, res)) => {
                if rt.res_try_acquire(tid, res, true) {
                    Some(MutexGuard {
                        inner: Some(owned_mutex(&self.inner)),
                        model: Some((rt, tid, res)),
                    })
                } else {
                    None
                }
            }
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                    inner: Some(e.into_inner()),
                    model: None,
                }),
                Err(TryLockError::WouldBlock) => None,
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`]; releases the model resource after the data lock.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Runtime>, usize, usize)>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: free the std lock before the model resource, so the
        // next granted owner's `try_lock` cannot observe it still held.
        self.inner.take();
        if let Some((rt, tid, res)) = self.model.take() {
            rt.res_release(tid, res, true);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}

/// Instrumented counterpart of `parking_lot::RwLock` (no poisoning).
pub struct RwLock<T: ?Sized> {
    res: StdAtomicU64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock {
            res: StdAtomicU64::new(register_resource()),
            inner: std::sync::RwLock::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn owned_read<'a, T: ?Sized>(l: &'a std::sync::RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    match l.try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => {
            unreachable!("model resource shared, so a read lock must be available")
        }
    }
}

fn owned_write<'a, T: ?Sized>(l: &'a std::sync::RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    match l.try_write() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => {
            unreachable!("model resource exclusive, so the write lock must be free")
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn resolve(&self) -> Option<(Arc<Runtime>, usize, usize)> {
        resolve_loc(&self.res)
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.resolve() {
            Some((rt, tid, res)) => {
                rt.res_acquire(tid, res, false);
                RwLockReadGuard {
                    inner: Some(owned_read(&self.inner)),
                    model: Some((rt, tid, res)),
                }
            }
            None => {
                if rt::with_ctx(|_| ()).is_some() {
                    loop {
                        match self.inner.try_read() {
                            Ok(g) => {
                                return RwLockReadGuard {
                                    inner: Some(g),
                                    model: None,
                                }
                            }
                            Err(TryLockError::Poisoned(e)) => {
                                return RwLockReadGuard {
                                    inner: Some(e.into_inner()),
                                    model: None,
                                }
                            }
                            Err(TryLockError::WouldBlock) => crate::thread::yield_now(),
                        }
                    }
                }
                RwLockReadGuard {
                    inner: Some(
                        self.inner
                            .read()
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    ),
                    model: None,
                }
            }
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.resolve() {
            Some((rt, tid, res)) => {
                rt.res_acquire(tid, res, true);
                RwLockWriteGuard {
                    inner: Some(owned_write(&self.inner)),
                    model: Some((rt, tid, res)),
                }
            }
            None => {
                if rt::with_ctx(|_| ()).is_some() {
                    loop {
                        match self.inner.try_write() {
                            Ok(g) => {
                                return RwLockWriteGuard {
                                    inner: Some(g),
                                    model: None,
                                }
                            }
                            Err(TryLockError::Poisoned(e)) => {
                                return RwLockWriteGuard {
                                    inner: Some(e.into_inner()),
                                    model: None,
                                }
                            }
                            Err(TryLockError::WouldBlock) => crate::thread::yield_now(),
                        }
                    }
                }
                RwLockWriteGuard {
                    inner: Some(
                        self.inner
                            .write()
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    ),
                    model: None,
                }
            }
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.resolve() {
            Some((rt, tid, res)) => {
                if rt.res_try_acquire(tid, res, false) {
                    Some(RwLockReadGuard {
                        inner: Some(owned_read(&self.inner)),
                        model: Some((rt, tid, res)),
                    })
                } else {
                    None
                }
            }
            None => match self.inner.try_read() {
                Ok(g) => Some(RwLockReadGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                    inner: Some(e.into_inner()),
                    model: None,
                }),
                Err(TryLockError::WouldBlock) => None,
            },
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.resolve() {
            Some((rt, tid, res)) => {
                if rt.res_try_acquire(tid, res, true) {
                    Some(RwLockWriteGuard {
                        inner: Some(owned_write(&self.inner)),
                        model: Some((rt, tid, res)),
                    })
                } else {
                    None
                }
            }
            None => match self.inner.try_write() {
                Ok(g) => Some(RwLockWriteGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                    inner: Some(e.into_inner()),
                    model: None,
                }),
                Err(TryLockError::WouldBlock) => None,
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(Arc<Runtime>, usize, usize)>,
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((rt, tid, res)) = self.model.take() {
            rt.res_release(tid, res, false);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(Arc<Runtime>, usize, usize)>,
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((rt, tid, res)) = self.model.take() {
            rt.res_release(tid, res, true);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}
