//! Vector clocks ordering the events of a model execution.
//!
//! Every model thread carries a [`VersionVec`]: slot `t` holds the number of
//! store events by thread `t` that happen-before the owner's current point of
//! execution. Release stores snapshot the storing thread's clock; acquire
//! loads that read them join the snapshot into the loading thread's clock.
//! "Thread `T` knows store `(t, n)`" — written `covers(t, n)` — is the
//! happens-before test every visibility rule in the memory model reduces to.

/// A vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VersionVec {
    slots: Vec<u64>,
}

impl VersionVec {
    /// The empty clock (knows no events).
    pub(crate) fn new() -> Self {
        VersionVec { slots: Vec::new() }
    }

    /// The component for thread `t` (0 when never set).
    #[inline]
    pub(crate) fn get(&self, t: usize) -> u64 {
        self.slots.get(t).copied().unwrap_or(0)
    }

    /// Sets the component for thread `t`.
    pub(crate) fn set(&mut self, t: usize, v: u64) {
        if self.slots.len() <= t {
            self.slots.resize(t + 1, 0);
        }
        self.slots[t] = v;
    }

    /// Pointwise maximum with `other` (the acquire-side join).
    pub(crate) fn join(&mut self, other: &VersionVec) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            *a = (*a).max(*b);
        }
    }

    /// Whether this clock knows the event `(t, time)` — i.e. the event
    /// happens-before the clock owner's current point.
    #[inline]
    pub(crate) fn covers(&self, t: usize, time: u64) -> bool {
        self.get(t) >= time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_covers_follows() {
        let mut a = VersionVec::new();
        a.set(0, 3);
        let mut b = VersionVec::new();
        b.set(1, 5);
        b.set(0, 1);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert!(a.covers(0, 3));
        assert!(a.covers(1, 5));
        assert!(!a.covers(1, 6));
        assert!(a.covers(7, 0), "unknown threads sit at zero");
    }
}
