//! `pimtree-check`: a loom-style deterministic model checker for the
//! engine's hand-rolled atomic protocols.
//!
//! crates.io (and hence `loom`) is unreachable in this build environment,
//! yet the engine's correctness rests on four lock-free protocols — the
//! MPMC ticket ring, the cross-shard arrival-stamp merge cursor, the
//! migration quiesce gate, and the dual-ownership seq-split handoff — that
//! stress tests on a 1-core container cannot meaningfully exercise. This
//! crate explores their interleavings *exhaustively* (for small bounded
//! executions) instead of probabilistically.
//!
//! # How it works
//!
//! Test code builds its shared state inside a [`model`] closure using this
//! crate's [`sync`] atomics/locks and [`thread::spawn`]. Every visible
//! operation becomes a schedule point; a DFS explorer with bounded
//! preemptions re-runs the closure once per distinct schedule, and a
//! simplified C11 memory model lets relaxed loads return *every* legal
//! visible value, each as its own branch. Any panic (assertion failure,
//! deadlock, livelock) aborts the execution and is reported with the full
//! operation trace and a seed that [`Builder::replay`] reproduces exactly.
//!
//! In production builds `pimtree-common::sync` aliases the standard
//! types; under `RUSTFLAGS="--cfg pimtree_model"` it aliases this crate's
//! instrumented types, so the *real* ring/shard/gate code runs under the
//! checker unmodified.
//!
//! # What it models — and what it does not
//!
//! Modeled: per-location modification order, acquire/release vector-clock
//! edges, relaxed-load visible-value sets, read coherence, release
//! sequences through RMWs, `SeqCst` store-then-load (Dekker) ordering,
//! mutex/rwlock handoff edges, spawn/join edges, deadlock and livelock
//! detection.
//!
//! Simplifications (see `rt` module docs): bounded threads and
//! preemptions, no load speculation, no spurious `compare_exchange_weak`
//! failures, `SeqCst` approximated per-location, no fences. These bound
//! the search space; they can hide bugs that need unbounded reordering,
//! but every schedule the checker *does* report is a real C11 execution.

mod clock;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{model, Builder, Failure, Report};

/// Spin-loop hints that deprioritise the calling model thread.
pub mod hint {
    /// Inside a model execution this is a scheduler yield (so spin-wait
    /// loops terminate in every explored schedule); outside it falls back
    /// to [`std::hint::spin_loop`].
    pub fn spin_loop() {
        if crate::rt::with_ctx(|_| ()).is_some() {
            crate::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}
