//! Multidimensional PIM-Tree extension.
//!
//! The paper's conclusion lists "extending PIM-Tree to support the indexing of
//! multidimensional data" as future work. This crate provides that extension
//! for low-dimensional points (up to four 16-bit coordinates) by mapping
//! points onto a Z-order (Morton) space-filling curve and indexing the
//! resulting one-dimensional keys with the unmodified PIM-Tree:
//!
//! * [`zorder`] — Morton encoding/decoding and the box-to-range decomposition
//!   that turns an axis-aligned query box into a small set of contiguous
//!   Z-order key ranges;
//! * [`index`] — [`MdPimTree`], a multidimensional point index over sliding
//!   window data with the same insert / range-probe / merge life cycle as the
//!   one-dimensional PIM-Tree;
//! * [`join`] — [`MultiDimIbwj`], a single-threaded multidimensional band
//!   join over count-based sliding windows, plus a brute-force reference used
//!   by the tests.
//!
//! The decomposition over-approximates the query box by a bounded number of
//! curve ranges and filters exactly on decoded coordinates, so query results
//! are always exact regardless of the range budget; the budget only trades
//! index traversals against scanned false positives.

pub mod index;
pub mod join;
pub mod zorder;

pub use index::MdPimTree;
pub use join::{reference_md_join, MdBandPredicate, MdTuple, MultiDimIbwj};
pub use zorder::{decode, encode, query_ranges, ZRange};
