//! Multidimensional band join over count-based sliding windows.
//!
//! The operator generalises the paper's one-dimensional band join
//! `|R.x - S.x| <= diff` to points: a pair matches when the coordinates are
//! within a per-dimension distance in *every* dimension. This is the natural
//! streaming analogue of a spatial "within rectangle" join (e.g. correlating
//! vehicle positions, sensor grids or order books keyed by price and size).

use pimtree_common::{PimConfig, Seq, StreamSide};

use crate::index::MdPimTree;
use crate::zorder::Coord;

/// The per-dimension band predicate: `|r[i] - s[i]| <= diff[i]` for every `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdBandPredicate<const D: usize> {
    /// Maximum absolute difference allowed per dimension.
    pub diff: [Coord; D],
}

impl<const D: usize> MdBandPredicate<D> {
    /// Creates the predicate.
    pub fn new(diff: [Coord; D]) -> Self {
        MdBandPredicate { diff }
    }

    /// Whether two points match.
    pub fn matches(&self, a: [Coord; D], b: [Coord; D]) -> bool {
        (0..D).all(|i| a[i].abs_diff(b[i]) <= self.diff[i])
    }

    /// The query box around a probing point (clamped to the coordinate
    /// domain).
    pub fn probe_box(&self, p: [Coord; D]) -> ([Coord; D], [Coord; D]) {
        let mut lo = [0 as Coord; D];
        let mut hi = [0 as Coord; D];
        for i in 0..D {
            lo[i] = p[i].saturating_sub(self.diff[i]);
            hi[i] = p[i].saturating_add(self.diff[i]);
        }
        (lo, hi)
    }
}

/// A multidimensional stream tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdTuple<const D: usize> {
    /// Which stream the tuple belongs to.
    pub side: StreamSide,
    /// Arrival sequence number within its stream.
    pub seq: Seq,
    /// The point payload.
    pub point: [Coord; D],
}

impl<const D: usize> MdTuple<D> {
    /// Creates a tuple for stream `R`.
    pub fn r(seq: Seq, point: [Coord; D]) -> Self {
        MdTuple {
            side: StreamSide::R,
            seq,
            point,
        }
    }

    /// Creates a tuple for stream `S`.
    pub fn s(seq: Seq, point: [Coord; D]) -> Self {
        MdTuple {
            side: StreamSide::S,
            seq,
            point,
        }
    }
}

/// One result pair of the multidimensional join: the probing tuple and the
/// matched tuple of the opposite stream.
pub type MdJoinResult<const D: usize> = (MdTuple<D>, MdTuple<D>);

/// A single-threaded multidimensional index-based window join.
///
/// Both sliding windows are count-based with `w` live tuples, indexed by a
/// [`MdPimTree`] each; processing follows the same three steps as the
/// one-dimensional IBWJ (probe, lazy bulk delete, insert).
#[derive(Debug)]
pub struct MultiDimIbwj<const D: usize> {
    window_size: usize,
    predicate: MdBandPredicate<D>,
    indexes: [MdPimTree<D>; 2],
    /// Live points per side, used only to reconstruct matched tuples (the
    /// index stores the coordinates inside the Z-order code, so this is a
    /// ring of recent points mirroring the sliding window).
    arrived: [Vec<[Coord; D]>; 2],
    merges: u64,
    results: u64,
}

impl<const D: usize> MultiDimIbwj<D> {
    /// Creates the operator for windows of `w` tuples per stream.
    pub fn new(w: usize, predicate: MdBandPredicate<D>) -> Self {
        Self::with_pim_config(w, predicate, PimConfig::for_window(w))
    }

    /// Creates the operator with an explicit PIM-Tree configuration.
    pub fn with_pim_config(w: usize, predicate: MdBandPredicate<D>, config: PimConfig) -> Self {
        Self::with_pim_config_and_budget(w, predicate, config, MdPimTree::<D>::DEFAULT_RANGE_BUDGET)
    }

    /// Creates the operator with an explicit PIM-Tree configuration and
    /// Z-order range budget (the maximum number of curve ranges a probe box is
    /// decomposed into; see [`MdPimTree::with_range_budget`]).
    pub fn with_pim_config_and_budget(
        w: usize,
        predicate: MdBandPredicate<D>,
        config: PimConfig,
        range_budget: usize,
    ) -> Self {
        assert!(w > 0, "window size must be positive");
        MultiDimIbwj {
            window_size: w,
            predicate,
            indexes: [
                MdPimTree::with_range_budget(config, range_budget),
                MdPimTree::with_range_budget(config, range_budget),
            ],
            arrived: [Vec::new(), Vec::new()],
            merges: 0,
            results: 0,
        }
    }

    /// Number of merges performed so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of result pairs produced so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Processes one arriving tuple, appending `(probe, matched)` pairs to
    /// `out` ordered by the matched tuple's arrival.
    pub fn process(&mut self, tuple: MdTuple<D>, out: &mut Vec<MdJoinResult<D>>) {
        let own = tuple.side.index();
        let other = tuple.side.opposite().index();
        debug_assert_eq!(
            tuple.seq as usize,
            self.arrived[own].len(),
            "tuples must arrive in order"
        );

        // Step 1: probe the opposite window.
        let (lo, hi) = self.predicate.probe_box(tuple.point);
        let opposite_earliest =
            (self.arrived[other].len() as u64).saturating_sub(self.window_size as u64);
        let before = out.len();
        let matched_side = tuple.side.opposite();
        self.indexes[other].query_box(lo, hi, opposite_earliest, |e| {
            out.push((
                tuple,
                MdTuple {
                    side: matched_side,
                    seq: e.seq,
                    point: e.point,
                },
            ));
        });
        out[before..].sort_by_key(|(_, m)| m.seq);
        self.results += (out.len() - before) as u64;

        // Step 3: insert into the own window's index (step 2, deletion, is
        // deferred to the merge).
        self.indexes[own].insert(tuple.point, tuple.seq);
        self.arrived[own].push(tuple.point);
        if self.indexes[own].needs_merge() {
            let earliest = (self.arrived[own].len() as u64).saturating_sub(self.window_size as u64);
            self.indexes[own].merge(earliest);
            self.merges += 1;
        }
    }

    /// Runs the operator over a tuple sequence and returns all results.
    pub fn run(&mut self, tuples: &[MdTuple<D>]) -> Vec<MdJoinResult<D>> {
        let mut out = Vec::new();
        for &t in tuples {
            self.process(t, &mut out);
        }
        out
    }
}

/// Brute-force multidimensional window join used to validate [`MultiDimIbwj`].
pub fn reference_md_join<const D: usize>(
    tuples: &[MdTuple<D>],
    predicate: MdBandPredicate<D>,
    w: usize,
) -> Vec<MdJoinResult<D>> {
    let mut windows: [Vec<MdTuple<D>>; 2] = [Vec::new(), Vec::new()];
    let mut out = Vec::new();
    for &t in tuples {
        let other = t.side.opposite().index();
        let live_from = windows[other].len().saturating_sub(w);
        for &m in &windows[other][live_from..] {
            if predicate.matches(t.point, m.point) {
                out.push((t, m));
            }
        }
        windows[t.side.index()].push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config(window: usize) -> PimConfig {
        let mut c = PimConfig::for_window(window)
            .with_merge_ratio(0.5)
            .with_insertion_depth(2);
        c.css_fanout = 8;
        c.css_leaf_size = 8;
        c.btree_fanout = 8;
        c
    }

    fn canonical<const D: usize>(results: &[MdJoinResult<D>]) -> Vec<(u8, Seq, u8, Seq)> {
        let mut v: Vec<(u8, Seq, u8, Seq)> = results
            .iter()
            .map(|(p, m)| (p.side.index() as u8, p.seq, m.side.index() as u8, m.seq))
            .collect();
        v.sort_unstable();
        v
    }

    fn random_md_tuples(n: usize, domain: u16, seed: u64) -> Vec<MdTuple<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64; 2];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                MdTuple {
                    side,
                    seq,
                    point: [rng.gen_range(0..domain), rng.gen_range(0..domain)],
                }
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_streams() {
        for seed in [1, 2, 3] {
            let tuples = random_md_tuples(3000, 400, seed);
            let predicate = MdBandPredicate::new([6, 6]);
            let w = 128;
            let expected = canonical(&reference_md_join(&tuples, predicate, w));
            assert!(!expected.is_empty());
            let mut op = MultiDimIbwj::with_pim_config(w, predicate, small_config(w));
            let got = op.run(&tuples);
            assert_eq!(canonical(&got), expected, "seed {seed}");
            assert!(op.merges() > 0, "the merge path must be exercised");
        }
    }

    #[test]
    fn predicate_requires_every_dimension_to_match() {
        let p = MdBandPredicate::new([5, 0]);
        assert!(p.matches([10, 20], [15, 20]));
        assert!(!p.matches([10, 20], [15, 21]));
        assert!(!p.matches([10, 20], [16, 20]));
        let (lo, hi) = p.probe_box([3, 7]);
        assert_eq!(lo, [0, 7]);
        assert_eq!(hi, [8, 7]);
    }

    #[test]
    fn asymmetric_per_dimension_bands() {
        let tuples = random_md_tuples(2000, 200, 9);
        let predicate = MdBandPredicate::new([20, 1]);
        let w = 64;
        let expected = canonical(&reference_md_join(&tuples, predicate, w));
        let mut op = MultiDimIbwj::with_pim_config(w, predicate, small_config(w));
        assert_eq!(canonical(&op.run(&tuples)), expected);
    }

    #[test]
    fn window_expiry_is_respected() {
        let predicate = MdBandPredicate::new([0, 0]);
        let w = 4;
        let mut op = MultiDimIbwj::with_pim_config(w, predicate, small_config(w));
        let mut out = Vec::new();
        // Fill stream S with identical points; the R probe can only match the
        // last `w` of them.
        for seq in 0..20u64 {
            op.process(MdTuple::s(seq, [7, 7]), &mut out);
        }
        out.clear();
        op.process(MdTuple::r(0, [7, 7]), &mut out);
        assert_eq!(out.len(), w);
        assert!(out.iter().all(|(_, m)| m.seq >= 16));
    }

    #[test]
    fn results_ordered_by_matched_arrival_within_probe() {
        let predicate = MdBandPredicate::new([100, 100]);
        let mut op = MultiDimIbwj::with_pim_config(64, predicate, small_config(64));
        let mut out = Vec::new();
        for (seq, point) in [[50u16, 50], [10, 10], [90, 90]].iter().enumerate() {
            op.process(MdTuple::s(seq as u64, *point), &mut out);
        }
        out.clear();
        op.process(MdTuple::r(0, [50, 50]), &mut out);
        let seqs: Vec<Seq> = out.iter().map(|(_, m)| m.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn point_predicate_behaves_like_spatial_equality() {
        let tuples = random_md_tuples(1500, 40, 4);
        let predicate = MdBandPredicate::new([0, 0]);
        let w = 256;
        let expected = canonical(&reference_md_join(&tuples, predicate, w));
        let mut op = MultiDimIbwj::with_pim_config(w, predicate, small_config(w));
        assert_eq!(canonical(&op.run(&tuples)), expected);
    }
}
