//! The multidimensional sliding-window point index.
//!
//! [`MdPimTree`] stores `D`-dimensional points (sequence-numbered, as in the
//! one-dimensional case) by indexing their Z-order codes in an unmodified
//! [`PimTree`]. Box queries are answered by decomposing the box into a bounded
//! number of code ranges, probing each range and filtering the candidates
//! exactly on their decoded coordinates.

use pimtree_common::{KeyRange, PimConfig, Seq};
use pimtree_core::PimTree;

use crate::zorder::{self, Coord, ZRange};

/// Order-preserving mapping from a Z-order code to the signed key type used by
/// the PIM-Tree (flips the sign bit so that `u64` order equals `i64` order).
#[inline]
fn code_to_key(code: u64) -> i64 {
    (code ^ (1u64 << 63)) as i64
}

/// Inverse of [`code_to_key`].
#[inline]
fn key_to_code(key: i64) -> u64 {
    (key as u64) ^ (1u64 << 63)
}

/// A multidimensional point found by a box query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdEntry<const D: usize> {
    /// The point's coordinates.
    pub point: [Coord; D],
    /// Window sequence number of the tuple that carries the point.
    pub seq: Seq,
}

/// A multidimensional PIM-Tree over sliding-window points.
///
/// The index follows the same life cycle as the one-dimensional PIM-Tree:
/// points are inserted as they arrive, expired points are removed in bulk
/// whenever the mutable component reaches the merge threshold, and callers
/// pass the expiry horizon (earliest live sequence number) to both queries and
/// merges.
#[derive(Debug)]
pub struct MdPimTree<const D: usize> {
    tree: PimTree,
    /// Maximum number of Z-order ranges a box query may be decomposed into.
    range_budget: usize,
}

impl<const D: usize> MdPimTree<D> {
    /// Default number of curve ranges a box query is decomposed into.
    pub const DEFAULT_RANGE_BUDGET: usize = 16;

    /// Creates an empty index configured like a one-dimensional PIM-Tree for a
    /// window of `config.window_size` points.
    pub fn new(config: PimConfig) -> Self {
        Self::with_range_budget(config, Self::DEFAULT_RANGE_BUDGET)
    }

    /// Creates an empty index with an explicit query range budget.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the budget is zero.
    pub fn with_range_budget(config: PimConfig, range_budget: usize) -> Self {
        assert!(range_budget > 0, "range budget must be positive");
        MdPimTree {
            tree: PimTree::new(config),
            range_budget,
        }
    }

    /// The underlying one-dimensional PIM-Tree (for footprint and statistics).
    pub fn inner(&self) -> &PimTree {
        &self.tree
    }

    /// Number of indexed entries, live and expired.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a point with its window sequence number.
    pub fn insert(&self, point: [Coord; D], seq: Seq) {
        self.tree.insert(code_to_key(zorder::encode(point)), seq);
    }

    /// Calls `f` for every live point inside the axis-aligned box
    /// `[lo, hi]` (inclusive). `earliest_live` is the expiry horizon: entries
    /// with smaller sequence numbers are skipped.
    pub fn query_box<F: FnMut(MdEntry<D>)>(
        &self,
        lo: [Coord; D],
        hi: [Coord; D],
        earliest_live: Seq,
        mut f: F,
    ) {
        let ranges = zorder::query_ranges(lo, hi, self.range_budget);
        for ZRange { lo: zlo, hi: zhi } in ranges {
            let range = KeyRange::new(code_to_key(zlo), code_to_key(zhi));
            self.tree.range_live(range, earliest_live, |e| {
                let point = zorder::decode::<D>(key_to_code(e.key));
                if zorder::in_box(point, lo, hi) {
                    f(MdEntry { point, seq: e.seq });
                }
            });
        }
    }

    /// Collects every live point inside the box, ordered by sequence number.
    pub fn query_box_collect(
        &self,
        lo: [Coord; D],
        hi: [Coord; D],
        earliest_live: Seq,
    ) -> Vec<MdEntry<D>> {
        let mut out = Vec::new();
        self.query_box(lo, hi, earliest_live, |e| out.push(e));
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Whether the mutable component has reached the merge threshold.
    pub fn needs_merge(&self) -> bool {
        self.tree.needs_merge()
    }

    /// Merges the two components, dropping entries that expired before
    /// `earliest_live`. Returns the duration of the merge.
    pub fn merge(&self, earliest_live: Seq) -> std::time::Duration {
        self.tree.merge(earliest_live).duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(window: usize) -> PimConfig {
        let mut c = PimConfig::for_window(window)
            .with_merge_ratio(0.5)
            .with_insertion_depth(2);
        c.css_fanout = 8;
        c.css_leaf_size = 8;
        c.btree_fanout = 8;
        c
    }

    #[test]
    fn key_mapping_preserves_order() {
        let codes = [
            0u64,
            1,
            1 << 31,
            (1 << 63) - 1,
            1 << 63,
            u64::MAX - 1,
            u64::MAX,
        ];
        for w in codes.windows(2) {
            assert!(code_to_key(w[0]) < code_to_key(w[1]));
            assert_eq!(key_to_code(code_to_key(w[0])), w[0]);
        }
    }

    #[test]
    fn box_query_finds_exactly_the_contained_points() {
        let idx = MdPimTree::<2>::new(config(4096));
        let mut rng = StdRng::seed_from_u64(7);
        let mut points = Vec::new();
        for seq in 0..2000u64 {
            let p = [rng.gen_range(0..1000u16), rng.gen_range(0..1000u16)];
            idx.insert(p, seq);
            points.push((p, seq));
        }
        let lo = [200u16, 300];
        let hi = [400u16, 700];
        let got = idx.query_box_collect(lo, hi, 0);
        let expected: Vec<(Seq, [u16; 2])> = points
            .iter()
            .filter(|(p, _)| zorder::in_box(*p, lo, hi))
            .map(|&(p, s)| (s, p))
            .collect();
        assert_eq!(got.len(), expected.len());
        for (e, (seq, p)) in got.iter().zip(expected.iter()) {
            assert_eq!(e.seq, *seq);
            assert_eq!(e.point, *p);
        }
    }

    #[test]
    fn expiry_horizon_filters_old_points() {
        let idx = MdPimTree::<2>::new(config(128));
        for seq in 0..100u64 {
            idx.insert([seq as u16, seq as u16], seq);
        }
        let all = idx.query_box_collect([0, 0], [u16::MAX, u16::MAX], 0);
        assert_eq!(all.len(), 100);
        let recent = idx.query_box_collect([0, 0], [u16::MAX, u16::MAX], 60);
        assert_eq!(recent.len(), 40);
        assert!(recent.iter().all(|e| e.seq >= 60));
    }

    #[test]
    fn merge_drops_expired_points() {
        let idx = MdPimTree::<2>::new(config(64));
        for seq in 0..256u64 {
            idx.insert([(seq % 64) as u16, (seq / 64) as u16], seq);
            if idx.needs_merge() {
                idx.merge(seq.saturating_sub(63));
            }
        }
        // After the final merge only live entries (and the not-yet-merged
        // mutable tail) remain.
        assert!(idx.len() < 256);
        let live = idx.query_box_collect([0, 0], [u16::MAX, u16::MAX], 192);
        assert_eq!(live.len(), 64);
    }

    #[test]
    fn tight_range_budget_is_still_exact() {
        let generous = MdPimTree::<2>::with_range_budget(config(1024), 256);
        let tight = MdPimTree::<2>::with_range_budget(config(1024), 1);
        let mut rng = StdRng::seed_from_u64(11);
        for seq in 0..1000u64 {
            let p = [rng.gen_range(0..500u16), rng.gen_range(0..500u16)];
            generous.insert(p, seq);
            tight.insert(p, seq);
        }
        let lo = [50u16, 60];
        let hi = [220u16, 410];
        assert_eq!(
            generous.query_box_collect(lo, hi, 0),
            tight.query_box_collect(lo, hi, 0),
            "the range budget must never change query results"
        );
    }

    #[test]
    fn three_dimensional_points_work() {
        let idx = MdPimTree::<3>::new(config(512));
        for seq in 0..512u64 {
            idx.insert(
                [(seq % 8) as u16, ((seq / 8) % 8) as u16, (seq / 64) as u16],
                seq,
            );
        }
        let got = idx.query_box_collect([2, 2, 2], [4, 4, 4], 0);
        assert_eq!(got.len(), 27);
        assert!(got
            .iter()
            .all(|e| e.point.iter().all(|&c| (2..=4).contains(&c))));
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = MdPimTree::<2>::new(config(64));
        assert!(idx.is_empty());
        assert!(idx.query_box_collect([0, 0], [100, 100], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "range budget must be positive")]
    fn zero_budget_rejected() {
        let _ = MdPimTree::<2>::with_range_budget(config(64), 0);
    }
}
