//! Z-order (Morton) curve encoding and query-box decomposition.
//!
//! Points with up to four 16-bit coordinates are mapped onto a single
//! 64-bit code by bit interleaving. The code preserves spatial locality well
//! enough that an axis-aligned box can be covered by a small number of
//! contiguous code ranges, which is what lets the one-dimensional PIM-Tree
//! act as a multidimensional index.

/// A coordinate along one dimension.
pub type Coord = u16;

/// Number of bits per coordinate.
pub const COORD_BITS: u32 = 16;

/// An inclusive range of Z-order codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZRange {
    /// Smallest code in the range.
    pub lo: u64,
    /// Largest code in the range (inclusive).
    pub hi: u64,
}

impl ZRange {
    /// Number of codes covered by the range.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Whether the range covers no codes (never produced by this module).
    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }
}

/// Spreads the bits of `v` so that consecutive input bits land `d` positions
/// apart in the output (bit `i` of the input moves to bit `i * d`).
fn spread_bits(v: u16, d: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..COORD_BITS {
        if v & (1 << i) != 0 {
            out |= 1u64 << (i * d);
        }
    }
    out
}

/// Collapses bits spread `d` positions apart back into a contiguous value.
fn collapse_bits(v: u64, d: u32) -> u16 {
    let mut out = 0u16;
    for i in 0..COORD_BITS {
        if v & (1u64 << (i * d)) != 0 {
            out |= 1 << i;
        }
    }
    out
}

/// Encodes a `D`-dimensional point into its Z-order code by interleaving the
/// coordinate bits (dimension 0 occupies the least significant position of
/// each bit group).
///
/// # Panics
///
/// Panics if `D` is zero or greater than four (the code must fit 64 bits).
pub fn encode<const D: usize>(point: [Coord; D]) -> u64 {
    assert!((1..=4).contains(&D), "supported dimensionality is 1..=4");
    let d = D as u32;
    let mut code = 0u64;
    for (dim, &c) in point.iter().enumerate() {
        code |= spread_bits(c, d) << dim;
    }
    code
}

/// Decodes a Z-order code back into its `D`-dimensional point.
pub fn decode<const D: usize>(code: u64) -> [Coord; D] {
    assert!((1..=4).contains(&D), "supported dimensionality is 1..=4");
    let d = D as u32;
    let mut point = [0 as Coord; D];
    for (dim, c) in point.iter_mut().enumerate() {
        *c = collapse_bits(code >> dim, d);
    }
    point
}

/// Whether the point lies inside the axis-aligned box `[lo, hi]` (inclusive on
/// both corners, per dimension).
pub fn in_box<const D: usize>(point: [Coord; D], lo: [Coord; D], hi: [Coord; D]) -> bool {
    (0..D).all(|i| point[i] >= lo[i] && point[i] <= hi[i])
}

/// Decomposes the axis-aligned box `[lo, hi]` into at most `max_ranges`
/// contiguous Z-order code ranges that together cover every point of the box.
///
/// The decomposition walks the implicit 2^D-ary trie of the Z-order curve:
/// trie nodes entirely inside the box contribute their whole code interval,
/// nodes that merely overlap are split further, and once the range budget
/// would be exceeded the remaining overlapping nodes are emitted as-is
/// (an over-approximation). Callers therefore must re-check candidate points
/// against the box; [`MdPimTree`](crate::MdPimTree) does so by decoding the
/// stored code.
///
/// # Panics
///
/// Panics if `max_ranges` is zero or the box is inverted in any dimension.
pub fn query_ranges<const D: usize>(
    lo: [Coord; D],
    hi: [Coord; D],
    max_ranges: usize,
) -> Vec<ZRange> {
    assert!(max_ranges > 0, "the range budget must be positive");
    assert!(
        (0..D).all(|i| lo[i] <= hi[i]),
        "query box must have lo <= hi in every dimension"
    );
    let total_bits = COORD_BITS * D as u32;
    // The trie walk is allowed to produce a finer decomposition than the
    // budget; the excess is coalesced afterwards by bridging the smallest
    // gaps. This keeps small queries exact while guaranteeing the cap.
    let allowance = max_ranges.saturating_mul(8).max(64);
    let mut out: Vec<ZRange> = Vec::new();
    // Work stack of trie nodes: (code prefix, remaining bits below this node).
    let mut stack: Vec<(u64, u32)> = vec![(0, total_bits)];
    while let Some((prefix, bits)) = stack.pop() {
        let node_lo = prefix;
        let node_hi = if bits == 64 {
            u64::MAX
        } else {
            prefix | ((1u64 << bits) - 1)
        };
        let cell_lo = decode::<D>(node_lo);
        let cell_hi = decode::<D>(node_hi);
        // The node's cell is an axis-aligned box in point space.
        let disjoint = (0..D).any(|i| cell_hi[i] < lo[i] || cell_lo[i] > hi[i]);
        if disjoint {
            continue;
        }
        let contained = (0..D).all(|i| cell_lo[i] >= lo[i] && cell_hi[i] <= hi[i]);
        // Splitting stops when the node is fully covered, is a single code, or
        // enough ranges have been emitted already.
        if contained || bits == 0 || out.len() >= allowance {
            push_merged(
                &mut out,
                ZRange {
                    lo: node_lo,
                    hi: node_hi,
                },
            );
            continue;
        }
        // Recurse into the 2^D children; push in reverse code order so the
        // stack pops them in ascending order and ranges come out sorted.
        let child_bits = bits - D as u32;
        for child in (0..(1u64 << D)).rev() {
            stack.push((prefix | (child << child_bits), child_bits));
        }
    }
    coalesce(&mut out, max_ranges);
    out
}

/// Reduces `ranges` to at most `max_ranges` entries by repeatedly bridging the
/// smallest gap between neighbouring ranges. Bridging only widens coverage,
/// never narrows it, so query correctness is unaffected.
fn coalesce(ranges: &mut Vec<ZRange>, max_ranges: usize) {
    while ranges.len() > max_ranges {
        let mut best = 1usize;
        let mut best_gap = u64::MAX;
        for i in 1..ranges.len() {
            let gap = ranges[i].lo - ranges[i - 1].hi;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        ranges[best - 1].hi = ranges[best].hi;
        ranges.remove(best);
    }
}

/// Appends `range`, merging it with the previous range when they are adjacent
/// (the trie walk emits ranges in ascending, non-overlapping order).
fn push_merged(out: &mut Vec<ZRange>, range: ZRange) {
    if let Some(last) = out.last_mut() {
        if last.hi + 1 == range.lo {
            last.hi = range.hi;
            return;
        }
    }
    out.push(range);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_2d() {
        for p in [[0u16, 0], [1, 0], [0, 1], [65535, 65535], [123, 45678]] {
            assert_eq!(decode::<2>(encode::<2>(p)), p);
        }
    }

    #[test]
    fn encoding_is_monotone_per_quadrant() {
        // Within one quadrant of the top-level split, codes of the lower
        // quadrant are all smaller than codes of the upper quadrant.
        let low = encode::<2>([100, 100]);
        let high = encode::<2>([40000, 40000]);
        assert!(low < high);
    }

    #[test]
    fn interleaving_matches_manual_example() {
        // x = 0b11 (dim 0), y = 0b01 (dim 1) -> code bits ...y1x1y0x0 = 0b0111.
        assert_eq!(encode::<2>([0b11, 0b01]), 0b0111);
        assert_eq!(decode::<2>(0b0111), [0b11, 0b01]);
    }

    #[test]
    fn query_ranges_cover_exactly_the_box_when_budget_allows() {
        let lo = [4u16, 8];
        let hi = [11u16, 13];
        let ranges = query_ranges::<2>(lo, hi, 1024);
        // Every point in the box is covered by some range.
        for x in lo[0]..=hi[0] {
            for y in lo[1]..=hi[1] {
                let code = encode::<2>([x, y]);
                assert!(
                    ranges.iter().any(|r| r.lo <= code && code <= r.hi),
                    "({x},{y}) not covered"
                );
            }
        }
        // With a generous budget the decomposition is exact: no covered code
        // decodes to a point outside the box.
        for r in &ranges {
            for code in r.lo..=r.hi {
                let p = decode::<2>(code);
                assert!(in_box(p, lo, hi), "code {code} -> {p:?} outside the box");
            }
        }
    }

    #[test]
    fn tight_budget_still_covers_the_box() {
        let lo = [100u16, 200];
        let hi = [1000u16, 1100];
        for budget in [1, 2, 4, 8] {
            let ranges = query_ranges::<2>(lo, hi, budget);
            assert!(!ranges.is_empty());
            assert!(
                ranges.len() <= budget,
                "budget {budget} exceeded: {}",
                ranges.len()
            );
            for x in [lo[0], (lo[0] + hi[0]) / 2, hi[0]] {
                for y in [lo[1], (lo[1] + hi[1]) / 2, hi[1]] {
                    let code = encode::<2>([x, y]);
                    assert!(ranges.iter().any(|r| r.lo <= code && code <= r.hi));
                }
            }
        }
    }

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        let ranges = query_ranges::<2>([3, 5], [300, 500], 64);
        for w in ranges.windows(2) {
            assert!(w[0].hi < w[1].lo, "ranges must be sorted and non-adjacent");
        }
    }

    #[test]
    fn single_point_box_is_one_range() {
        let ranges = query_ranges::<3>([7, 9, 11], [7, 9, 11], 16);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].lo, ranges[0].hi);
        assert_eq!(decode::<3>(ranges[0].lo), [7, 9, 11]);
    }

    #[test]
    fn full_domain_box_is_one_range() {
        let ranges = query_ranges::<2>([0, 0], [u16::MAX, u16::MAX], 4);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].lo, 0);
        assert_eq!(ranges[0].hi, u64::MAX >> (64 - 32));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_box_rejected() {
        let _ = query_ranges::<2>([10, 0], [5, 10], 8);
    }

    proptest! {
        #[test]
        fn roundtrip_2d(x in any::<u16>(), y in any::<u16>()) {
            prop_assert_eq!(decode::<2>(encode::<2>([x, y])), [x, y]);
        }

        #[test]
        fn roundtrip_4d(a in any::<u16>(), b in any::<u16>(), c in any::<u16>(), d in any::<u16>()) {
            prop_assert_eq!(decode::<4>(encode::<4>([a, b, c, d])), [a, b, c, d]);
        }

        #[test]
        fn codes_are_unique(p1 in any::<(u16, u16)>(), p2 in any::<(u16, u16)>()) {
            prop_assume!(p1 != p2);
            prop_assert_ne!(encode::<2>([p1.0, p1.1]), encode::<2>([p2.0, p2.1]));
        }

        #[test]
        fn decomposition_covers_random_points(
            x0 in 0u16..1000, w in 0u16..2000,
            y0 in 0u16..1000, h in 0u16..2000,
            px in any::<u16>(), py in any::<u16>(),
            budget in 1usize..64,
        ) {
            let lo = [x0, y0];
            let hi = [x0.saturating_add(w), y0.saturating_add(h)];
            let ranges = query_ranges::<2>(lo, hi, budget);
            prop_assert!(ranges.len() <= budget);
            let p = [px, py];
            if in_box(p, lo, hi) {
                let code = encode::<2>(p);
                prop_assert!(ranges.iter().any(|r| r.lo <= code && code <= r.hi));
            }
        }
    }
}
