//! Bottom-up construction of the CSS-Tree (Algorithm 3 of the paper).
//!
//! Construction is linear in the number of entries (Equation 7): leaf groups
//! are formed by slicing the sorted entry array, and each inner level stores
//! the maximum entry of each child subtree, built strictly bottom-up.

use pimtree_btree::Entry;
use pimtree_common::Key;

use crate::tree::CssTree;
use crate::{DEFAULT_FANOUT, DEFAULT_LEAF_SIZE};

/// Builder for [`CssTree`] with configurable fan-out and leaf size.
#[derive(Debug, Clone, Copy)]
pub struct CssBuilder {
    fanout: usize,
    leaf_size: usize,
}

impl Default for CssBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CssBuilder {
    /// Creates a builder with the default fan-out (32) and leaf size (32).
    pub fn new() -> Self {
        CssBuilder {
            fanout: DEFAULT_FANOUT,
            leaf_size: DEFAULT_LEAF_SIZE,
        }
    }

    /// Sets the number of keys (= children) per inner node. Must be >= 2.
    pub fn fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 2, "CSS-Tree fan-out must be at least 2");
        self.fanout = fanout;
        self
    }

    /// Sets the number of entries per leaf group. Must be >= 1.
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "CSS-Tree leaf size must be at least 1");
        self.leaf_size = leaf_size;
        self
    }

    /// Builds the tree from entries sorted by `(key, seq)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the input is not sorted.
    pub fn build(self, entries: Vec<Entry>) -> CssTree {
        debug_assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "CSS-Tree input must be sorted"
        );
        let n = entries.len();
        let fanout = self.fanout;
        let leaf_size = self.leaf_size;
        let groups = n.div_ceil(leaf_size);

        // Number of nodes per inner level, deepest level first.
        let mut sizes_bottom_up: Vec<usize> = Vec::new();
        let mut count = groups;
        while count > 1 {
            count = count.div_ceil(fanout);
            sizes_bottom_up.push(count);
        }

        if sizes_bottom_up.is_empty() {
            return CssTree {
                leaves: entries,
                inner: Vec::new(),
                level_offsets: Vec::new(),
                level_sizes: Vec::new(),
                level_maxes: Vec::new(),
                fanout,
                leaf_size,
            };
        }

        // Maximum entry of each leaf group (the children of the deepest
        // inner level).
        let group_max = |g: usize| entries[((g + 1) * leaf_size).min(n) - 1];
        let mut below_maxes: Vec<Entry> = (0..groups).map(group_max).collect();
        let mut below_count = groups;

        let pad = Entry::max_for_key(Key::MAX);
        let mut levels_keys_bottom_up: Vec<Vec<Entry>> = Vec::with_capacity(sizes_bottom_up.len());
        let mut levels_maxes_bottom_up: Vec<Vec<Entry>> = Vec::with_capacity(sizes_bottom_up.len());

        for &size in &sizes_bottom_up {
            let mut keys = vec![pad; size * fanout];
            let mut maxes = Vec::with_capacity(size);
            for node in 0..size {
                let base = node * fanout;
                let real = fanout.min(below_count - base);
                keys[base..base + real].copy_from_slice(&below_maxes[base..base + real]);
                maxes.push(below_maxes[base + real - 1]);
            }
            levels_keys_bottom_up.push(keys);
            levels_maxes_bottom_up.push(maxes.clone());
            below_maxes = maxes;
            below_count = size;
        }

        // Re-arrange root-first and compute node offsets per level.
        let level_sizes: Vec<usize> = sizes_bottom_up.iter().rev().copied().collect();
        let mut level_offsets = Vec::with_capacity(level_sizes.len());
        let mut inner = Vec::new();
        let mut offset = 0usize;
        for (i, keys) in levels_keys_bottom_up.iter().rev().enumerate() {
            level_offsets.push(offset);
            offset += level_sizes[i];
            inner.extend_from_slice(keys);
        }
        let level_maxes: Vec<Vec<Entry>> = levels_maxes_bottom_up.into_iter().rev().collect();

        CssTree {
            leaves: entries,
            inner,
            level_offsets,
            level_sizes,
            level_maxes,
            fanout,
            leaf_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<Entry> {
        (0..n as i64).map(|i| Entry::new(i, i as u64)).collect()
    }

    #[test]
    fn builder_defaults() {
        let t = CssBuilder::new().build(entries(10));
        assert_eq!(t.fanout(), DEFAULT_FANOUT);
        assert_eq!(t.leaf_size(), DEFAULT_LEAF_SIZE);
        t.check_invariants();
    }

    #[test]
    fn level_structure_for_known_sizes() {
        // 100 entries, leaves of 10 -> 10 groups; fan-out 4 ->
        // deepest level ceil(10/4)=3 nodes, then ceil(3/4)=1 root.
        let t = CssBuilder::new()
            .fanout(4)
            .leaf_size(10)
            .build(entries(100));
        assert_eq!(t.leaf_groups(), 10);
        assert_eq!(t.inner_levels(), 2);
        assert_eq!(t.nodes_at_depth(0), 1);
        assert_eq!(t.nodes_at_depth(1), 3);
        assert_eq!(t.nodes_at_depth(2), 10);
        t.check_invariants();
    }

    #[test]
    fn construction_is_exact_for_many_shapes() {
        for &n in &[0usize, 1, 2, 5, 16, 17, 63, 64, 65, 255, 256, 257, 1000] {
            for &(f, l) in &[(2usize, 1usize), (2, 4), (4, 4), (8, 16), (32, 32)] {
                let t = CssBuilder::new().fanout(f).leaf_size(l).build(entries(n));
                assert_eq!(t.len(), n);
                t.check_invariants();
                for probe in 0..n as i64 {
                    assert_eq!(
                        t.lower_bound_key(probe),
                        probe as usize,
                        "n={n} f={f} l={l}"
                    );
                }
                assert_eq!(t.lower_bound_key(n as i64 + 10), n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_fanout_below_two() {
        let _ = CssBuilder::new().fanout(1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_leaf_size() {
        let _ = CssBuilder::new().leaf_size(0);
    }
}
