//! The immutable CSS-Tree structure and its search operations.

use pimtree_btree::Entry;
use pimtree_common::{prefetch_slice, simd, Key, KeyRange, ProbeCounters};

/// Lower bound of `target` inside one sorted entry block: a SIMD
/// compare-mask count over the keys (see `pimtree_common::simd`), then a
/// scalar walk over the (usually empty) equal-key run to honor the `seq`
/// tie-break. Returns exactly `block.partition_point(|&e| e < target)`.
#[inline]
fn node_lower_bound(block: &[Entry], target: Entry) -> usize {
    // SAFETY: `Entry` is `#[repr(C)] { key: i64, seq: u64 }` — 16 bytes with
    // 8-byte alignment, layout-identical to `[i64; 2]`; the second lane is
    // never interpreted as a value by the kernel.
    let pairs: &[[i64; 2]] =
        unsafe { core::slice::from_raw_parts(block.as_ptr().cast(), block.len()) };
    let mut i = simd::count_keys_below(pairs, target.key);
    while i < block.len() && block[i].key == target.key && block[i].seq < target.seq {
        i += 1;
    }
    i
}

/// Attributes `searches` intra-node lower bounds to the kernel that answered
/// them (the dispatch level is fixed process-wide).
#[inline]
fn count_node_searches(counters: &mut ProbeCounters, searches: u64) {
    if simd::simd_active() {
        counters.simd_node_searches += searches;
    } else {
        counters.scalar_node_searches += searches;
    }
}

/// One in-flight root-to-leaf descent of the interleaved probe engine:
/// which node of which level it sits at, what it searches for, and which
/// output slot (target index) it resolves.
#[derive(Debug, Clone, Copy)]
struct DescentState {
    node: usize,
    level: usize,
    target: Entry,
    slot: usize,
}

/// Sentinel `slot` marking a retired ring entry with no descent left to
/// refill it.
const RETIRED: usize = usize::MAX;

/// Structural statistics of a [`CssTree`], used for the memory-footprint
/// comparison of Figure 11a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CssStats {
    /// Number of entries stored in the leaf array.
    pub entries: usize,
    /// Number of inner key slots (including right-edge padding).
    pub inner_slots: usize,
    /// Number of inner levels (0 when the tree fits in a single leaf level).
    pub inner_levels: usize,
    /// Payload bytes of the leaf array.
    pub leaf_bytes: usize,
    /// Payload bytes of the inner key array.
    pub inner_bytes: usize,
}

impl CssStats {
    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.leaf_bytes + self.inner_bytes
    }
}

/// An immutable B+-Tree over a sorted array of [`Entry`] values.
///
/// Construction goes through [`crate::CssBuilder`] (or the convenience
/// constructors below); after that the tree is strictly read-only.
#[derive(Debug, Clone)]
pub struct CssTree {
    /// All entries, sorted by `(key, seq)`, conceptually grouped into leaf
    /// nodes of `leaf_size` entries.
    pub(crate) leaves: Vec<Entry>,
    /// Breadth-first inner key array: level 0 (root) first, `fanout` key slots
    /// per node. Slot `k` of a node holds the maximum entry of its `k`-th
    /// child's subtree; slots past the last real child are padded with
    /// `Entry::max_for_key(Key::MAX)` so that slots stay monotonically
    /// non-decreasing.
    pub(crate) inner: Vec<Entry>,
    /// Node-index offset of each inner level inside `inner` (in nodes).
    pub(crate) level_offsets: Vec<usize>,
    /// Number of nodes per inner level, root level first.
    pub(crate) level_sizes: Vec<usize>,
    /// Maximum real entry of each node's subtree, per inner level.
    pub(crate) level_maxes: Vec<Vec<Entry>>,
    /// Keys (= children) per inner node.
    pub(crate) fanout: usize,
    /// Entries per leaf group.
    pub(crate) leaf_size: usize,
}

impl CssTree {
    /// Builds a tree from entries already sorted by `(key, seq)`, using the
    /// default fan-out and leaf size.
    pub fn from_sorted(entries: Vec<Entry>) -> Self {
        crate::CssBuilder::new().build(entries)
    }

    /// Builds an empty tree.
    pub fn empty() -> Self {
        Self::from_sorted(Vec::new())
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Inner-node fan-out.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Entries per leaf group.
    #[inline]
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Number of inner levels (0 if the tree is a single leaf level).
    #[inline]
    pub fn inner_levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// Number of leaf groups.
    #[inline]
    pub fn leaf_groups(&self) -> usize {
        if self.leaves.is_empty() {
            0
        } else {
            self.leaves.len().div_ceil(self.leaf_size)
        }
    }

    /// Number of inner nodes at `depth` (root = depth 0). Depths past the
    /// deepest inner level report the number of leaf groups; an empty tree
    /// reports 1 so that callers can always size a partition array.
    pub fn nodes_at_depth(&self, depth: usize) -> usize {
        if depth < self.level_sizes.len() {
            self.level_sizes[depth]
        } else {
            self.leaf_groups().max(1)
        }
    }

    /// Entry at leaf position `pos`.
    #[inline]
    pub fn entry_at(&self, pos: usize) -> Entry {
        self.leaves[pos]
    }

    /// The sorted leaf array.
    #[inline]
    pub fn entries(&self) -> &[Entry] {
        &self.leaves
    }

    /// Largest entry, if any.
    pub fn max_entry(&self) -> Option<Entry> {
        self.leaves.last().copied()
    }

    /// Smallest entry, if any.
    pub fn min_entry(&self) -> Option<Entry> {
        self.leaves.first().copied()
    }

    fn keys_of(&self, level: usize, node: usize) -> &[Entry] {
        let base = (self.level_offsets[level] + node) * self.fanout;
        &self.inner[base..base + self.fanout]
    }

    /// Number of real children of `node` at inner `level`.
    fn real_children(&self, level: usize, node: usize) -> usize {
        let below = if level + 1 < self.level_sizes.len() {
            self.level_sizes[level + 1]
        } else {
            self.leaf_groups()
        };
        let base = node * self.fanout;
        self.fanout.min(below.saturating_sub(base)).max(1)
    }

    /// Descends the inner levels for `target`, returning the node index at
    /// `stop_depth` (root = depth 0). Descending all `inner_levels()` levels
    /// returns a leaf-group index.
    pub fn descend_to_depth(&self, target: Entry, stop_depth: usize) -> usize {
        let depth = stop_depth.min(self.level_sizes.len());
        let mut node = 0usize;
        for level in 0..depth {
            let keys = self.keys_of(level, node);
            let mut k = node_lower_bound(keys, target);
            let real = self.real_children(level, node);
            if k >= real {
                k = real - 1;
            }
            node = node * self.fanout + k;
        }
        node
    }

    /// Position of the first entry `>= target` in the leaf array (equals
    /// `len()` when every entry is smaller).
    pub fn lower_bound(&self, target: Entry) -> usize {
        if self.leaves.is_empty() {
            return 0;
        }
        if self.level_sizes.is_empty() {
            return node_lower_bound(&self.leaves, target);
        }
        let group = self.descend_to_depth(target, self.level_sizes.len());
        let start = group * self.leaf_size;
        let end = (start + self.leaf_size).min(self.leaves.len());
        start + node_lower_bound(&self.leaves[start..end], target)
    }

    /// Position of the first entry with key `>= key`.
    #[inline]
    pub fn lower_bound_key(&self, key: Key) -> usize {
        self.lower_bound(Entry::min_for_key(key))
    }

    /// The entries of leaf group `group` (the last group may be short).
    #[inline]
    fn leaf_group_slice(&self, group: usize) -> &[Entry] {
        let start = group * self.leaf_size;
        let end = (start + self.leaf_size).min(self.leaves.len());
        &self.leaves[start..end]
    }

    /// Batched [`CssTree::lower_bound`]: resolves the leaf position of every
    /// target in one level-wise group descent, issuing software prefetches
    /// for the node key blocks the group is about to visit.
    ///
    /// Instead of walking root → leaf once per key (each level a dependent
    /// cache miss), the whole group advances one level at a time: while the
    /// descent resolves key `i` at a level, the key block that key `i +
    /// prefetch_dist` will binary-search at the same level is already being
    /// prefetched, and the first `prefetch_dist` children computed in a pass
    /// are prefetched immediately so the next level starts with its lookahead
    /// window in flight. This is the group-probe pattern the cache-sensitive
    /// breadth-first layout was designed for: node addresses are computed
    /// arithmetically, so the next level's blocks are known before any of
    /// them is touched. A `prefetch_dist` of 0 keeps the batch descent but
    /// issues no prefetches; sorting `targets` improves locality but is not
    /// required for correctness.
    ///
    /// `positions` is cleared and filled with one leaf position per target
    /// (same order, same values as scalar [`CssTree::lower_bound`]); the
    /// return value is the number of node blocks prefetched.
    pub fn lower_bound_batch(
        &self,
        targets: &[Entry],
        prefetch_dist: usize,
        positions: &mut Vec<usize>,
    ) -> u64 {
        let mut scratch = ProbeCounters::default();
        self.lower_bound_batch_inner(targets, prefetch_dist, positions, None, &mut scratch)
    }

    /// [`CssTree::lower_bound_batch`] that additionally records, per target,
    /// the leaf-group index the group descent landed in (always 0 when the
    /// tree has no inner levels). The group is captured *before* the final
    /// in-leaf search, so it is exactly the value
    /// [`CssTree::descend_to_depth`] would return for the full descent —
    /// callers can derive the routing node at any shallower depth
    /// arithmetically with [`CssTree::ancestor_at_depth`] instead of
    /// re-descending from the root.
    pub fn lower_bound_batch_groups(
        &self,
        targets: &[Entry],
        prefetch_dist: usize,
        positions: &mut Vec<usize>,
        groups: &mut Vec<usize>,
    ) -> u64 {
        let mut scratch = ProbeCounters::default();
        self.lower_bound_batch_inner(
            targets,
            prefetch_dist,
            positions,
            Some(groups),
            &mut scratch,
        )
    }

    /// [`CssTree::lower_bound_batch_groups`] that records its work —
    /// prefetched node blocks and SIMD/scalar intra-node searches — straight
    /// into `counters` instead of returning a bare prefetch count.
    pub fn lower_bound_batch_groups_counted(
        &self,
        targets: &[Entry],
        prefetch_dist: usize,
        positions: &mut Vec<usize>,
        groups: &mut Vec<usize>,
        counters: &mut ProbeCounters,
    ) {
        let prefetched =
            self.lower_bound_batch_inner(targets, prefetch_dist, positions, Some(groups), counters);
        counters.nodes_prefetched += prefetched;
    }

    /// Interleaved (AMAC-style) [`CssTree::lower_bound_batch_groups`]: the
    /// same outputs — one leaf position per target in `positions`, the
    /// descent's leaf group in `groups` — resolved by a fixed ring of
    /// `interleave` in-flight descents advanced round-robin.
    ///
    /// Where the level-wise group descent hides latency *across* a batch by
    /// prefetching `prefetch_dist` keys ahead within each level, the
    /// interleaved engine hides it *within* the ring: each step performs one
    /// node's lower-bound compare for one descent, issues the prefetch for
    /// the block that same descent will visit next, and immediately switches
    /// to the next ring slot. By the time the ring wraps around, the
    /// prefetched block has had `interleave - 1` other node searches' worth
    /// of time to arrive, so no descent blocks the pipeline on its own cache
    /// miss. Finished descents are refilled from the remaining targets until
    /// the batch is drained.
    ///
    /// `interleave` values below 2 are clamped to 2 (a single-slot ring
    /// cannot overlap anything); callers disable interleaving by calling the
    /// batch or scalar paths instead. Work is recorded into `counters`
    /// (descents, steps, the per-descent step histogram, prefetched blocks
    /// and SIMD/scalar searches).
    pub fn lower_bound_interleaved(
        &self,
        targets: &[Entry],
        interleave: usize,
        positions: &mut Vec<usize>,
        mut groups: Option<&mut Vec<usize>>,
        counters: &mut ProbeCounters,
    ) {
        positions.clear();
        if let Some(groups) = groups.as_deref_mut() {
            groups.clear();
        }
        let n = targets.len();
        if n == 0 {
            return;
        }
        counters.interleaved_batches += 1;
        counters.interleaved_descents += n as u64;
        if self.leaves.is_empty() || self.level_sizes.is_empty() {
            // Same degenerate handling as the batch descent: nothing to
            // interleave — an empty tree answers 0 everywhere, a single leaf
            // level is one direct search per target.
            if self.leaves.is_empty() {
                positions.resize(n, 0);
            } else {
                positions.extend(targets.iter().map(|&t| node_lower_bound(&self.leaves, t)));
                counters.interleave_steps += n as u64;
                counters.record_descent_steps(1, n as u64);
                count_node_searches(counters, n as u64);
            }
            if let Some(groups) = groups.as_deref_mut() {
                groups.resize(n, 0);
            }
            return;
        }
        positions.resize(n, 0);
        if let Some(groups) = groups.as_deref_mut() {
            groups.resize(n, 0);
        }
        let levels = self.level_sizes.len();
        let width = interleave.max(2).min(n);
        let mut ring: Vec<DescentState> = (0..width)
            .map(|slot| DescentState {
                node: 0,
                level: 0,
                target: targets[slot],
                slot,
            })
            .collect();
        let mut next = width; // next target to feed into a freed slot
        let mut live = width;
        let mut searches = 0u64;
        let mut r = 0usize;
        while live > 0 {
            let state = &mut ring[r];
            if state.slot != RETIRED {
                if state.level < levels {
                    // One inner-node step: search, compute the child, then
                    // prefetch the block this descent touches next and yield
                    // the pipeline to the other ring slots.
                    let keys = self.keys_of(state.level, state.node);
                    let mut k = node_lower_bound(keys, state.target);
                    searches += 1;
                    let real = self.real_children(state.level, state.node);
                    if k >= real {
                        k = real - 1;
                    }
                    let child = state.node * self.fanout + k;
                    state.node = child;
                    state.level += 1;
                    if state.level < levels {
                        prefetch_slice(self.keys_of(state.level, child));
                    } else {
                        prefetch_slice(self.leaf_group_slice(child));
                    }
                    counters.nodes_prefetched += 1;
                    counters.interleave_steps += 1;
                } else {
                    // Final leaf step: the cursor holds the leaf group.
                    let group = state.node;
                    if let Some(groups) = groups.as_deref_mut() {
                        groups[state.slot] = group;
                    }
                    let start = group * self.leaf_size;
                    positions[state.slot] =
                        start + node_lower_bound(self.leaf_group_slice(group), state.target);
                    searches += 1;
                    counters.interleave_steps += 1;
                    if next < n {
                        *state = DescentState {
                            node: 0,
                            level: 0,
                            target: targets[next],
                            slot: next,
                        };
                        next += 1;
                    } else {
                        state.slot = RETIRED;
                        live -= 1;
                    }
                }
            }
            r += 1;
            if r == width {
                r = 0;
            }
        }
        // Every descent in a balanced CSS-Tree takes `levels` inner visits
        // plus the leaf search.
        counters.record_descent_steps(levels + 1, n as u64);
        count_node_searches(counters, searches);
    }

    /// The ancestor node index at `depth` of a leaf group's descent path
    /// (root = depth 0). Because a descent step computes
    /// `child = node * fanout + k`, the node visited at `depth` is the
    /// repeated integer quotient of the leaf group by the fan-out — no
    /// re-descent needed. A tree without inner levels has a single root
    /// "node" (index 0); depths at or past the deepest inner level return the
    /// leaf group itself.
    pub fn ancestor_at_depth(&self, leaf_group: usize, depth: usize) -> usize {
        let levels = self.level_sizes.len();
        if levels == 0 {
            return 0;
        }
        let mut node = leaf_group;
        for _ in depth.min(levels)..levels {
            node /= self.fanout;
        }
        node
    }

    fn lower_bound_batch_inner(
        &self,
        targets: &[Entry],
        prefetch_dist: usize,
        positions: &mut Vec<usize>,
        groups: Option<&mut Vec<usize>>,
        counters: &mut ProbeCounters,
    ) -> u64 {
        positions.clear();
        let n = targets.len();
        if n == 0 {
            if let Some(groups) = groups {
                groups.clear();
            }
            return 0;
        }
        if self.leaves.is_empty() || self.level_sizes.is_empty() {
            // Empty tree, or a single leaf level: no inner nodes to descend
            // or prefetch, and no descent path — every "group" is the root.
            if self.leaves.is_empty() {
                positions.resize(n, 0);
            } else {
                positions.extend(targets.iter().map(|&t| node_lower_bound(&self.leaves, t)));
                count_node_searches(counters, n as u64);
            }
            if let Some(groups) = groups {
                groups.clear();
                groups.resize(n, 0);
            }
            return 0;
        }
        // `positions` doubles as the per-target node cursor while descending.
        positions.resize(n, 0);
        let d = prefetch_dist;
        let levels = self.level_sizes.len();
        let mut prefetched = 0u64;
        let mut searches = 0u64;
        for level in 0..levels {
            for i in 0..n {
                // Rolling lookahead within the level (skipped at the root,
                // where every key reads the same block).
                if level > 0 && d > 0 && i + d < n {
                    prefetch_slice(self.keys_of(level, positions[i + d]));
                    prefetched += 1;
                }
                let keys = self.keys_of(level, positions[i]);
                let mut k = node_lower_bound(keys, targets[i]);
                searches += 1;
                let real = self.real_children(level, positions[i]);
                if k >= real {
                    k = real - 1;
                }
                let child = positions[i] * self.fanout + k;
                positions[i] = child;
                // Seed the next level's lookahead window with the first `d`
                // children computed in this pass.
                if d > 0 && i < d {
                    if level + 1 < levels {
                        prefetch_slice(self.keys_of(level + 1, child));
                    } else {
                        prefetch_slice(self.leaf_group_slice(child));
                    }
                    prefetched += 1;
                }
            }
        }
        // The cursors now hold leaf-group indexes: snapshot them for callers
        // that derive partition-routing ancestors arithmetically.
        if let Some(groups) = groups {
            groups.clear();
            groups.extend_from_slice(positions);
        }
        // Leaf pass.
        for i in 0..n {
            if d > 0 && i + d < n {
                prefetch_slice(self.leaf_group_slice(positions[i + d]));
                prefetched += 1;
            }
            let group = self.leaf_group_slice(positions[i]);
            let start = positions[i] * self.leaf_size;
            positions[i] = start + node_lower_bound(group, targets[i]);
            searches += 1;
        }
        count_node_searches(counters, searches);
        prefetched
    }

    /// Batched range probe: calls `f(i, entry)` for every entry whose key
    /// lies in `ranges[i]` (bounds inclusive), entries of each range in
    /// ascending order. The positions of all range starts are resolved with
    /// one prefetched group descent ([`CssTree::lower_bound_batch`]); returns
    /// the number of node blocks prefetched.
    pub fn probe_batch<F: FnMut(usize, Entry)>(
        &self,
        ranges: &[KeyRange],
        prefetch_dist: usize,
        mut f: F,
    ) -> u64 {
        if ranges.is_empty() || self.leaves.is_empty() {
            return 0;
        }
        let targets: Vec<Entry> = ranges.iter().map(|r| Entry::min_for_key(r.lo)).collect();
        let mut positions = Vec::with_capacity(ranges.len());
        let prefetched = self.lower_bound_batch(&targets, prefetch_dist, &mut positions);
        for (i, (range, &start)) in ranges.iter().zip(positions.iter()).enumerate() {
            let mut pos = start;
            while pos < self.leaves.len() {
                let e = self.leaves[pos];
                if e.key > range.hi {
                    break;
                }
                f(i, e);
                pos += 1;
            }
        }
        prefetched
    }

    /// Calls `f` for every entry whose key lies in `range` (bounds inclusive),
    /// in ascending order. Returns the number of entries visited.
    pub fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, mut f: F) -> usize {
        let mut pos = self.lower_bound_key(range.lo);
        let mut visited = 0;
        while pos < self.leaves.len() {
            let e = self.leaves[pos];
            if e.key > range.hi {
                break;
            }
            f(e);
            visited += 1;
            pos += 1;
        }
        visited
    }

    /// Collects every entry whose key lies in `range`.
    pub fn range_collect(&self, range: KeyRange) -> Vec<Entry> {
        let mut out = Vec::new();
        self.range_for_each(range, |e| out.push(e));
        out
    }

    /// The routing boundary of partition `p` at `depth`: the maximum entry of
    /// that subtree. Entries routed to partition `p` are `<=` this bound (the
    /// last partition's bound covers everything above as well).
    pub fn partition_upper_bound(&self, depth: usize, p: usize) -> Entry {
        if depth < self.level_maxes.len() {
            self.level_maxes[depth][p]
        } else if self.leaves.is_empty() {
            Entry::max_for_key(Key::MAX)
        } else {
            // Partitions are leaf groups.
            let start = p * self.leaf_size;
            let end = ((p + 1) * self.leaf_size).min(self.leaves.len());
            self.leaves[end.max(start + 1) - 1]
        }
    }

    /// Structural statistics.
    pub fn stats(&self) -> CssStats {
        CssStats {
            entries: self.leaves.len(),
            inner_slots: self.inner.len(),
            inner_levels: self.level_sizes.len(),
            leaf_bytes: self.leaves.len() * std::mem::size_of::<Entry>(),
            inner_bytes: self.inner.len() * std::mem::size_of::<Entry>(),
        }
    }

    /// Verifies the structural invariants (sortedness, routing consistency),
    /// panicking on the first violation. Intended for tests.
    pub fn check_invariants(&self) {
        assert!(
            self.leaves.windows(2).all(|w| w[0] <= w[1]),
            "leaf array is not sorted"
        );
        if self.level_sizes.is_empty() {
            return;
        }
        assert_eq!(self.level_sizes.len(), self.level_offsets.len());
        assert_eq!(self.level_sizes.len(), self.level_maxes.len());
        // Every entry must be found at its own position via the inner levels.
        for (i, &e) in self.leaves.iter().enumerate() {
            let pos = self.lower_bound(e);
            assert!(
                pos <= i && self.leaves[pos] == e,
                "lower_bound({e:?}) = {pos}, expected a position at or before {i} holding the entry"
            );
        }
        // Keys within each inner node must be non-decreasing.
        for level in 0..self.level_sizes.len() {
            for node in 0..self.level_sizes[level] {
                let keys = self.keys_of(level, node);
                assert!(
                    keys.windows(2).all(|w| w[0] <= w[1]),
                    "inner node ({level}, {node}) keys out of order"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<Entry> {
        (0..n as i64).map(|i| Entry::new(i * 2, i as u64)).collect()
    }

    fn tree(n: usize, fanout: usize, leaf: usize) -> CssTree {
        crate::CssBuilder::new()
            .fanout(fanout)
            .leaf_size(leaf)
            .build(entries(n))
    }

    #[test]
    fn empty_tree() {
        let t = CssTree::empty();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.lower_bound_key(5), 0);
        assert_eq!(t.leaf_groups(), 0);
        assert_eq!(t.nodes_at_depth(0), 1);
        assert!(t.range_collect(KeyRange::new(0, 100)).is_empty());
        t.check_invariants();
    }

    #[test]
    fn single_leaf_group_uses_no_inner_levels() {
        let t = tree(8, 4, 8);
        assert_eq!(t.inner_levels(), 0);
        assert_eq!(t.leaf_groups(), 1);
        assert_eq!(t.lower_bound_key(0), 0);
        assert_eq!(t.lower_bound_key(3), 2);
        assert_eq!(t.lower_bound_key(14), 7);
        assert_eq!(t.lower_bound_key(15), 8);
        t.check_invariants();
    }

    #[test]
    fn multi_level_lower_bound_matches_binary_search() {
        for n in [9, 64, 65, 100, 1000, 4096, 5000] {
            let t = tree(n, 4, 4);
            t.check_invariants();
            for probe in -1..(2 * n as i64 + 2) {
                let expected = t.entries().partition_point(|e| e.key < probe);
                assert_eq!(t.lower_bound_key(probe), expected, "n={n} probe={probe}");
            }
        }
    }

    #[test]
    fn range_scan_matches_filter() {
        let t = tree(500, 8, 8);
        let r = KeyRange::new(100, 200);
        let got = t.range_collect(r);
        let expected: Vec<Entry> = t
            .entries()
            .iter()
            .copied()
            .filter(|e| r.contains(e.key))
            .collect();
        assert_eq!(got, expected);
        // Out-of-domain ranges.
        assert!(t.range_collect(KeyRange::new(-50, -1)).is_empty());
        assert!(t.range_collect(KeyRange::new(10_000, 20_000)).is_empty());
    }

    #[test]
    fn nodes_at_depth_and_partition_bounds() {
        // 4096 entries, leaf groups of 32 -> 128 groups; fan-out 8 ->
        // level sizes (from deepest): 16, 2, 1 -> root at depth 0 has 2 real children.
        let t = tree(4096, 8, 32);
        assert_eq!(t.leaf_groups(), 128);
        assert_eq!(t.inner_levels(), 3);
        assert_eq!(t.nodes_at_depth(0), 1);
        assert_eq!(t.nodes_at_depth(1), 2);
        assert_eq!(t.nodes_at_depth(2), 16);
        assert_eq!(t.nodes_at_depth(3), 128);
        // Partition bounds at depth 2 are increasing and the last one covers
        // the maximum entry.
        let bounds: Vec<Entry> = (0..16).map(|p| t.partition_upper_bound(2, p)).collect();
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(bounds[15], t.max_entry().unwrap());
        // Every entry routed to partition p at depth 2 is <= its bound.
        for &e in t.entries() {
            let p = t.descend_to_depth(e, 2);
            assert!(
                e <= t.partition_upper_bound(2, p),
                "entry {e:?} exceeds bound of partition {p}"
            );
        }
    }

    #[test]
    fn descend_to_depth_zero_is_root() {
        let t = tree(1000, 8, 8);
        assert_eq!(t.descend_to_depth(Entry::new(0, 0), 0), 0);
    }

    #[test]
    fn duplicates_lower_bound_finds_first() {
        let mut e: Vec<Entry> = Vec::new();
        for s in 0..100u64 {
            e.push(Entry::new(10, s));
        }
        for s in 0..100u64 {
            e.push(Entry::new(20, s));
        }
        let t = crate::CssBuilder::new().fanout(4).leaf_size(4).build(e);
        t.check_invariants();
        assert_eq!(t.lower_bound_key(10), 0);
        assert_eq!(t.lower_bound_key(11), 100);
        assert_eq!(t.lower_bound_key(20), 100);
        assert_eq!(t.lower_bound_key(21), 200);
        assert_eq!(t.range_collect(KeyRange::point(10)).len(), 100);
    }

    #[test]
    fn stats_report_sizes() {
        let t = tree(1000, 8, 8);
        let s = t.stats();
        assert_eq!(s.entries, 1000);
        assert!(s.inner_levels >= 2);
        assert_eq!(s.leaf_bytes, 1000 * std::mem::size_of::<Entry>());
        assert!(s.inner_bytes > 0);
        assert_eq!(s.total_bytes(), s.leaf_bytes + s.inner_bytes);
    }

    /// Scalar/batched parity over every target in `probes`, for every
    /// prefetch distance in `dists`.
    fn assert_batch_matches_scalar(t: &CssTree, probes: &[Entry], dists: &[usize]) {
        let expected: Vec<usize> = probes.iter().map(|&p| t.lower_bound(p)).collect();
        for &d in dists {
            let mut got = Vec::new();
            t.lower_bound_batch(probes, d, &mut got);
            assert_eq!(got, expected, "prefetch_dist = {d}");
        }
        // The interleaved engine must agree position-for-position and
        // group-for-group with the batch descent at every ring width.
        let mut batch_pos = Vec::new();
        let mut batch_groups = Vec::new();
        t.lower_bound_batch_groups(probes, 4, &mut batch_pos, &mut batch_groups);
        for k in [0, 1, 2, 3, 4, 8, 16, 64] {
            let mut pos = Vec::new();
            let mut groups = Vec::new();
            let mut counters = ProbeCounters::default();
            t.lower_bound_interleaved(probes, k, &mut pos, Some(&mut groups), &mut counters);
            assert_eq!(pos, expected, "interleave = {k}");
            assert_eq!(groups, batch_groups, "interleave = {k}");
            if !probes.is_empty() {
                assert_eq!(counters.interleaved_batches, 1);
                assert_eq!(counters.interleaved_descents, probes.len() as u64);
                if !t.is_empty() {
                    assert_eq!(
                        counters.descent_steps.iter().sum::<u64>(),
                        probes.len() as u64,
                        "every descent lands in exactly one histogram bucket"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_lower_bound_on_empty_tree() {
        let t = CssTree::empty();
        let probes = [Entry::min_for_key(0), Entry::min_for_key(100)];
        let mut got = Vec::new();
        let prefetched = t.lower_bound_batch(&probes, 4, &mut got);
        assert_eq!(got, vec![0, 0]);
        assert_eq!(prefetched, 0, "nothing to prefetch in an empty tree");
        t.probe_batch(&[KeyRange::new(0, 100)], 4, |_, _| {
            panic!("empty tree must produce no entries")
        });
    }

    #[test]
    fn batched_lower_bound_on_single_node_tree() {
        // One entry, and separately one leaf group (no inner levels).
        for n in [1usize, 7] {
            let t = tree(n, 4, 8);
            assert_eq!(t.inner_levels(), 0);
            let probes: Vec<Entry> = (-2..2 * n as i64 + 2).map(Entry::min_for_key).collect();
            assert_batch_matches_scalar(&t, &probes, &[0, 1, 4, 64]);
        }
    }

    #[test]
    fn batched_lower_bound_with_all_duplicate_keys() {
        let entries: Vec<Entry> = (0..200u64).map(|s| Entry::new(42, s)).collect();
        let t = crate::CssBuilder::new()
            .fanout(4)
            .leaf_size(4)
            .build(entries);
        let probes = vec![Entry::min_for_key(42); 16];
        assert_batch_matches_scalar(&t, &probes, &[0, 2, 16]);
        let mut per_range = vec![0usize; 3];
        let ranges = [
            KeyRange::point(42),
            KeyRange::new(0, 41),
            KeyRange::new(43, 100),
        ];
        t.probe_batch(&ranges, 4, |i, e| {
            assert_eq!(e.key, 42);
            per_range[i] += 1;
        });
        assert_eq!(per_range, vec![200, 0, 0]);
    }

    #[test]
    fn batched_lower_bound_outside_the_indexed_range() {
        let t = tree(1000, 8, 8); // keys 0, 2, ..., 1998
        let probes = [
            Entry::min_for_key(-500),
            Entry::min_for_key(i64::MIN),
            Entry::min_for_key(5000),
            Entry::min_for_key(i64::MAX),
            Entry::max_for_key(1998),
        ];
        assert_batch_matches_scalar(&t, &probes, &[0, 1, 3, 8]);
        let mut hits = 0;
        t.probe_batch(
            &[KeyRange::new(-100, -1), KeyRange::new(2000, 9000)],
            4,
            |_, _| hits += 1,
        );
        assert_eq!(hits, 0, "out-of-range probes must match nothing");
    }

    #[test]
    fn batched_lower_bound_matches_scalar_on_random_batches() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for (n, fanout, leaf) in [(9, 4, 4), (100, 4, 4), (1000, 8, 8), (5000, 32, 32)] {
            let t = tree(n, fanout, leaf);
            for batch in [1usize, 2, 8, 33] {
                let probes: Vec<Entry> = (0..batch)
                    .map(|_| Entry::new(rng.gen_range(-10..2 * n as i64 + 10), rng.gen()))
                    .collect();
                assert_batch_matches_scalar(&t, &probes, &[0, 1, 4, 7, 1024]);
            }
        }
    }

    #[test]
    fn batched_probe_matches_range_collect() {
        let t = tree(2000, 8, 8);
        let ranges = [
            KeyRange::new(100, 150),
            KeyRange::new(0, 0),
            KeyRange::new(3990, 4100),
            KeyRange::new(-5, 5),
            KeyRange::new(700, 700),
        ];
        let mut got: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
        let prefetched = t.probe_batch(&ranges, 2, |i, e| got[i].push(e));
        assert!(prefetched > 0, "a multi-level tree prefetches nodes");
        for (range, entries) in ranges.iter().zip(&got) {
            assert_eq!(entries, &t.range_collect(*range), "range {range:?}");
        }
    }

    #[test]
    fn ancestor_at_depth_matches_the_real_descent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for (n, fanout, leaf) in [(9, 4, 4), (257, 4, 4), (1000, 8, 8), (4096, 8, 32)] {
            let t = tree(n, fanout, leaf);
            let levels = t.inner_levels();
            let probes: Vec<Entry> = (0..64)
                .map(|_| Entry::new(rng.gen_range(-5..2 * n as i64 + 5), rng.gen()))
                .collect();
            for &p in &probes {
                let group = t.descend_to_depth(p, levels);
                for depth in 0..=levels {
                    assert_eq!(
                        t.ancestor_at_depth(group, depth),
                        t.descend_to_depth(p, depth),
                        "n={n} fanout={fanout} target={p:?} depth={depth}"
                    );
                }
            }
        }
        // Degenerate shapes: empty tree and single leaf level route to 0.
        assert_eq!(CssTree::empty().ancestor_at_depth(0, 0), 0);
        let flat = tree(7, 4, 8);
        assert_eq!(flat.inner_levels(), 0);
        assert_eq!(flat.ancestor_at_depth(0, 0), 0);
        assert_eq!(flat.ancestor_at_depth(3, 2), 0);
    }

    #[test]
    fn lower_bound_batch_groups_captures_the_descent_group() {
        let t = tree(4096, 8, 32);
        let levels = t.inner_levels();
        let targets: Vec<Entry> = (-2..50).map(|k| Entry::min_for_key(k * 173)).collect();
        let mut positions = Vec::new();
        let mut groups = Vec::new();
        for dist in [0usize, 1, 4] {
            let _ = t.lower_bound_batch_groups(&targets, dist, &mut positions, &mut groups);
            assert_eq!(positions.len(), targets.len());
            assert_eq!(groups.len(), targets.len());
            for (i, &target) in targets.iter().enumerate() {
                assert_eq!(positions[i], t.lower_bound(target), "dist {dist}");
                assert_eq!(
                    groups[i],
                    t.descend_to_depth(target, levels),
                    "dist {dist}, target {target:?}"
                );
            }
        }
        // Degenerate shapes report group 0 for every target.
        for degenerate in [CssTree::empty(), tree(7, 4, 8)] {
            let _ = degenerate.lower_bound_batch_groups(&targets, 4, &mut positions, &mut groups);
            assert_eq!(groups, vec![0; targets.len()]);
        }
        let _ = t.lower_bound_batch_groups(&[], 4, &mut positions, &mut groups);
        assert!(positions.is_empty() && groups.is_empty());
    }

    #[test]
    fn interleaved_descent_edge_cases_and_counter_accounting() {
        // Empty tree: every position and group is 0, nothing is stepped.
        let empty = CssTree::empty();
        let probes = [Entry::min_for_key(0), Entry::min_for_key(100)];
        let mut pos = Vec::new();
        let mut groups = Vec::new();
        let mut c = ProbeCounters::default();
        empty.lower_bound_interleaved(&probes, 8, &mut pos, Some(&mut groups), &mut c);
        assert_eq!(pos, vec![0, 0]);
        assert_eq!(groups, vec![0, 0]);
        assert_eq!((c.interleaved_batches, c.interleaved_descents), (1, 2));
        assert_eq!(c.interleave_steps, 0);

        // Empty batch: outputs cleared, nothing counted.
        let t = tree(4096, 8, 32);
        let mut c = ProbeCounters::default();
        t.lower_bound_interleaved(&[], 8, &mut pos, Some(&mut groups), &mut c);
        assert!(pos.is_empty() && groups.is_empty());
        assert_eq!(c, ProbeCounters::default());

        // Multi-level tree: exact step/prefetch/search accounting. Every
        // descent takes `levels` inner visits plus one leaf search.
        let levels = t.inner_levels() as u64;
        assert!(levels >= 2, "test tree must be multi-level");
        let targets: Vec<Entry> = (-3..61).map(|k| Entry::min_for_key(k * 131)).collect();
        let n = targets.len() as u64;
        for k in [1usize, 2, 5, 8, 64] {
            let mut c = ProbeCounters::default();
            t.lower_bound_interleaved(&targets, k, &mut pos, Some(&mut groups), &mut c);
            assert_eq!(c.interleave_steps, n * (levels + 1), "interleave {k}");
            assert_eq!(c.nodes_prefetched, n * levels, "interleave {k}");
            assert_eq!(
                c.simd_node_searches + c.scalar_node_searches,
                c.interleave_steps,
                "each step performs exactly one node search"
            );
            let bucket = (levels as usize).min(ProbeCounters::DESCENT_STEP_BUCKETS - 1);
            assert_eq!(c.descent_steps[bucket], n, "interleave {k}");
            assert_eq!(c.mean_descent_steps(), (levels + 1) as f64);
        }

        // The counted batch descent records the same prefetch count the
        // plain one returns, and positions/groups stay identical.
        let mut plain_pos = Vec::new();
        let mut plain_groups = Vec::new();
        let prefetched = t.lower_bound_batch_groups(&targets, 4, &mut plain_pos, &mut plain_groups);
        let mut c = ProbeCounters::default();
        t.lower_bound_batch_groups_counted(&targets, 4, &mut pos, &mut groups, &mut c);
        assert_eq!(pos, plain_pos);
        assert_eq!(groups, plain_groups);
        assert_eq!(c.nodes_prefetched, prefetched);
        assert!(c.simd_node_searches + c.scalar_node_searches > 0);
    }

    #[test]
    fn higher_fanout_means_fewer_levels() {
        let narrow = tree(100_000, 4, 16);
        let wide = tree(100_000, 64, 16);
        assert!(wide.inner_levels() < narrow.inner_levels());
    }
}
