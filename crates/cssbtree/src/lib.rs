//! The immutable B+-Tree (CSS-Tree) used as the search-efficient component
//! `TS` of the IM-Tree and PIM-Tree.
//!
//! Nodes are arranged in a breadth-first array: given a node's position, the
//! positions of its children are computed implicitly, so inner nodes store
//! only keys and no child references (§3.1 and Appendix A.3 of the paper).
//! Compared to the pointer-based B+-Tree this yields a higher effective
//! fan-out, a shallower tree and faster lookups — at the price of the tree
//! being immutable: it is rebuilt wholesale by the periodic merge.
//!
//! The structure is completely read-only after construction, which is what
//! makes `TS` traversal lock-free in the PIM-Tree: concurrent readers share an
//! `Arc<CssTree>` and the merge installs a fresh tree by swapping the `Arc`.
//!
//! The breadth-first layout has a second payoff beyond fan-out: because child
//! positions are arithmetic, a *group* of lookups can descend level by level
//! with every next-level node known — and software-prefetched — before it is
//! touched. [`tree::CssTree::lower_bound_batch`] and
//! [`tree::CssTree::probe_batch`] implement that batched group probe, which
//! the join engines use to answer a whole task's probes at once.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod tree;

pub use build::CssBuilder;
pub use tree::{CssStats, CssTree};

/// Default number of keys (= children) per inner node.
pub const DEFAULT_FANOUT: usize = 32;

/// Default number of entries per leaf group.
pub const DEFAULT_LEAF_SIZE: usize = 32;
