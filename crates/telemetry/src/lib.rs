//! # pimtree-telemetry — the engine flight recorder
//!
//! Low-overhead observability primitives shared by the join engines and the
//! benchmark harness:
//!
//! * [`LatencyHistogram`] — the fixed-footprint log-bucketed histogram
//!   (promoted out of `pimtree-common` so every layer can record
//!   distributions without a dependency on the engine crates);
//! * [`TelemetryMode`] — the `off | counters | full` switch: `off` costs one
//!   relaxed counter increment per instrumentation point, `counters` adds
//!   per-phase time/count accumulation, `full` adds per-worker latency
//!   histograms and per-cause stall histograms;
//! * [`TelemetryRegistry`] / [`WorkerRecorder`] — allocation-free per-worker
//!   phase recorders backed by relaxed atomics, snapshot-able from a sampler
//!   thread while workers record;
//! * [`StallCause`] / [`StallBreakdown`] / [`StallLap`] — attribution of a
//!   migration quiesce interval to named causes (gate close, in-flight
//!   drain, window snapshot, rebuild, index swap, router swap) such that the
//!   per-cause sum equals the measured stall by construction;
//! * [`GaugeSample`] / [`JsonlSink`] — periodic engine gauge snapshots
//!   (ring occupancy, in-flight count, window sizes, steal traffic, drift
//!   imbalance, handoff frontier) appended as JSON Lines, plus a
//!   Prometheus-style text rendering of the final [`TelemetryReport`].
//!
//! The recorder design keeps the hot path honest: every instrumentation
//! point in a worker costs exactly one `Relaxed` `fetch_add` when telemetry
//! is off, two clock reads plus three relaxed adds in `counters` mode, and
//! one additional histogram bucket increment (a local, unshared array) in
//! `full` mode. Nothing on the worker path takes a lock or allocates.

#![warn(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution of [`LatencyHistogram`]: every power-of-two octave
/// is split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantization error at `2^-SUB_BITS` (~6 %).
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Sub-linear region (values below `SUB_BUCKETS` are exact) plus one group of
/// sub-buckets per remaining octave of the `u64` nanosecond range.
const HIST_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Fixed-footprint log-bucketed latency histogram.
///
/// An exact recorder keeps every sample, which is precise but unbounded — an
/// open-loop run at a sustained arrival rate records one sample per tuple and
/// would grow without limit. The histogram instead spreads nanosecond values
/// over power-of-two octaves with `2^SUB_BITS` linear sub-buckets each
/// (HdrHistogram's bucketing), so recording is O(1), the footprint is a few
/// kilobytes regardless of run length, and quantiles are accurate to ~6 %
/// relative error — plenty for p50/p99/p999 tail reporting. The maximum is
/// tracked exactly so the worst observed latency is never quantized away.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    #[inline]
    fn bucket_of(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS {
            nanos as usize
        } else {
            let exp = 63 - nanos.leading_zeros(); // >= SUB_BITS
            let octave = (exp - SUB_BITS) as u64;
            let sub = (nanos >> octave) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
            (SUB_BUCKETS + octave * SUB_BUCKETS + sub) as usize
        }
    }

    /// Midpoint of a bucket's value interval (the quantile estimate).
    fn bucket_mid(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            idx
        } else {
            let octave = (idx - SUB_BUCKETS) / SUB_BUCKETS;
            let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS;
            let lo = (SUB_BUCKETS + sub) << octave;
            lo + ((1u64 << octave) >> 1)
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample given in nanoseconds.
    #[inline]
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another histogram's samples into this one.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64 / 1.0e3
        }
    }

    /// Latency quantile (`q` in `[0, 1]`) in microseconds, estimated at the
    /// covering bucket's midpoint and clamped to the exact maximum.
    pub fn percentile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested order statistic, matching the exact
        // recorder's nearest-rank convention over the sorted sample.
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_mid(idx).min(self.max_nanos) as f64 / 1.0e3;
            }
        }
        self.max_micros()
    }

    /// Median latency in microseconds.
    pub fn p50_micros(&self) -> f64 {
        self.percentile_micros(0.50)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_micros(&self) -> f64 {
        self.percentile_micros(0.99)
    }

    /// 99.9th-percentile latency in microseconds.
    pub fn p999_micros(&self) -> f64 {
        self.percentile_micros(0.999)
    }

    /// Maximum observed latency in microseconds (exact, not quantized).
    pub fn max_micros(&self) -> f64 {
        self.max_nanos as f64 / 1.0e3
    }
}

/// How much the engine records about itself while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TelemetryMode {
    /// Instrumentation points cost one relaxed counter increment; nothing
    /// else is recorded. The default.
    #[default]
    Off,
    /// Per-worker, per-phase time and invocation counters (relaxed atomics).
    Counters,
    /// Counters plus per-worker phase histograms and per-cause stall
    /// histograms.
    Full,
}

impl TelemetryMode {
    /// Whether phase timing (clock reads) is enabled.
    #[inline]
    pub fn timing_enabled(self) -> bool {
        self != TelemetryMode::Off
    }

    /// Whether per-worker/per-cause histograms are kept.
    #[inline]
    pub fn histograms_enabled(self) -> bool {
        self == TelemetryMode::Full
    }

    /// Stable lower-case label (`off` / `counters` / `full`).
    pub fn label(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Counters => "counters",
            TelemetryMode::Full => "full",
        }
    }
}

impl fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for TelemetryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryMode::Off),
            "counters" => Ok(TelemetryMode::Counters),
            "full" => Ok(TelemetryMode::Full),
            other => Err(format!(
                "unknown telemetry mode '{other}' (use off|counters|full)"
            )),
        }
    }
}

/// The worker phases the flight recorder distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePhase {
    /// Claiming a task batch from the ring (including the quiesce handshake).
    Claim,
    /// Refilling ring slots from the input stream.
    Ingest,
    /// Probing the opposite window's index and generating results.
    Probe,
    /// Merging the mutable index component into the immutable one.
    Merge,
    /// Window maintenance: inserting new tuples and expiring old ones.
    Expiry,
}

impl EnginePhase {
    /// All phases in reporting order.
    pub const ALL: [EnginePhase; 5] = [
        EnginePhase::Claim,
        EnginePhase::Ingest,
        EnginePhase::Probe,
        EnginePhase::Merge,
        EnginePhase::Expiry,
    ];

    /// Stable array index for the phase.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            EnginePhase::Claim => 0,
            EnginePhase::Ingest => 1,
            EnginePhase::Probe => 2,
            EnginePhase::Merge => 3,
            EnginePhase::Expiry => 4,
        }
    }

    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            EnginePhase::Claim => "claim",
            EnginePhase::Ingest => "ingest",
            EnginePhase::Probe => "probe",
            EnginePhase::Merge => "merge",
            EnginePhase::Expiry => "expiry",
        }
    }
}

const PHASE_COUNT: usize = 5;

/// Named causes a migration quiesce interval decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Closing the admission gate (storing the flag, before draining).
    GateClose,
    /// Spinning until in-flight workers retire their current task.
    InFlightDrain,
    /// Snapshotting window contents for redistribution.
    WindowSnapshot,
    /// Rebuilding per-shard indexes over the redistributed entries.
    Rebuild,
    /// Swapping the rebuilt index/window shards into place.
    IndexSwap,
    /// Re-resolving the plan and swapping the router / route overrides.
    RouterSwap,
}

impl StallCause {
    /// All causes in reporting order.
    pub const ALL: [StallCause; 6] = [
        StallCause::GateClose,
        StallCause::InFlightDrain,
        StallCause::WindowSnapshot,
        StallCause::Rebuild,
        StallCause::IndexSwap,
        StallCause::RouterSwap,
    ];

    /// Stable array index for the cause.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StallCause::GateClose => 0,
            StallCause::InFlightDrain => 1,
            StallCause::WindowSnapshot => 2,
            StallCause::Rebuild => 3,
            StallCause::IndexSwap => 4,
            StallCause::RouterSwap => 5,
        }
    }

    /// Stable snake-case label used in JSON and Prometheus output.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::GateClose => "gate_close",
            StallCause::InFlightDrain => "in_flight_drain",
            StallCause::WindowSnapshot => "window_snapshot",
            StallCause::Rebuild => "rebuild",
            StallCause::IndexSwap => "index_swap",
            StallCause::RouterSwap => "router_swap",
        }
    }
}

/// Number of distinct [`StallCause`] values.
pub const STALL_CAUSE_COUNT: usize = 6;

/// Accumulated per-cause stall time and occurrence counts.
///
/// `Copy` on purpose: the join engine embeds one in its `Copy` migration
/// counter block and merges per-epoch breakdowns into it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    nanos: [u64; STALL_CAUSE_COUNT],
    counts: [u64; STALL_CAUSE_COUNT],
}

impl StallBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` to `cause` and bumps its occurrence count.
    #[inline]
    pub fn record(&mut self, cause: StallCause, nanos: u64) {
        self.nanos[cause.index()] += nanos;
        self.counts[cause.index()] += 1;
    }

    /// Total accumulated nanoseconds for `cause`.
    pub fn nanos(&self, cause: StallCause) -> u64 {
        self.nanos[cause.index()]
    }

    /// Number of times `cause` was recorded.
    pub fn count(&self, cause: StallCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Sum of all causes, in nanoseconds. Because [`StallLap`] partitions a
    /// quiesce interval into consecutive cause segments, this equals the
    /// measured stall total exactly.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Folds another breakdown into this one.
    pub fn merge_from(&mut self, other: &StallBreakdown) {
        for i in 0..STALL_CAUSE_COUNT {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }
}

/// A lap timer that partitions one quiesce interval into consecutive
/// [`StallCause`] segments.
///
/// Each [`StallLap::lap`] call attributes the time since the previous lap
/// (or since [`StallLap::start`]) to one cause and advances the cursor, so
/// the segments tile the interval with no gaps or overlaps: the breakdown's
/// [`StallBreakdown::total_nanos`] equals the elapsed wall-clock time of the
/// interval exactly. [`StallLap::lap_split`] distributes one segment over
/// several causes using externally measured sub-phase timings, attributing
/// any remainder to a designated cause so coverage stays exact.
#[derive(Debug)]
pub struct StallLap {
    last: Instant,
    breakdown: StallBreakdown,
}

impl StallLap {
    /// Starts a lap timer at the current instant.
    pub fn start() -> Self {
        StallLap {
            last: Instant::now(),
            breakdown: StallBreakdown::new(),
        }
    }

    /// Attributes the time since the previous lap to `cause`. Returns the
    /// segment length in nanoseconds.
    pub fn lap(&mut self, cause: StallCause) -> u64 {
        let now = Instant::now();
        let nanos = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        self.breakdown.record(cause, nanos);
        nanos
    }

    /// Attributes the time since the previous lap to several causes using
    /// externally measured sub-phase nanoseconds; whatever the splits do not
    /// cover goes to `remainder` (splits exceeding the segment are scaled
    /// down proportionally so the total stays exact). Returns the segment
    /// length in nanoseconds.
    pub fn lap_split(&mut self, splits: &[(StallCause, u64)], remainder: StallCause) -> u64 {
        let now = Instant::now();
        let total = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        let claimed: u64 = splits.iter().map(|&(_, n)| n).sum();
        if claimed > 0 && claimed <= total {
            for &(cause, n) in splits {
                self.breakdown.record(cause, n);
            }
            self.breakdown.record(remainder, total - claimed);
        } else if claimed > total {
            // Sub-phase clocks overshot the outer segment (scheduling skew);
            // scale them down so the partition still tiles exactly.
            let mut assigned = 0u64;
            for (i, &(cause, n)) in splits.iter().enumerate() {
                let share = if i + 1 == splits.len() {
                    total - assigned
                } else {
                    ((n as u128 * total as u128) / claimed as u128) as u64
                };
                assigned += share;
                self.breakdown.record(cause, share);
            }
            self.breakdown.record(remainder, 0);
        } else {
            self.breakdown.record(remainder, total);
        }
        total
    }

    /// Nanoseconds attributed so far (sum over all recorded segments).
    pub fn total_nanos(&self) -> u64 {
        self.breakdown.total_nanos()
    }

    /// Finishes the lap and returns the per-cause breakdown.
    pub fn finish(self) -> StallBreakdown {
        self.breakdown
    }
}

/// Per-worker shared counter cells, read by the sampler while the worker
/// records. All operations are `Relaxed`: the aggregate is monotone, and
/// consumers only rely on monotonicity within a sampling round.
#[derive(Debug)]
struct WorkerCells {
    events: AtomicU64,
    counts: [AtomicU64; PHASE_COUNT],
    nanos: [AtomicU64; PHASE_COUNT],
}

impl WorkerCells {
    fn new() -> Self {
        WorkerCells {
            events: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn totals(&self) -> PhaseTotals {
        let mut t = PhaseTotals {
            events: self.events.load(Ordering::Relaxed),
            ..PhaseTotals::default()
        };
        for i in 0..PHASE_COUNT {
            t.counts[i] = self.counts[i].load(Ordering::Relaxed);
            t.nanos[i] = self.nanos[i].load(Ordering::Relaxed);
        }
        t
    }
}

/// A point-in-time snapshot of one worker's (or all workers') per-phase
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Instrumentation events observed (incremented in every mode).
    pub events: u64,
    counts: [u64; PHASE_COUNT],
    nanos: [u64; PHASE_COUNT],
}

impl PhaseTotals {
    /// Number of times `phase` was recorded.
    pub fn count(&self, phase: EnginePhase) -> u64 {
        self.counts[phase.index()]
    }

    /// Total nanoseconds recorded for `phase`.
    pub fn nanos(&self, phase: EnginePhase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Sum of all phase nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Folds another snapshot into this one.
    pub fn merge_from(&mut self, other: &PhaseTotals) {
        self.events += other.events;
        for i in 0..PHASE_COUNT {
            self.counts[i] += other.counts[i];
            self.nanos[i] += other.nanos[i];
        }
    }
}

struct StallState {
    breakdown: StallBreakdown,
    histograms: Option<Vec<LatencyHistogram>>,
}

/// Shared registry of per-worker recorders plus engine-level stall
/// attribution. One registry lives for the duration of a run; the sampler
/// thread snapshots it concurrently via [`TelemetryRegistry::totals`].
pub struct TelemetryRegistry {
    mode: TelemetryMode,
    workers: Vec<WorkerCells>,
    phase_histograms: Mutex<Option<Vec<LatencyHistogram>>>,
    stall: Mutex<StallState>,
}

impl fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryRegistry")
            .field("mode", &self.mode)
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn empty_histograms(n: usize) -> Vec<LatencyHistogram> {
    (0..n).map(|_| LatencyHistogram::new()).collect()
}

impl TelemetryRegistry {
    /// Creates a registry for `workers` recorder slots in the given mode.
    pub fn new(mode: TelemetryMode, workers: usize) -> Self {
        TelemetryRegistry {
            mode,
            workers: (0..workers).map(|_| WorkerCells::new()).collect(),
            phase_histograms: Mutex::new(
                mode.histograms_enabled()
                    .then(|| empty_histograms(PHASE_COUNT)),
            ),
            stall: Mutex::new(StallState {
                breakdown: StallBreakdown::new(),
                histograms: mode
                    .histograms_enabled()
                    .then(|| empty_histograms(STALL_CAUSE_COUNT)),
            }),
        }
    }

    /// The recording mode the registry was created with.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Number of worker recorder slots.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Creates the recorder for worker `worker`. Each worker must use its
    /// own slot; the recorder is not `Sync`.
    ///
    /// # Panics
    /// If `worker` is out of range.
    pub fn recorder(&self, worker: usize) -> WorkerRecorder<'_> {
        WorkerRecorder {
            mode: self.mode,
            cells: &self.workers[worker],
            registry: self,
            histograms: self
                .mode
                .histograms_enabled()
                .then(|| empty_histograms(PHASE_COUNT)),
        }
    }

    /// Folds one quiesce interval's per-cause breakdown into the run totals
    /// and, in full mode, records each non-empty cause segment into its
    /// per-cause histogram.
    pub fn record_stall(&self, epoch: &StallBreakdown) {
        let mut stall = self.stall.lock().unwrap();
        stall.breakdown.merge_from(epoch);
        if let Some(hists) = stall.histograms.as_mut() {
            for cause in StallCause::ALL {
                if epoch.count(cause) > 0 {
                    hists[cause.index()].record_nanos(epoch.nanos(cause));
                }
            }
        }
    }

    /// Snapshot of the run-total per-cause stall breakdown.
    pub fn stall_breakdown(&self) -> StallBreakdown {
        self.stall.lock().unwrap().breakdown
    }

    /// Snapshot of one worker's counters.
    ///
    /// # Panics
    /// If `worker` is out of range.
    pub fn worker_totals(&self, worker: usize) -> PhaseTotals {
        self.workers[worker].totals()
    }

    /// Snapshot of the aggregate counters across all workers. Computed by
    /// summing the per-worker cells, so it is monotone between two calls
    /// even while workers record concurrently.
    pub fn totals(&self) -> PhaseTotals {
        let mut sum = PhaseTotals::default();
        for cells in &self.workers {
            sum.merge_from(&cells.totals());
        }
        sum
    }

    /// Total instrumentation events across all workers (available in every
    /// mode, including `off`).
    pub fn events(&self) -> u64 {
        self.workers
            .iter()
            .map(|c| c.events.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets all counters, histograms, and stall totals (used between a
    /// warm-up pass and the measured pass).
    pub fn reset(&self) {
        for cells in &self.workers {
            cells.events.store(0, Ordering::Relaxed);
            for i in 0..PHASE_COUNT {
                cells.counts[i].store(0, Ordering::Relaxed);
                cells.nanos[i].store(0, Ordering::Relaxed);
            }
        }
        if let Some(hists) = self.phase_histograms.lock().unwrap().as_mut() {
            *hists = empty_histograms(PHASE_COUNT);
        }
        let mut stall = self.stall.lock().unwrap();
        stall.breakdown = StallBreakdown::new();
        if stall.histograms.is_some() {
            stall.histograms = Some(empty_histograms(STALL_CAUSE_COUNT));
        }
    }

    /// Assembles the end-of-run report: aggregate and per-worker totals,
    /// merged phase histograms, and the stall-cause breakdown.
    pub fn report(&self) -> TelemetryReport {
        let stall = self.stall.lock().unwrap();
        TelemetryReport {
            mode: self.mode,
            totals: self.totals(),
            per_worker: self.workers.iter().map(|c| c.totals()).collect(),
            phase_histograms: self.phase_histograms.lock().unwrap().clone(),
            stall: stall.breakdown,
            stall_histograms: stall.histograms.clone(),
        }
    }
}

/// One worker's recording handle. Cheap to use from the hot path: `off`
/// mode costs a single relaxed increment per instrumentation point, and no
/// mode takes a lock or allocates while recording.
#[derive(Debug)]
pub struct WorkerRecorder<'a> {
    mode: TelemetryMode,
    cells: &'a WorkerCells,
    registry: &'a TelemetryRegistry,
    histograms: Option<Vec<LatencyHistogram>>,
}

impl WorkerRecorder<'_> {
    /// The recording mode.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Reads the clock iff timing is enabled; pass the result to
    /// [`WorkerRecorder::commit`]. In `off` mode this returns `None` and
    /// the matching commit degrades to one relaxed event count.
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        if self.mode.timing_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Commits a phase observation started at `clock()`.
    #[inline]
    pub fn commit(&mut self, phase: EnginePhase, started: Option<Instant>) {
        match started {
            Some(t) => self.record_nanos(phase, t.elapsed().as_nanos() as u64),
            None => self.event(),
        }
    }

    /// Records a phase observation whose duration was measured externally.
    #[inline]
    pub fn record_nanos(&mut self, phase: EnginePhase, nanos: u64) {
        self.cells.events.fetch_add(1, Ordering::Relaxed);
        if !self.mode.timing_enabled() {
            return;
        }
        let i = phase.index();
        self.cells.counts[i].fetch_add(1, Ordering::Relaxed);
        self.cells.nanos[i].fetch_add(nanos, Ordering::Relaxed);
        if let Some(hists) = self.histograms.as_mut() {
            hists[i].record_nanos(nanos);
        }
    }

    /// Counts one instrumentation event (the `off`-mode cost floor).
    #[inline]
    pub fn event(&self) {
        self.cells.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges the worker's local histograms into the registry. Call once
    /// when the worker exits.
    pub fn finish(self) {
        if let Some(local) = self.histograms {
            if let Some(shared) = self.registry.phase_histograms.lock().unwrap().as_mut() {
                for (mine, theirs) in shared.iter_mut().zip(&local) {
                    mine.merge_from(theirs);
                }
            }
        }
    }
}

/// The assembled end-of-run telemetry: aggregate and per-worker phase
/// totals, merged phase histograms (full mode), and the stall-cause
/// breakdown with per-cause histograms (full mode).
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Mode the run recorded under.
    pub mode: TelemetryMode,
    /// Aggregate per-phase totals across all workers.
    pub totals: PhaseTotals,
    /// Per-worker totals, indexed by worker id.
    pub per_worker: Vec<PhaseTotals>,
    /// Merged per-phase histograms (`Some` only in full mode).
    pub phase_histograms: Option<Vec<LatencyHistogram>>,
    /// Run-total per-cause stall breakdown.
    pub stall: StallBreakdown,
    /// Per-cause stall histograms, one sample per quiesce interval (`Some`
    /// only in full mode).
    pub stall_histograms: Option<Vec<LatencyHistogram>>,
}

impl TelemetryReport {
    /// Renders the report in the Prometheus text exposition format
    /// (counters only; dumped once at drain, not scraped live).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE pimtree_telemetry_events_total counter\n");
        out.push_str(&format!(
            "pimtree_telemetry_events_total {}\n",
            self.totals.events
        ));
        out.push_str("# TYPE pimtree_phase_nanos_total counter\n");
        out.push_str("# TYPE pimtree_phase_count_total counter\n");
        for phase in EnginePhase::ALL {
            out.push_str(&format!(
                "pimtree_phase_nanos_total{{phase=\"{}\"}} {}\n",
                phase.label(),
                self.totals.nanos(phase)
            ));
            out.push_str(&format!(
                "pimtree_phase_count_total{{phase=\"{}\"}} {}\n",
                phase.label(),
                self.totals.count(phase)
            ));
        }
        for (w, totals) in self.per_worker.iter().enumerate() {
            for phase in EnginePhase::ALL {
                out.push_str(&format!(
                    "pimtree_worker_phase_nanos_total{{worker=\"{w}\",phase=\"{}\"}} {}\n",
                    phase.label(),
                    totals.nanos(phase)
                ));
            }
        }
        out.push_str("# TYPE pimtree_stall_nanos_total counter\n");
        out.push_str("# TYPE pimtree_stall_count_total counter\n");
        for cause in StallCause::ALL {
            out.push_str(&format!(
                "pimtree_stall_nanos_total{{cause=\"{}\"}} {}\n",
                cause.label(),
                self.stall.nanos(cause)
            ));
            out.push_str(&format!(
                "pimtree_stall_count_total{{cause=\"{}\"}} {}\n",
                cause.label(),
                self.stall.count(cause)
            ));
        }
        if let Some(hists) = &self.stall_histograms {
            out.push_str("# TYPE pimtree_stall_p99_micros gauge\n");
            for cause in StallCause::ALL {
                let h = &hists[cause.index()];
                if !h.is_empty() {
                    out.push_str(&format!(
                        "pimtree_stall_p99_micros{{cause=\"{}\"}} {:.3}\n",
                        cause.label(),
                        h.p99_micros()
                    ));
                }
            }
        }
        out
    }
}

/// One periodic snapshot of the engine's live gauges, serializable as one
/// JSON Lines record (see `docs/telemetry-schema.json`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugeSample {
    /// Monotone sample sequence number, starting at 0.
    pub seq: u64,
    /// Microseconds since the measured phase started.
    pub elapsed_us: u64,
    /// Tuples currently claimed by workers (quiesce handshake gauge).
    pub in_flight: u64,
    /// Occupied slots per ring shard.
    pub shard_occupancy: Vec<u64>,
    /// R-side tuples inserted but not yet index-visible.
    pub unindexed_r: u64,
    /// S-side tuples inserted but not yet index-visible.
    pub unindexed_s: u64,
    /// Live R-window size (tuples).
    pub window_r: u64,
    /// Live S-window size (tuples).
    pub window_s: u64,
    /// Home-shard claims so far (steal-rate numerator's complement).
    pub local_claims: u64,
    /// Cross-shard (stolen) claims so far.
    pub stolen_claims: u64,
    /// Most recent drift imbalance observed by the monitor (0 when drift
    /// monitoring is off).
    pub drift_imbalance: f64,
    /// Handoff sub-ranges migrated so far in the active incremental plan.
    pub handoff_steps_done: u64,
    /// Total sub-ranges in the active incremental plan (0 when idle).
    pub handoff_steps_total: u64,
    /// Total instrumentation events recorded so far.
    pub events: u64,
}

impl GaugeSample {
    /// Serializes the sample as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let occupancy: Vec<String> = self.shard_occupancy.iter().map(u64::to_string).collect();
        let imbalance = if self.drift_imbalance.is_finite() {
            self.drift_imbalance
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"seq\": {}, \"elapsed_us\": {}, \"in_flight\": {}, ",
                "\"shard_occupancy\": [{}], \"unindexed_r\": {}, \"unindexed_s\": {}, ",
                "\"window_r\": {}, \"window_s\": {}, ",
                "\"local_claims\": {}, \"stolen_claims\": {}, ",
                "\"drift_imbalance\": {:.6}, ",
                "\"handoff_steps_done\": {}, \"handoff_steps_total\": {}, ",
                "\"events\": {}}}"
            ),
            self.seq,
            self.elapsed_us,
            self.in_flight,
            occupancy.join(", "),
            self.unindexed_r,
            self.unindexed_s,
            self.window_r,
            self.window_s,
            self.local_claims,
            self.stolen_claims,
            imbalance,
            self.handoff_steps_done,
            self.handoff_steps_total,
            self.events,
        )
    }
}

/// An append-only JSON Lines file sink for [`GaugeSample`] records.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    lines: u64,
}

impl JsonlSink {
    /// Creates (truncating) the sink file at `path`.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
            lines: 0,
        })
    }

    /// Appends one sample as a JSON line.
    pub fn append(&mut self, sample: &GaugeSample) -> io::Result<()> {
        self.out.write_all(sample.to_json().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and closes the sink.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_partition_the_value_range() {
        // Every value maps into exactly one bucket whose interval contains
        // it, and bucket indices are monotone in the value.
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 7] {
                values.push((1u64 << exp).saturating_add(off << exp.saturating_sub(5)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for &v in &values {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(idx < HIST_BUCKETS, "value {v} -> bucket {idx}");
            assert!(idx >= last, "bucketing must be monotone at {v}");
            last = idx;
        }
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Sub-linear region is exact; midpoints stay within their octave's
        // ~6 % relative error above it.
        for v in [3u64, 100, 1_000, 65_537, 1 << 40] {
            let mid = LatencyHistogram::bucket_mid(LatencyHistogram::bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.07, "value {v}: midpoint {mid}, error {err}");
        }
    }

    /// Nearest-rank percentile over the exact sample, the convention the
    /// histogram approximates.
    fn exact_percentile_micros(samples: &[u64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx] as f64 / 1.0e3
    }

    #[test]
    fn histogram_quantiles_track_the_exact_recorder() {
        let mut samples = Vec::new();
        let mut hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.percentile_micros(0.99), 0.0);
        // A long-tailed sample: mostly microseconds, a few milliseconds.
        for i in 1..=1000u64 {
            let nanos = if i % 100 == 0 { i * 10_000 } else { i * 10 };
            samples.push(nanos);
            hist.record_nanos(nanos);
        }
        assert_eq!(hist.len(), 1000);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let e = exact_percentile_micros(&samples, q);
            let h = hist.percentile_micros(q);
            let tolerance = (e * 0.07).max(0.002);
            assert!(
                (e - h).abs() <= tolerance,
                "q={q}: exact {e}, histogram {h}"
            );
        }
        let exact_mean =
            samples.iter().map(|&n| n as f64).sum::<f64>() / samples.len() as f64 / 1.0e3;
        assert!((hist.mean_micros() - exact_mean).abs() < 1e-6);
        let exact_max = *samples.iter().max().unwrap() as f64 / 1.0e3;
        assert_eq!(hist.max_micros(), exact_max, "max is exact");
        assert_eq!(hist.percentile_micros(1.0), hist.max_micros());
        // p-helpers agree with the generic quantile.
        assert_eq!(hist.p50_micros(), hist.percentile_micros(0.5));
        assert_eq!(hist.p99_micros(), hist.percentile_micros(0.99));
        assert_eq!(hist.p999_micros(), hist.percentile_micros(0.999));
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..500u64 {
            let nanos = i * 997;
            all.record_nanos(nanos);
            if i % 2 == 0 {
                a.record_nanos(nanos);
            } else {
                b.record_nanos(nanos);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.len(), all.len());
        assert_eq!(a.max_micros(), all.max_micros());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.percentile_micros(q), all.percentile_micros(q));
        }
    }

    #[test]
    fn telemetry_mode_parses_and_displays() {
        for (s, m) in [
            ("off", TelemetryMode::Off),
            ("counters", TelemetryMode::Counters),
            ("full", TelemetryMode::Full),
        ] {
            assert_eq!(s.parse::<TelemetryMode>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("verbose".parse::<TelemetryMode>().is_err());
        assert_eq!(TelemetryMode::default(), TelemetryMode::Off);
        assert!(!TelemetryMode::Off.timing_enabled());
        assert!(TelemetryMode::Counters.timing_enabled());
        assert!(!TelemetryMode::Counters.histograms_enabled());
        assert!(TelemetryMode::Full.histograms_enabled());
    }

    #[test]
    fn phase_and_cause_indices_are_dense_and_labels_distinct() {
        let mut seen = [false; PHASE_COUNT];
        for p in EnginePhase::ALL {
            assert!(!seen[p.index()], "duplicate index for {p:?}");
            seen[p.index()] = true;
        }
        let labels: std::collections::HashSet<_> =
            EnginePhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PHASE_COUNT);
        let mut seen = [false; STALL_CAUSE_COUNT];
        for c in StallCause::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        let labels: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), STALL_CAUSE_COUNT);
    }

    #[test]
    fn stall_breakdown_records_and_merges() {
        let mut a = StallBreakdown::new();
        assert!(a.is_empty());
        a.record(StallCause::GateClose, 100);
        a.record(StallCause::Rebuild, 400);
        let mut b = StallBreakdown::new();
        b.record(StallCause::GateClose, 50);
        b.record(StallCause::RouterSwap, 25);
        a.merge_from(&b);
        assert_eq!(a.nanos(StallCause::GateClose), 150);
        assert_eq!(a.count(StallCause::GateClose), 2);
        assert_eq!(a.nanos(StallCause::Rebuild), 400);
        assert_eq!(a.nanos(StallCause::RouterSwap), 25);
        assert_eq!(a.total_nanos(), 575);
        assert!(!a.is_empty());
    }

    #[test]
    fn stall_lap_partitions_the_interval_exactly() {
        let started = Instant::now();
        let mut lap = StallLap::start();
        std::hint::black_box((0..1000).sum::<u64>());
        lap.lap(StallCause::GateClose);
        std::hint::black_box((0..1000).sum::<u64>());
        lap.lap_split(
            &[(StallCause::WindowSnapshot, 1), (StallCause::IndexSwap, 1)],
            StallCause::Rebuild,
        );
        lap.lap(StallCause::RouterSwap);
        let upper = started.elapsed().as_nanos() as u64;
        let b = lap.finish();
        // The segments tile the interval: every cause the laps touched is
        // counted once, and the sum is bounded by the outer elapsed time.
        assert_eq!(b.count(StallCause::GateClose), 1);
        assert_eq!(b.count(StallCause::WindowSnapshot), 1);
        assert_eq!(b.count(StallCause::IndexSwap), 1);
        assert_eq!(b.count(StallCause::Rebuild), 1);
        assert_eq!(b.count(StallCause::RouterSwap), 1);
        assert_eq!(b.count(StallCause::InFlightDrain), 0);
        assert!(b.total_nanos() <= upper);
        assert_eq!(
            b.nanos(StallCause::WindowSnapshot) + b.nanos(StallCause::IndexSwap),
            2,
            "externally measured sub-phases pass through verbatim"
        );
    }

    #[test]
    fn stall_lap_split_scales_down_overshooting_subphases() {
        let mut lap = StallLap::start();
        // Claimed sub-phase nanos far exceed any real elapsed segment.
        let seg = lap.lap_split(
            &[
                (StallCause::WindowSnapshot, u64::MAX / 4),
                (StallCause::IndexSwap, u64::MAX / 4),
            ],
            StallCause::Rebuild,
        );
        let b = lap.finish();
        assert_eq!(b.total_nanos(), seg, "scaling preserves the exact total");
    }

    #[test]
    fn recorder_counts_phases_and_report_aggregates_workers() {
        let reg = TelemetryRegistry::new(TelemetryMode::Full, 2);
        let mut r0 = reg.recorder(0);
        let mut r1 = reg.recorder(1);
        r0.record_nanos(EnginePhase::Probe, 100);
        r0.record_nanos(EnginePhase::Probe, 300);
        r0.record_nanos(EnginePhase::Claim, 50);
        r1.record_nanos(EnginePhase::Merge, 1_000);
        r0.finish();
        r1.finish();
        let report = reg.report();
        assert_eq!(report.totals.count(EnginePhase::Probe), 2);
        assert_eq!(report.totals.nanos(EnginePhase::Probe), 400);
        assert_eq!(report.totals.nanos(EnginePhase::Merge), 1_000);
        assert_eq!(report.totals.events, 4);
        assert_eq!(report.per_worker.len(), 2);
        assert_eq!(report.per_worker[0].count(EnginePhase::Probe), 2);
        assert_eq!(report.per_worker[1].count(EnginePhase::Merge), 1);
        let hists = report.phase_histograms.as_ref().unwrap();
        assert_eq!(hists[EnginePhase::Probe.index()].len(), 2);
        assert_eq!(hists[EnginePhase::Merge.index()].len(), 1);
        // Aggregate equals the sum of per-worker snapshots.
        let mut sum = PhaseTotals::default();
        for w in 0..reg.workers() {
            sum.merge_from(&reg.worker_totals(w));
        }
        assert_eq!(sum, reg.totals());
    }

    #[test]
    fn off_mode_records_only_events() {
        let reg = TelemetryRegistry::new(TelemetryMode::Off, 1);
        let mut r = reg.recorder(0);
        assert!(r.clock().is_none());
        r.commit(EnginePhase::Probe, None);
        r.record_nanos(EnginePhase::Merge, 500);
        r.finish();
        assert_eq!(reg.events(), 2);
        let t = reg.totals();
        assert_eq!(t.count(EnginePhase::Probe), 0);
        assert_eq!(t.nanos(EnginePhase::Merge), 0);
        assert!(reg.report().phase_histograms.is_none());
    }

    #[test]
    fn registry_reset_clears_everything() {
        let reg = TelemetryRegistry::new(TelemetryMode::Full, 1);
        let mut r = reg.recorder(0);
        r.record_nanos(EnginePhase::Ingest, 123);
        r.finish();
        let mut epoch = StallBreakdown::new();
        epoch.record(StallCause::GateClose, 77);
        reg.record_stall(&epoch);
        reg.reset();
        assert_eq!(reg.events(), 0);
        assert_eq!(reg.totals(), PhaseTotals::default());
        assert!(reg.stall_breakdown().is_empty());
        let report = reg.report();
        assert!(report.phase_histograms.unwrap()[EnginePhase::Ingest.index()].is_empty());
        assert!(report.stall_histograms.unwrap()[StallCause::GateClose.index()].is_empty());
    }

    #[test]
    fn stall_histograms_record_one_sample_per_epoch() {
        let reg = TelemetryRegistry::new(TelemetryMode::Full, 1);
        for _ in 0..3 {
            let mut epoch = StallBreakdown::new();
            epoch.record(StallCause::GateClose, 1_000);
            epoch.record(StallCause::Rebuild, 9_000);
            reg.record_stall(&epoch);
        }
        let report = reg.report();
        assert_eq!(report.stall.total_nanos(), 30_000);
        let hists = report.stall_histograms.as_ref().unwrap();
        assert_eq!(hists[StallCause::GateClose.index()].len(), 3);
        assert_eq!(hists[StallCause::Rebuild.index()].len(), 3);
        assert_eq!(hists[StallCause::IndexSwap.index()].len(), 0);
    }

    /// The concurrent no-tear property: while workers hammer their
    /// recorders, an aggregate snapshot taken between two fence snapshots
    /// is bounded by them (monotone within a sampling round), and the sum
    /// of per-worker snapshots equals an aggregate taken around them the
    /// same way.
    #[test]
    fn concurrent_snapshots_never_tear() {
        const WORKERS: usize = 4;
        const OPS: u64 = 20_000;
        let reg = TelemetryRegistry::new(TelemetryMode::Counters, WORKERS);
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let reg = &reg;
                scope.spawn(move || {
                    let mut r = reg.recorder(w);
                    for i in 0..OPS {
                        r.record_nanos(EnginePhase::ALL[(i % 5) as usize], 10);
                    }
                    r.finish();
                });
            }
            // Sampler: snapshot repeatedly while workers record.
            for _ in 0..200 {
                let before = reg.totals();
                let mut per_worker_sum = PhaseTotals::default();
                for w in 0..WORKERS {
                    per_worker_sum.merge_from(&reg.worker_totals(w));
                }
                let after = reg.totals();
                assert!(
                    before.events <= per_worker_sum.events && per_worker_sum.events <= after.events,
                    "per-worker sum must sit between two aggregate fences: {} <= {} <= {}",
                    before.events,
                    per_worker_sum.events,
                    after.events
                );
                for phase in EnginePhase::ALL {
                    assert!(before.count(phase) <= per_worker_sum.count(phase));
                    assert!(per_worker_sum.count(phase) <= after.count(phase));
                    assert!(before.nanos(phase) <= per_worker_sum.nanos(phase));
                    assert!(per_worker_sum.nanos(phase) <= after.nanos(phase));
                }
            }
        });
        // Quiesced: the aggregate is exact.
        let t = reg.totals();
        assert_eq!(t.events, WORKERS as u64 * OPS);
        assert_eq!(t.total_nanos(), WORKERS as u64 * OPS * 10);
        for phase in EnginePhase::ALL {
            assert_eq!(t.count(phase), WORKERS as u64 * OPS / 5);
        }
    }

    #[test]
    fn gauge_sample_serializes_as_one_json_object() {
        let sample = GaugeSample {
            seq: 7,
            elapsed_us: 1234,
            in_flight: 3,
            shard_occupancy: vec![10, 20, 30],
            unindexed_r: 4,
            unindexed_s: 5,
            window_r: 100,
            window_s: 101,
            local_claims: 50,
            stolen_claims: 2,
            drift_imbalance: 0.25,
            handoff_steps_done: 1,
            handoff_steps_total: 4,
            events: 999,
        };
        let json = sample.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"seq\": 7"));
        assert!(json.contains("\"shard_occupancy\": [10, 20, 30]"));
        assert!(json.contains("\"drift_imbalance\": 0.250000"));
        assert!(json.contains("\"events\": 999"));
        assert!(!json.contains('\n'));
        // Non-finite gauges must not produce invalid JSON.
        let bad = GaugeSample {
            drift_imbalance: f64::NAN,
            ..GaugeSample::default()
        };
        assert!(bad.to_json().contains("\"drift_imbalance\": 0.000000"));
    }

    #[test]
    fn jsonl_sink_appends_lines() {
        let path = std::env::temp_dir().join("pimtree_telemetry_sink_test.jsonl");
        let path = path.to_str().unwrap();
        let mut sink = JsonlSink::create(path).unwrap();
        for seq in 0..3 {
            sink.append(&GaugeSample {
                seq,
                shard_occupancy: vec![seq],
                ..GaugeSample::default()
            })
            .unwrap();
        }
        assert_eq!(sink.lines(), 3);
        sink.finish().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\": {i}")));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prometheus_rendering_contains_all_series() {
        let reg = TelemetryRegistry::new(TelemetryMode::Full, 2);
        let mut r = reg.recorder(0);
        r.record_nanos(EnginePhase::Probe, 500);
        r.finish();
        let mut epoch = StallBreakdown::new();
        epoch.record(StallCause::GateClose, 200);
        reg.record_stall(&epoch);
        let text = reg.report().to_prometheus();
        assert!(text.contains("pimtree_telemetry_events_total 1"));
        assert!(text.contains("pimtree_phase_nanos_total{phase=\"probe\"} 500"));
        assert!(text.contains("pimtree_worker_phase_nanos_total{worker=\"0\",phase=\"probe\"} 500"));
        assert!(text.contains("pimtree_worker_phase_nanos_total{worker=\"1\",phase=\"probe\"} 0"));
        assert!(text.contains("pimtree_stall_nanos_total{cause=\"gate_close\"} 200"));
        assert!(text.contains("pimtree_stall_count_total{cause=\"gate_close\"} 1"));
        assert!(text.contains("pimtree_stall_p99_micros{cause=\"gate_close\"}"));
        for phase in EnginePhase::ALL {
            assert!(text.contains(&format!("phase=\"{}\"", phase.label())));
        }
        for cause in StallCause::ALL {
            assert!(text.contains(&format!(
                "pimtree_stall_nanos_total{{cause=\"{}\"}}",
                cause.label()
            )));
        }
    }
}
