//! A concurrent, general-purpose ordered index used as the multithreaded
//! baseline of the evaluation.
//!
//! The paper compares its PIM-Tree against Microsoft's Bw-Tree, a latch-free
//! B-Tree whose logical nodes are reached through a mapping table and whose
//! updates are prepended to per-node *delta chains* that are periodically
//! consolidated. What the evaluation relies on is the Bw-Tree's concurrency
//! *profile*: synchronisation happens per logical node, so contention is high
//! when the tree is small (threads collide on the few nodes that exist) and
//! fades as the tree grows.
//!
//! This crate implements that profile with safe Rust primitives (documented as
//! a documented substitution):
//!
//! * a read-mostly **routing table** (the analogue of the mapping table plus
//!   inner nodes) maps key ranges to logical leaf pages and is only written by
//!   structure-modification operations (splits);
//! * each **logical leaf page** holds a consolidated, sorted base array plus a
//!   *delta list* of insert/delete records, guarded by a short per-page latch;
//! * when a page's delta list grows past a threshold it is **consolidated**,
//!   and pages that outgrow their capacity are **split** under an exclusive
//!   routing-table lock.
//!
//! The resulting index supports fully concurrent inserts, deletes and range
//! scans from any number of threads through `&self`.

pub mod index;
pub mod page;

pub use index::{BwTreeIndex, BwTreeStats};
pub use page::{DeltaOp, LeafPage};

/// Default maximum number of consolidated entries per leaf page.
pub const DEFAULT_LEAF_CAPACITY: usize = 256;

/// Default number of delta records that triggers consolidation.
pub const DEFAULT_CONSOLIDATION_THRESHOLD: usize = 16;
