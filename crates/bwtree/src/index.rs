//! The concurrent index: routing table over logical leaf pages.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use pimtree_btree::Entry;
use pimtree_common::{Key, KeyRange, Seq};

use crate::page::LeafPage;
use crate::{DEFAULT_CONSOLIDATION_THRESHOLD, DEFAULT_LEAF_CAPACITY};

#[derive(Debug)]
struct Slot {
    /// Smallest entry this page is responsible for (inclusive).
    lower: Entry,
    page: Arc<Mutex<LeafPage>>,
}

/// Structural statistics of a [`BwTreeIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BwTreeStats {
    /// Number of logical leaf pages.
    pub pages: usize,
    /// Live entries.
    pub entries: usize,
    /// Pending (unconsolidated) delta records across all pages.
    pub pending_deltas: usize,
    /// Approximate payload bytes.
    pub total_bytes: usize,
}

/// A concurrent ordered index over `(key, seq)` entries.
///
/// All operations take `&self` and may be called from any number of threads.
/// See the crate-level documentation for the design and for how it relates to
/// the Bw-Tree used by the paper.
#[derive(Debug)]
pub struct BwTreeIndex {
    routing: RwLock<Vec<Slot>>,
    len: AtomicUsize,
    leaf_capacity: usize,
    consolidation_threshold: usize,
}

impl Default for BwTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BwTreeIndex {
    /// Creates an empty index with default page capacity and consolidation
    /// threshold.
    pub fn new() -> Self {
        Self::with_parameters(DEFAULT_LEAF_CAPACITY, DEFAULT_CONSOLIDATION_THRESHOLD)
    }

    /// Creates an empty index with explicit page capacity and consolidation
    /// threshold.
    pub fn with_parameters(leaf_capacity: usize, consolidation_threshold: usize) -> Self {
        assert!(leaf_capacity >= 8, "leaf capacity must be at least 8");
        assert!(
            consolidation_threshold >= 1,
            "consolidation threshold must be at least 1"
        );
        BwTreeIndex {
            routing: RwLock::new(vec![Slot {
                lower: Entry::new(Key::MIN, 0),
                page: Arc::new(Mutex::new(LeafPage::new())),
            }]),
            len: AtomicUsize::new(0),
            leaf_capacity,
            consolidation_threshold,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn route(slots: &[Slot], target: Entry) -> usize {
        // Last slot whose lower bound is <= target. Slot 0 covers Key::MIN, so
        // the partition point is always >= 1.
        slots
            .partition_point(|s| s.lower <= target)
            .saturating_sub(1)
    }

    /// Inserts an entry.
    pub fn insert(&self, key: Key, seq: Seq) {
        let entry = Entry::new(key, seq);
        let overflowed_page = {
            let routing = self.routing.read();
            let idx = Self::route(&routing, entry);
            let page_arc = Arc::clone(&routing[idx].page);
            let mut page = page_arc.lock();
            page.insert(entry);
            self.len.fetch_add(1, Ordering::Relaxed);
            if page.delta_len() >= self.consolidation_threshold {
                let consolidated_len = page.consolidate();
                if consolidated_len > self.leaf_capacity {
                    drop(page);
                    Some(page_arc)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(page_arc) = overflowed_page {
            self.split_page(&page_arc);
        }
    }

    /// Removes the exact `(key, seq)` entry, returning whether it was present.
    pub fn remove(&self, key: Key, seq: Seq) -> bool {
        let entry = Entry::new(key, seq);
        let routing = self.routing.read();
        let idx = Self::route(&routing, entry);
        let mut page = routing[idx].page.lock();
        let removed = page.delete(entry);
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        if page.delta_len() >= self.consolidation_threshold {
            page.consolidate();
        }
        removed
    }

    /// Whether the exact `(key, seq)` entry is present.
    pub fn contains(&self, key: Key, seq: Seq) -> bool {
        let entry = Entry::new(key, seq);
        let routing = self.routing.read();
        let idx = Self::route(&routing, entry);
        let page = routing[idx].page.lock();
        page.contains(entry)
    }

    /// Calls `f` for every live entry whose key lies in `range`. Entries
    /// within one page are delivered in ascending order; pages are visited in
    /// ascending key order.
    pub fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, mut f: F) {
        let routing = self.routing.read();
        let start = Self::route(&routing, Entry::min_for_key(range.lo));
        for slot in routing[start..].iter() {
            if slot.lower.key > range.hi {
                break;
            }
            let page = slot.page.lock();
            for e in page.range(range) {
                f(e);
            }
        }
    }

    /// Collects every live entry whose key lies in `range`.
    pub fn range_collect(&self, range: KeyRange) -> Vec<Entry> {
        let mut out = Vec::new();
        self.range_for_each(range, |e| out.push(e));
        out
    }

    fn split_page(&self, page_arc: &Arc<Mutex<LeafPage>>) {
        let mut routing = self.routing.write();
        let Some(mut idx) = routing.iter().position(|s| Arc::ptr_eq(&s.page, page_arc)) else {
            return;
        };
        loop {
            let (sep, upper) = {
                let mut page = routing[idx].page.lock();
                page.consolidate();
                if page.base.len() <= self.leaf_capacity {
                    return;
                }
                page.split()
            };
            routing.insert(
                idx + 1,
                Slot {
                    lower: sep,
                    page: Arc::new(Mutex::new(upper)),
                },
            );
            // The upper half could itself still be oversized if the page grew
            // far past its capacity; keep splitting the larger half.
            idx += 1;
        }
    }

    /// Number of logical leaf pages (an indicator of how much concurrency the
    /// structure can sustain).
    pub fn page_count(&self) -> usize {
        self.routing.read().len()
    }

    /// Structural statistics.
    pub fn stats(&self) -> BwTreeStats {
        let routing = self.routing.read();
        let mut stats = BwTreeStats {
            pages: routing.len(),
            entries: self.len(),
            ..Default::default()
        };
        for slot in routing.iter() {
            let page = slot.page.lock();
            stats.pending_deltas += page.delta_len();
            stats.total_bytes += page.footprint_bytes();
        }
        stats
    }

    /// Verifies routing invariants (sorted lower bounds, every entry within
    /// its page's range). For tests.
    pub fn check_invariants(&self) {
        let routing = self.routing.read();
        assert!(!routing.is_empty());
        assert_eq!(
            routing[0].lower,
            Entry::new(Key::MIN, 0),
            "first slot covers the key domain"
        );
        for w in routing.windows(2) {
            assert!(w[0].lower < w[1].lower, "routing lower bounds out of order");
        }
        let mut counted = 0usize;
        for (i, slot) in routing.iter().enumerate() {
            let mut page = slot.page.lock();
            page.consolidate();
            let upper = routing.get(i + 1).map(|s| s.lower);
            for &e in &page.base {
                assert!(
                    e >= slot.lower,
                    "entry {e:?} below page lower bound {:?}",
                    slot.lower
                );
                if let Some(up) = upper {
                    assert!(e < up, "entry {e:?} not below next page bound {up:?}");
                }
            }
            counted += page.base.len();
        }
        assert_eq!(counted, self.len(), "entry count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index() {
        let idx = BwTreeIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.page_count(), 1);
        assert!(!idx.contains(1, 1));
        assert!(!idx.remove(1, 1));
        assert!(idx.range_collect(KeyRange::new(0, 100)).is_empty());
        idx.check_invariants();
    }

    #[test]
    fn insert_remove_contains_single_threaded() {
        let idx = BwTreeIndex::with_parameters(16, 4);
        for i in 0..1000i64 {
            idx.insert((i * 31) % 500, i as u64);
        }
        assert_eq!(idx.len(), 1000);
        assert!(idx.page_count() > 10, "tree must have split many times");
        idx.check_invariants();
        assert!(idx.contains(31, 1), "key of seq 1 is (1 * 31) % 500 = 31");
        for i in 0..1000i64 {
            assert!(idx.remove((i * 31) % 500, i as u64), "remove {i}");
        }
        assert!(idx.is_empty());
        idx.check_invariants();
    }

    #[test]
    fn range_scan_matches_reference() {
        let idx = BwTreeIndex::with_parameters(32, 8);
        let mut reference = Vec::new();
        for i in 0..5000i64 {
            let key = (i * 7919) % 10_000;
            idx.insert(key, i as u64);
            reference.push(Entry::new(key, i as u64));
        }
        reference.sort();
        let range = KeyRange::new(2000, 2500);
        let mut got = idx.range_collect(range);
        got.sort();
        let expected: Vec<Entry> = reference
            .iter()
            .copied()
            .filter(|e| range.contains(e.key))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_keys_distinct_seqs() {
        let idx = BwTreeIndex::with_parameters(16, 4);
        for s in 0..200u64 {
            idx.insert(7, s);
        }
        assert_eq!(idx.len(), 200);
        assert_eq!(idx.range_collect(KeyRange::point(7)).len(), 200);
        assert!(idx.remove(7, 100));
        assert!(!idx.remove(7, 100));
        assert_eq!(idx.len(), 199);
        idx.check_invariants();
    }

    #[test]
    fn sliding_window_pattern() {
        let idx = BwTreeIndex::with_parameters(64, 8);
        let w = 512i64;
        let key_of = |i: i64| (i * 2654435761u32 as i64) % 8192;
        for i in 0..w {
            idx.insert(key_of(i), i as u64);
        }
        for i in w..w * 8 {
            idx.insert(key_of(i), i as u64);
            assert!(idx.remove(key_of(i - w), (i - w) as u64));
            assert_eq!(idx.len(), w as usize);
        }
        idx.check_invariants();
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let idx = Arc::new(BwTreeIndex::with_parameters(64, 8));
        let threads = 8;
        let per_thread = 5_000i64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = (t * per_thread + i) * 17 % 100_000;
                    idx.insert(key, (t * per_thread + i) as u64);
                    if i % 7 == 0 {
                        // Interleave some range scans to exercise shared reads.
                        let _ = idx.range_collect(KeyRange::new(key - 50, key + 50));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), (threads * per_thread) as usize);
        idx.check_invariants();
    }

    #[test]
    fn concurrent_sliding_window_mix() {
        // Each thread owns a disjoint seq range and performs insert-then-
        // remove cycles while others scan; the index must end up empty.
        let idx = Arc::new(BwTreeIndex::with_parameters(32, 4));
        let threads = 6;
        let per_thread = 2_000i64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let seq = (t * per_thread + i) as u64;
                    let key = (i * 13) % 5_000;
                    idx.insert(key, seq);
                    let _ = idx.range_collect(KeyRange::new(key - 2, key + 2));
                    assert!(idx.remove(key, seq));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(idx.is_empty(), "len = {}", idx.len());
        idx.check_invariants();
    }

    #[test]
    fn stats_reflect_structure() {
        let idx = BwTreeIndex::with_parameters(16, 4);
        for i in 0..500i64 {
            idx.insert(i, i as u64);
        }
        let s = idx.stats();
        assert_eq!(s.entries, 500);
        assert!(s.pages > 1);
        assert!(s.total_bytes >= 500 * std::mem::size_of::<Entry>() / 2);
    }

    #[test]
    #[should_panic(expected = "leaf capacity")]
    fn tiny_leaf_capacity_rejected() {
        let _ = BwTreeIndex::with_parameters(2, 4);
    }
}
