//! Logical leaf pages with delta lists.

use pimtree_btree::Entry;
use pimtree_common::KeyRange;

/// One delta record, logically prepended to a page by an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// A newly inserted entry.
    Insert(Entry),
    /// A deleted entry (tombstone).
    Delete(Entry),
}

/// A logical leaf page: a consolidated sorted base array plus a delta list of
/// not-yet-consolidated updates, applied in arrival order.
#[derive(Debug, Default)]
pub struct LeafPage {
    /// Consolidated entries, sorted by `(key, seq)`.
    pub base: Vec<Entry>,
    /// Pending updates in arrival order.
    pub deltas: Vec<DeltaOp>,
}

impl LeafPage {
    /// Creates an empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a page from a consolidated base array (must be sorted).
    pub fn from_base(base: Vec<Entry>) -> Self {
        debug_assert!(base.windows(2).all(|w| w[0] <= w[1]));
        LeafPage {
            base,
            deltas: Vec::new(),
        }
    }

    /// Number of delta records pending consolidation.
    pub fn delta_len(&self) -> usize {
        self.deltas.len()
    }

    /// Logical number of live entries (base plus inserts minus deletes).
    pub fn live_len(&self) -> usize {
        let mut len = self.base.len() as isize;
        for d in &self.deltas {
            match d {
                DeltaOp::Insert(_) => len += 1,
                DeltaOp::Delete(_) => len -= 1,
            }
        }
        len.max(0) as usize
    }

    /// Whether the live view of the page contains `entry`.
    pub fn contains(&self, entry: Entry) -> bool {
        let mut present = self.base.binary_search(&entry).is_ok();
        for d in &self.deltas {
            match *d {
                DeltaOp::Insert(e) if e == entry => present = true,
                DeltaOp::Delete(e) if e == entry => present = false,
                _ => {}
            }
        }
        present
    }

    /// Appends an insert delta.
    pub fn insert(&mut self, entry: Entry) {
        self.deltas.push(DeltaOp::Insert(entry));
    }

    /// Appends a delete delta if the entry is live; returns whether it was.
    pub fn delete(&mut self, entry: Entry) -> bool {
        if self.contains(entry) {
            self.deltas.push(DeltaOp::Delete(entry));
            true
        } else {
            false
        }
    }

    /// Returns the live entries whose key falls in `range`, in ascending
    /// order.
    pub fn range(&self, range: KeyRange) -> Vec<Entry> {
        let lo = Entry::min_for_key(range.lo);
        let start = self.base.partition_point(|&e| e < lo);
        let mut out: Vec<Entry> = self.base[start..]
            .iter()
            .take_while(|e| e.key <= range.hi)
            .copied()
            .collect();
        for d in &self.deltas {
            match *d {
                DeltaOp::Insert(e) if range.contains(e.key) => out.push(e),
                DeltaOp::Delete(e) if range.contains(e.key) => {
                    if let Some(pos) = out.iter().position(|&x| x == e) {
                        out.swap_remove(pos);
                    }
                }
                _ => {}
            }
        }
        out.sort_unstable();
        out
    }

    /// Merges the delta list into the base array, leaving the delta list
    /// empty. Returns the new consolidated length.
    pub fn consolidate(&mut self) -> usize {
        if self.deltas.is_empty() {
            return self.base.len();
        }
        let deltas = std::mem::take(&mut self.deltas);
        for d in deltas {
            match d {
                DeltaOp::Insert(e) => {
                    let pos = self.base.partition_point(|&x| x <= e);
                    self.base.insert(pos, e);
                }
                DeltaOp::Delete(e) => {
                    if let Ok(pos) = self.base.binary_search(&e) {
                        self.base.remove(pos);
                    }
                }
            }
        }
        self.base.len()
    }

    /// Splits a consolidated page in half, returning the separator (the first
    /// entry of the upper half) and the upper-half page.
    ///
    /// The page must have been consolidated (no pending deltas).
    pub fn split(&mut self) -> (Entry, LeafPage) {
        assert!(self.deltas.is_empty(), "split requires a consolidated page");
        assert!(
            self.base.len() >= 2,
            "cannot split a page with fewer than 2 entries"
        );
        let mid = self.base.len() / 2;
        let upper = self.base.split_off(mid);
        let sep = upper[0];
        (sep, LeafPage::from_base(upper))
    }

    /// Approximate payload bytes (base + deltas).
    pub fn footprint_bytes(&self) -> usize {
        self.base.len() * std::mem::size_of::<Entry>()
            + self.deltas.len() * std::mem::size_of::<DeltaOp>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: i64, s: u64) -> Entry {
        Entry::new(k, s)
    }

    #[test]
    fn insert_delete_contains_through_deltas() {
        let mut p = LeafPage::from_base(vec![e(1, 0), e(5, 0)]);
        assert!(p.contains(e(1, 0)));
        assert!(!p.contains(e(3, 0)));
        p.insert(e(3, 0));
        assert!(p.contains(e(3, 0)));
        assert!(p.delete(e(1, 0)));
        assert!(!p.contains(e(1, 0)));
        assert!(!p.delete(e(1, 0)), "double delete reports absence");
        assert!(p.delete(e(3, 0)), "delta-inserted entry can be deleted");
        assert!(!p.contains(e(3, 0)));
        assert_eq!(p.live_len(), 1);
    }

    #[test]
    fn range_merges_base_and_deltas() {
        let mut p = LeafPage::from_base(vec![e(10, 0), e(20, 0), e(30, 0)]);
        p.insert(e(15, 1));
        p.insert(e(40, 1));
        p.delete(e(20, 0));
        let got = p.range(KeyRange::new(10, 35));
        assert_eq!(got, vec![e(10, 0), e(15, 1), e(30, 0)]);
        let all = p.range(KeyRange::new(i64::MIN, i64::MAX));
        assert_eq!(all, vec![e(10, 0), e(15, 1), e(30, 0), e(40, 1)]);
    }

    #[test]
    fn consolidate_matches_live_view() {
        let mut p = LeafPage::from_base(vec![e(1, 0), e(2, 0), e(3, 0)]);
        p.insert(e(0, 9));
        p.insert(e(2, 5));
        p.delete(e(3, 0));
        let live_before = p.range(KeyRange::new(i64::MIN, i64::MAX));
        let n = p.consolidate();
        assert_eq!(n, 4);
        assert!(p.deltas.is_empty());
        assert_eq!(p.base, live_before);
        assert_eq!(p.live_len(), 4);
    }

    #[test]
    fn consolidating_an_empty_delta_list_is_a_noop() {
        let mut p = LeafPage::from_base(vec![e(1, 0)]);
        assert_eq!(p.consolidate(), 1);
    }

    #[test]
    fn split_divides_entries() {
        let mut p = LeafPage::from_base((0..10).map(|i| e(i, 0)).collect());
        let (sep, upper) = p.split();
        assert_eq!(sep, e(5, 0));
        assert_eq!(p.base.len(), 5);
        assert_eq!(upper.base.len(), 5);
        assert!(p.base.iter().all(|&x| x < sep));
        assert!(upper.base.iter().all(|&x| x >= sep));
    }

    #[test]
    #[should_panic(expected = "consolidated")]
    fn split_requires_consolidation() {
        let mut p = LeafPage::from_base(vec![e(1, 0), e(2, 0)]);
        p.insert(e(3, 0));
        let _ = p.split();
    }
}
