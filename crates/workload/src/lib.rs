//! Workload generation for the stream-join evaluation.
//!
//! The paper's experiments (§5) join two integer streams under a band
//! predicate whose half-width `diff` is calibrated so that the *match rate*
//! (`σ_s = w · σ`) stays constant across window sizes. This crate provides:
//!
//! * [`dist`] — key-value distributions: uniform, Gaussian (Box–Muller) and
//!   Gamma (Marsaglia–Tsang), implemented locally so the workspace does not
//!   need `rand_distr`;
//! * [`drift`] — the three-phase *shifting Gaussian* workload of Figures
//!   13a/13b, parameterised by the drift speed `r`;
//! * [`stream`] — interleaved two-stream tuple sequences with configurable
//!   input-rate asymmetry (Figure 11b);
//! * [`calibrate`] — empirical calibration of the band half-width `diff` to a
//!   target match rate for any distribution (and the closed form for the
//!   uniform case).

pub mod calibrate;
pub mod dist;
pub mod drift;
pub mod stream;

pub use calibrate::{calibrate_diff, uniform_diff_for_match_rate};
pub use dist::{KeyDistribution, DEFAULT_KEY_SCALE};
pub use drift::ShiftingGaussian;
pub use stream::{StreamGenerator, StreamMix};
