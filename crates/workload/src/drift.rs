//! The three-phase shifting-Gaussian workload of Figures 13a/13b.
//!
//! Phase 1 draws keys from `N(0.5, 0.125)`; during phase 2 the mean drifts
//! linearly from `0.5` to `r + 0.5`; phase 3 draws from the shifted
//! distribution `N(r + 0.5, 0.125)`. The drift speed `r` controls how quickly
//! the PIM-Tree's partition ranges become stale, which is what the experiment
//! stresses.

use rand::Rng;

use pimtree_common::Key;

use crate::dist::{sample_standard_normal, DEFAULT_KEY_SCALE};

/// Generator of the shifting-Gaussian key sequence.
#[derive(Debug, Clone, Copy)]
pub struct ShiftingGaussian {
    /// Drift distance `r` (the paper sweeps 0.0 to 1.0).
    pub r: f64,
    /// Standard deviation in the unit domain (paper: 0.125).
    pub std_dev: f64,
    /// Tuples in phase 1 (stationary at mean 0.5).
    pub phase1: usize,
    /// Tuples in phase 2 (linear drift).
    pub phase2: usize,
    /// Tuples in phase 3 (stationary at mean `r + 0.5`).
    pub phase3: usize,
    /// Multiplier from the unit domain to the key domain.
    pub scale: f64,
}

impl ShiftingGaussian {
    /// The paper's configuration: phases of 4 Mi, 10 Mi and 4 Mi tuples
    /// (`Mi` = 2^20) with σ = 0.125.
    pub fn paper(r: f64) -> Self {
        ShiftingGaussian {
            r,
            std_dev: 0.125,
            phase1: 4 << 20,
            phase2: 10 << 20,
            phase3: 4 << 20,
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// A scaled-down configuration with the same structure, for tests and for
    /// benchmark runs that must finish quickly.
    pub fn scaled(r: f64, phase1: usize, phase2: usize, phase3: usize) -> Self {
        ShiftingGaussian {
            r,
            std_dev: 0.125,
            phase1,
            phase2,
            phase3,
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// Total number of tuples across the three phases.
    pub fn total(&self) -> usize {
        self.phase1 + self.phase2 + self.phase3
    }

    /// Mean of the distribution (in the unit domain) at tuple index `i`.
    pub fn mean_at(&self, i: usize) -> f64 {
        if i < self.phase1 {
            0.5
        } else if i < self.phase1 + self.phase2 {
            let progress = (i - self.phase1) as f64 / self.phase2.max(1) as f64;
            0.5 + self.r * progress
        } else {
            0.5 + self.r
        }
    }

    /// Draws the key of tuple `i`.
    pub fn sample_at<R: Rng + ?Sized>(&self, rng: &mut R, i: usize) -> Key {
        let unit = self.mean_at(i) + self.std_dev * sample_standard_normal(rng);
        (unit.clamp(-1.0, 2.5) * self.scale) as Key
    }

    /// Generates the full key sequence.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Key> {
        (0..self.total()).map(|i| self.sample_at(rng, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_follows_three_phases() {
        let g = ShiftingGaussian::scaled(1.0, 100, 200, 100);
        assert_eq!(g.total(), 400);
        assert!((g.mean_at(0) - 0.5).abs() < 1e-12);
        assert!((g.mean_at(99) - 0.5).abs() < 1e-12);
        assert!(
            (g.mean_at(200) - 1.0).abs() < 1e-12,
            "midway through the drift"
        );
        assert!((g.mean_at(399) - 1.5).abs() < 1e-12);
        assert!(
            (g.mean_at(10_000) - 1.5).abs() < 1e-12,
            "past the end stays at the target"
        );
    }

    #[test]
    fn zero_drift_is_stationary() {
        let g = ShiftingGaussian::scaled(0.0, 10, 10, 10);
        for i in 0..30 {
            assert!((g.mean_at(i) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn generated_keys_track_the_drift() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = ShiftingGaussian::scaled(0.8, 20_000, 20_000, 20_000);
        let keys = g.generate(&mut rng);
        assert_eq!(keys.len(), g.total());
        let avg = |s: &[Key]| s.iter().map(|&k| k as f64).sum::<f64>() / s.len() as f64;
        let phase1_mean = avg(&keys[..20_000]) / DEFAULT_KEY_SCALE;
        let phase3_mean = avg(&keys[40_000..]) / DEFAULT_KEY_SCALE;
        assert!(
            (phase1_mean - 0.5).abs() < 0.01,
            "phase 1 mean {phase1_mean}"
        );
        assert!(
            (phase3_mean - 1.3).abs() < 0.01,
            "phase 3 mean {phase3_mean}"
        );
    }

    #[test]
    fn paper_configuration_sizes() {
        let g = ShiftingGaussian::paper(0.4);
        assert_eq!(g.phase1, 4 << 20);
        assert_eq!(g.phase2, 10 << 20);
        assert_eq!(g.phase3, 4 << 20);
        assert_eq!(g.total(), 18 << 20);
    }
}
