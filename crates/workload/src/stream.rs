//! Interleaved two-stream tuple sequences.
//!
//! The evaluation joins streams `R` and `S` whose input rates are symmetric
//! unless stated otherwise; Figure 11b studies asymmetric rates by varying the
//! fraction of tuples that belong to `S`.

use rand::Rng;

use pimtree_common::{Key, Seq, StreamSide, Tuple};

use crate::dist::KeyDistribution;

/// How tuples are split between the two streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMix {
    /// Probability that the next tuple belongs to stream `S` (0.5 = symmetric
    /// input rates).
    pub s_fraction: f64,
}

impl Default for StreamMix {
    fn default() -> Self {
        StreamMix { s_fraction: 0.5 }
    }
}

impl StreamMix {
    /// Symmetric input rates.
    pub fn symmetric() -> Self {
        Self::default()
    }

    /// `s_percent`% of tuples come from stream `S` (Figure 11b sweeps 0–50%).
    pub fn with_s_percent(s_percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&s_percent),
            "percentage out of range"
        );
        StreamMix {
            s_fraction: s_percent / 100.0,
        }
    }

    /// A self-join mix: every generated tuple is fed to both sides by the join
    /// operator, so the generator emits only `R` tuples.
    pub fn self_join() -> Self {
        StreamMix { s_fraction: 0.0 }
    }
}

/// Generates an interleaved sequence of stream tuples with per-stream
/// monotonically increasing sequence numbers.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    dist: KeyDistribution,
    mix: StreamMix,
    next_seq: [Seq; 2],
}

impl StreamGenerator {
    /// Creates a generator drawing keys from `dist` with the given stream mix.
    pub fn new(dist: KeyDistribution, mix: StreamMix) -> Self {
        StreamGenerator {
            dist,
            mix,
            next_seq: [0, 0],
        }
    }

    /// Creates a symmetric generator over uniform keys (the evaluation
    /// default).
    pub fn uniform_symmetric() -> Self {
        Self::new(KeyDistribution::uniform(), StreamMix::symmetric())
    }

    /// Key distribution in use.
    pub fn distribution(&self) -> KeyDistribution {
        self.dist
    }

    /// Draws the next tuple.
    pub fn next_tuple<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Tuple {
        let side = if rng.gen::<f64>() < self.mix.s_fraction {
            StreamSide::S
        } else {
            StreamSide::R
        };
        self.next_tuple_on(rng, side)
    }

    /// Draws the next tuple on a specific stream (used by self-join drivers
    /// and by tests that need full control over the interleaving).
    pub fn next_tuple_on<R: Rng + ?Sized>(&mut self, rng: &mut R, side: StreamSide) -> Tuple {
        let seq = self.next_seq[side.index()];
        self.next_seq[side.index()] += 1;
        Tuple::new(side, seq, self.dist.sample(rng))
    }

    /// Emits a tuple with an externally supplied key (used by the drifting
    /// workload, which controls the key sequence itself).
    pub fn next_tuple_with_key<R: Rng + ?Sized>(&mut self, rng: &mut R, key: Key) -> Tuple {
        let side = if rng.gen::<f64>() < self.mix.s_fraction {
            StreamSide::S
        } else {
            StreamSide::R
        };
        let seq = self.next_seq[side.index()];
        self.next_seq[side.index()] += 1;
        Tuple::new(side, seq, key)
    }

    /// Generates `n` interleaved tuples.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<Tuple> {
        (0..n).map(|_| self.next_tuple(rng)).collect()
    }

    /// Generates a strictly alternating R/S sequence of `n` tuples, which
    /// keeps both windows exactly the same size at every instant. Used by
    /// experiments that measure per-step costs and need determinism.
    pub fn generate_alternating<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let side = if i % 2 == 0 {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                self.next_tuple_on(rng, side)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequences_are_per_stream_monotonic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = StreamGenerator::uniform_symmetric();
        let tuples = g.generate(&mut rng, 10_000);
        let mut expected = [0u64, 0u64];
        for t in &tuples {
            assert_eq!(t.seq, expected[t.side.index()]);
            expected[t.side.index()] += 1;
        }
        assert_eq!(expected[0] + expected[1], 10_000);
    }

    #[test]
    fn symmetric_mix_is_roughly_half_and_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = StreamGenerator::uniform_symmetric();
        let tuples = g.generate(&mut rng, 100_000);
        let s = tuples.iter().filter(|t| t.side == StreamSide::S).count() as f64;
        assert!((s / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn asymmetric_mix_respects_percentage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g =
            StreamGenerator::new(KeyDistribution::uniform(), StreamMix::with_s_percent(10.0));
        let tuples = g.generate(&mut rng, 100_000);
        let s = tuples.iter().filter(|t| t.side == StreamSide::S).count() as f64;
        assert!(
            (s / 100_000.0 - 0.1).abs() < 0.01,
            "S share = {}",
            s / 100_000.0
        );
    }

    #[test]
    fn self_join_mix_emits_only_r() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = StreamGenerator::new(KeyDistribution::uniform(), StreamMix::self_join());
        let tuples = g.generate(&mut rng, 1000);
        assert!(tuples.iter().all(|t| t.side == StreamSide::R));
    }

    #[test]
    fn alternating_sequence_alternates() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = StreamGenerator::uniform_symmetric();
        let tuples = g.generate_alternating(&mut rng, 100);
        for (i, t) in tuples.iter().enumerate() {
            let expected = if i % 2 == 0 {
                StreamSide::R
            } else {
                StreamSide::S
            };
            assert_eq!(t.side, expected);
            assert_eq!(t.seq, (i / 2) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "percentage out of range")]
    fn bad_percentage_rejected() {
        let _ = StreamMix::with_s_percent(120.0);
    }
}
