//! Key-value distributions used by the evaluation.
//!
//! The paper evaluates uniform keys (the default), a Gaussian
//! `N(0.5, 0.125)` and two Gamma distributions (`k = 3, θ = 3` and
//! `k = 1, θ = 5`) — see Figure 12b. Samples are drawn in the distribution's
//! natural domain and then scaled to the integer key domain `[0, scale)`.

use rand::Rng;

use pimtree_common::Key;

/// Default width of the integer key domain that continuous samples are scaled
/// into. Large enough that band predicates for the paper's match rates stay
/// well above 1, small enough that `Key` arithmetic never overflows under the
/// drifting workloads.
pub const DEFAULT_KEY_SCALE: f64 = 1_000_000_000.0;

/// A distribution over join-attribute keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform integers in `[0, scale)`.
    Uniform {
        /// Exclusive upper bound of the key domain.
        scale: f64,
    },
    /// Gaussian with the given mean and standard deviation in the unit domain,
    /// scaled by `scale`. The paper uses `mean = 0.5`, `std_dev = 0.125`.
    Gaussian {
        /// Mean in the unit domain.
        mean: f64,
        /// Standard deviation in the unit domain.
        std_dev: f64,
        /// Multiplier from the unit domain to the key domain.
        scale: f64,
    },
    /// Gamma distribution with shape `k` and scale `theta`; samples are
    /// divided by `k·θ + 4·√k·θ` (≈ the bulk of the mass) before being scaled
    /// to the key domain so that different parameterisations cover comparable
    /// key ranges.
    Gamma {
        /// Shape parameter `k`.
        shape: f64,
        /// Scale parameter `θ`.
        theta: f64,
        /// Multiplier from the normalised domain to the key domain.
        scale: f64,
    },
}

impl KeyDistribution {
    /// Uniform keys over the default domain.
    pub fn uniform() -> Self {
        KeyDistribution::Uniform {
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// The paper's Gaussian `N(0.5, 0.125)` over the default domain.
    pub fn gaussian_paper() -> Self {
        KeyDistribution::Gaussian {
            mean: 0.5,
            std_dev: 0.125,
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// Gaussian with an arbitrary mean (used by the drifting workload).
    pub fn gaussian(mean: f64, std_dev: f64) -> Self {
        KeyDistribution::Gaussian {
            mean,
            std_dev,
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// The paper's `Gamma(k = 3, θ = 3)`.
    pub fn gamma_3_3() -> Self {
        KeyDistribution::Gamma {
            shape: 3.0,
            theta: 3.0,
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// The paper's `Gamma(k = 1, θ = 5)`.
    pub fn gamma_1_5() -> Self {
        KeyDistribution::Gamma {
            shape: 1.0,
            theta: 5.0,
            scale: DEFAULT_KEY_SCALE,
        }
    }

    /// Width of the key domain samples are scaled into.
    pub fn scale(&self) -> f64 {
        match *self {
            KeyDistribution::Uniform { scale }
            | KeyDistribution::Gaussian { scale, .. }
            | KeyDistribution::Gamma { scale, .. } => scale,
        }
    }

    /// Draws one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Key {
        let scale = self.scale();
        let unit = match *self {
            KeyDistribution::Uniform { .. } => rng.gen::<f64>(),
            KeyDistribution::Gaussian { mean, std_dev, .. } => {
                mean + std_dev * sample_standard_normal(rng)
            }
            KeyDistribution::Gamma { shape, theta, .. } => {
                let raw = sample_gamma(rng, shape, theta);
                let normaliser = shape * theta + 4.0 * shape.sqrt() * theta;
                raw / normaliser
            }
        };
        let clamped = unit.clamp(-1.0, 2.0);
        (clamped * scale) as Key
    }

    /// Draws `n` keys.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Key> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal sample via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Gamma(`shape`, `theta`) sample via the Marsaglia–Tsang method, with the
/// standard boost for `shape < 1`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, theta: f64) -> f64 {
    assert!(
        shape > 0.0 && theta > 0.0,
        "gamma parameters must be positive"
    );
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0, theta) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * theta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let (mean, var) = mean_and_var(&samples);
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn gamma_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(k, theta) in &[(3.0, 3.0), (1.0, 5.0), (0.5, 2.0)] {
            let samples: Vec<f64> = (0..200_000)
                .map(|_| sample_gamma(&mut rng, k, theta))
                .collect();
            let (mean, var) = mean_and_var(&samples);
            let expect_mean = k * theta;
            let expect_var = k * theta * theta;
            assert!(
                (mean - expect_mean).abs() / expect_mean < 0.05,
                "k={k} θ={theta}: mean {mean} vs {expect_mean}"
            );
            assert!(
                (var - expect_var).abs() / expect_var < 0.1,
                "k={k} θ={theta}: var {var} vs {expect_var}"
            );
            assert!(samples.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn uniform_keys_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = KeyDistribution::uniform();
        let keys = d.sample_many(&mut rng, 100_000);
        let min = *keys.iter().min().unwrap();
        let max = *keys.iter().max().unwrap();
        assert!(min >= 0);
        assert!((max as f64) < DEFAULT_KEY_SCALE);
        assert!((max as f64) > DEFAULT_KEY_SCALE * 0.99);
        assert!((min as f64) < DEFAULT_KEY_SCALE * 0.01);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!((mean / DEFAULT_KEY_SCALE - 0.5).abs() < 0.01);
    }

    #[test]
    fn gaussian_keys_center_on_half_scale() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = KeyDistribution::gaussian_paper();
        let keys = d.sample_many(&mut rng, 100_000);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!(
            (mean / DEFAULT_KEY_SCALE - 0.5).abs() < 0.01,
            "mean = {mean}"
        );
        // Gaussian keys are much more concentrated than uniform ones.
        let within_one_sigma = keys
            .iter()
            .filter(|&&k| ((k as f64 / DEFAULT_KEY_SCALE) - 0.5).abs() <= 0.125)
            .count() as f64
            / keys.len() as f64;
        assert!(
            (within_one_sigma - 0.68).abs() < 0.02,
            "1σ mass = {within_one_sigma}"
        );
    }

    #[test]
    fn gamma_keys_are_skewed_right() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = KeyDistribution::gamma_1_5();
        let keys = d.sample_many(&mut rng, 50_000);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(
            mean > median,
            "gamma is right-skewed: mean {mean} median {median}"
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let d = KeyDistribution::gaussian_paper();
        let a = d.sample_many(&mut StdRng::seed_from_u64(7), 100);
        let b = d.sample_many(&mut StdRng::seed_from_u64(7), 100);
        let c = d.sample_many(&mut StdRng::seed_from_u64(8), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_gamma(&mut rng, 0.0, 1.0);
    }
}
