//! Calibration of the band-join half-width `diff` to a target match rate.
//!
//! The paper keeps the match rate `σ_s` (expected matches per probe against a
//! window of `w` tuples) constant — usually at 2 — while sweeping the window
//! size, by adjusting `diff` per configuration (§5). For uniform keys the
//! relationship has a closed form; for other distributions we calibrate
//! empirically on a sample.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pimtree_common::Key;

use crate::dist::KeyDistribution;

/// Closed-form `diff` for uniformly distributed keys over a domain of width
/// `domain`: the probability that `|x - y| <= diff` for independent uniform
/// `x, y` is approximately `(2·diff + 1) / domain`, so the expected match rate
/// against a window of `w` tuples is `w · (2·diff + 1) / domain`.
pub fn uniform_diff_for_match_rate(window: usize, target_match_rate: f64, domain: f64) -> Key {
    assert!(window > 0, "window must be positive");
    assert!(target_match_rate >= 0.0, "match rate must be non-negative");
    let per_probe = target_match_rate / window as f64;
    let width = per_probe * domain;
    (((width - 1.0) / 2.0).max(0.0)).round() as Key
}

/// Expected number of matches per probe, against a window of `window` keys
/// drawn from `keys`, for a band of half-width `diff`. Estimated on the
/// provided sorted sample.
fn expected_matches(sorted: &[Key], window: usize, diff: Key) -> f64 {
    let n = sorted.len();
    // Probe with a subset of the sample itself (they follow the same
    // distribution) and count neighbours within the band.
    let probes = 512.min(n);
    let stride = (n / probes).max(1);
    let mut total = 0usize;
    let mut used = 0usize;
    for i in (0..n).step_by(stride) {
        let p = sorted[i];
        let lo = sorted.partition_point(|&k| k < p.saturating_sub(diff));
        let hi = sorted.partition_point(|&k| k <= p.saturating_add(diff));
        total += hi - lo;
        used += 1;
    }
    let per_probe = total as f64 / used as f64 / n as f64;
    per_probe * window as f64
}

/// Empirically calibrates `diff` so that a band join against a window of
/// `window` keys drawn from `dist` yields approximately `target_match_rate`
/// matches per probe. Deterministic for a given `seed`.
pub fn calibrate_diff(
    dist: KeyDistribution,
    window: usize,
    target_match_rate: f64,
    seed: u64,
) -> Key {
    assert!(window > 0, "window must be positive");
    assert!(target_match_rate >= 0.0, "match rate must be non-negative");
    if let KeyDistribution::Uniform { scale } = dist {
        return uniform_diff_for_match_rate(window, target_match_rate, scale);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_size = 65_536;
    let mut sample = dist.sample_many(&mut rng, sample_size);
    sample.sort_unstable();

    // `expected_matches` is monotone in `diff`; binary-search the smallest
    // diff reaching the target.
    let mut lo: Key = 0;
    let mut hi: Key = dist.scale() as Key;
    // Make sure the upper bound is large enough.
    while expected_matches(&sample, window, hi) < target_match_rate
        && hi < (dist.scale() as Key) * 4
    {
        hi *= 2;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if expected_matches(&sample, window, mid) >= target_match_rate {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DEFAULT_KEY_SCALE;
    use rand::Rng;

    #[test]
    fn uniform_closed_form_matches_definition() {
        // w * (2*diff + 1) / domain == target
        let w = 1 << 20;
        let diff = uniform_diff_for_match_rate(w, 2.0, DEFAULT_KEY_SCALE);
        let achieved = w as f64 * (2.0 * diff as f64 + 1.0) / DEFAULT_KEY_SCALE;
        assert!(
            (achieved - 2.0).abs() < 0.01,
            "achieved match rate {achieved}"
        );
    }

    #[test]
    fn uniform_diff_scales_inversely_with_window() {
        let small = uniform_diff_for_match_rate(1 << 14, 2.0, DEFAULT_KEY_SCALE);
        let large = uniform_diff_for_match_rate(1 << 20, 2.0, DEFAULT_KEY_SCALE);
        assert!(small > large * 32, "smaller windows need a much wider band");
    }

    #[test]
    fn uniform_diff_zero_for_tiny_targets() {
        // A target below one match per window degenerates to an equi-join.
        let d = uniform_diff_for_match_rate(1 << 20, 0.0, DEFAULT_KEY_SCALE);
        assert_eq!(d, 0);
    }

    #[test]
    fn empirical_calibration_hits_target_for_uniform() {
        let d = calibrate_diff(KeyDistribution::uniform(), 1 << 16, 2.0, 42);
        let closed = uniform_diff_for_match_rate(1 << 16, 2.0, DEFAULT_KEY_SCALE);
        assert_eq!(d, closed, "uniform falls back to the closed form");
    }

    fn measured_match_rate(dist: KeyDistribution, window: usize, diff: Key, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut window_keys = dist.sample_many(&mut rng, window);
        window_keys.sort_unstable();
        let probes = 2000;
        let mut total = 0usize;
        for _ in 0..probes {
            let p = dist.sample(&mut rng);
            let lo = window_keys.partition_point(|&k| k < p.saturating_sub(diff));
            let hi = window_keys.partition_point(|&k| k <= p.saturating_add(diff));
            total += hi - lo;
        }
        total as f64 / probes as f64
    }

    #[test]
    fn empirical_calibration_hits_target_for_gaussian() {
        let dist = KeyDistribution::gaussian_paper();
        let w = 1 << 15;
        let diff = calibrate_diff(dist, w, 2.0, 7);
        let measured = measured_match_rate(dist, w, diff, 99);
        assert!(
            (1.0..=4.0).contains(&measured),
            "calibrated diff {diff} gives match rate {measured}, expected ≈ 2"
        );
    }

    #[test]
    fn empirical_calibration_hits_target_for_gamma() {
        let dist = KeyDistribution::gamma_3_3();
        let w = 1 << 15;
        let diff = calibrate_diff(dist, w, 2.0, 7);
        let measured = measured_match_rate(dist, w, diff, 123);
        assert!(
            (1.0..=4.0).contains(&measured),
            "calibrated diff {diff} gives match rate {measured}, expected ≈ 2"
        );
    }

    #[test]
    fn higher_targets_need_wider_bands() {
        let dist = KeyDistribution::gaussian_paper();
        let w = 1 << 14;
        let d2 = calibrate_diff(dist, w, 2.0, 1);
        let d64 = calibrate_diff(dist, w, 64.0, 1);
        assert!(d64 > d2 * 8, "d2 = {d2}, d64 = {d64}");
    }

    #[test]
    fn calibration_is_deterministic() {
        let dist = KeyDistribution::gamma_1_5();
        let a = calibrate_diff(dist, 1 << 14, 2.0, 5);
        let b = calibrate_diff(dist, 1 << 14, 2.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn random_probe_sanity_for_uniform_band() {
        // End-to-end check that the closed form is usable: draw a window and
        // probes, count actual matches.
        let mut rng = StdRng::seed_from_u64(77);
        let w = 1 << 14;
        let diff = uniform_diff_for_match_rate(w, 2.0, DEFAULT_KEY_SCALE);
        let mut window: Vec<Key> = (0..w)
            .map(|_| rng.gen_range(0..DEFAULT_KEY_SCALE as i64))
            .collect();
        window.sort_unstable();
        let mut total = 0usize;
        let probes = 3000;
        for _ in 0..probes {
            let p = rng.gen_range(0..DEFAULT_KEY_SCALE as i64);
            let lo = window.partition_point(|&k| k < p - diff);
            let hi = window.partition_point(|&k| k <= p + diff);
            total += hi - lo;
        }
        let rate = total as f64 / probes as f64;
        assert!((1.5..=2.5).contains(&rate), "measured match rate {rate}");
    }
}
