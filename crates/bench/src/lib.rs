//! Benchmark harness for reproducing the paper's tables and figures.
//!
//! Every figure of the evaluation section has a corresponding binary in
//! `src/bin/` (named `fig08a` … `fig14`) that regenerates the figure's data
//! series and prints them as CSV-style rows. The binaries share the helpers in
//! [`harness`]: workload generation with match-rate calibration, operator
//! construction for every index kind, and consistent output formatting.
//!
//! By default each binary runs a *scaled-down* version of the paper's sweep so
//! that the full set finishes in minutes on a laptop; pass
//! `--min-exp`/`--max-exp`/`--tuples`/`--threads` to widen the sweep up to the
//! paper's original ranges.

pub mod harness;
