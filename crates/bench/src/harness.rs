//! Shared helpers for the per-figure benchmark binaries.

use pimtree_common::{
    BandPredicate, DriftConfig, IndexKind, JoinConfig, MigrationMode, PimConfig, ProbeConfig,
    RingConfig, ShardConfig, TelemetryConfig, TelemetryMode, Tuple,
};
use pimtree_join::{
    build_single_threaded, HandshakeJoin, HandshakeMode, JoinRunStats, ParallelIbwj,
    SharedIndexKind,
};
use pimtree_numa::RangePartitioner;
use pimtree_workload::{calibrate_diff, KeyDistribution, StreamGenerator, StreamMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Smallest window-size exponent in a sweep (`w = 2^min_exp`).
    pub min_exp: u32,
    /// Largest window-size exponent in a sweep.
    pub max_exp: u32,
    /// Measured tuples per data point; 0 means "choose automatically from the
    /// window size".
    pub tuples: usize,
    /// Worker threads for the parallel operators.
    pub threads: usize,
    /// Task size for the parallel operators.
    pub task_size: usize,
    /// Workload seed.
    pub seed: u64,
    /// Task-ring capacity for the parallel engine (0 = automatic).
    pub ring_cap: usize,
    /// Ring ingest target (0 = automatic).
    pub ingest_target: usize,
    /// Idle back-off: spin rounds before yielding.
    pub spin_limit: u32,
    /// Idle back-off: yield rounds before parking.
    pub yield_limit: u32,
    /// Idle back-off: park duration in microseconds (0 = never park).
    pub park_micros: u64,
    /// Whether result generation uses the batched CSS group probe.
    pub probe_batch: bool,
    /// Prefetch distance of the batched probe (keys of lookahead per level).
    pub prefetch_dist: usize,
    /// AMAC interleave width: in-flight descents per worker (0 = off, use
    /// the level-synchronous batched descent).
    pub interleave: usize,
    /// Ring shards (simulated NUMA nodes) for the parallel engine. `0` means
    /// automatic (the single-ring engine; `perf_smoke` additionally sweeps
    /// its default shard counts); an explicit value — including 1 — pins the
    /// shard count everywhere.
    pub shards: usize,
    /// Tuples claimed per cross-shard steal (0 = the task size).
    pub steal_batch: usize,
    /// First-pass steal threshold (minimum backlog of a steal victim).
    pub steal_threshold: usize,
    /// Whether the engine partitions its index and window state per shard
    /// (the `ShardStore` layer) instead of sharing one index/window pair per
    /// side. Only meaningful with more than one shard.
    pub partition_index: bool,
    /// Whether the engine adopts drift-driven repartition plans live
    /// (migration epochs). Only meaningful with more than one shard.
    pub repartition: bool,
    /// Drift monitor observation window (tuples).
    pub drift_window: usize,
    /// Imbalance ratio that triggers a repartition plan.
    pub drift_trigger: f64,
    /// Maximum moved-weight fraction a plan may cost and still be adopted.
    pub drift_cost_gate: f64,
    /// How adopted repartition plans are applied: one wholesale migration
    /// epoch, or stall-bounded incremental sub-range handoff steps.
    pub migration_mode: MigrationMode,
    /// Window tuples moved per incremental handoff step (0 = automatic:
    /// the drift window).
    pub handoff_budget: usize,
    /// Open-loop arrival rate in tuples per second for the latency harness;
    /// 0 runs closed-loop (ingest as fast as the engine admits).
    pub arrival_rate: f64,
    /// Engine flight-recorder mode (`off`, `counters` or `full`).
    pub telemetry: TelemetryMode,
    /// Gauge sampler period in milliseconds for `--telemetry-out` traces.
    pub telemetry_interval_ms: u64,
}

impl RunOpts {
    /// Parses `--min-exp= --max-exp= --tuples= --threads= --task-size=
    /// --seed= --ring-cap= --ingest-target= --spin= --yield= --park-us=
    /// --probe-batch=on|off --prefetch-dist= --interleave= --shards=
    /// --steal-batch=
    /// --steal-threshold= --partition-index=on|off --repartition=on|off
    /// --drift-window= --drift-trigger= --drift-cost-gate=
    /// --telemetry=off|counters|full --telemetry-interval=ms` from the
    /// command line, with figure-specific defaults. The `--telemetry-out=`
    /// path is a separate string-valued option read via
    /// [`telemetry_out_from_args`].
    pub fn parse(default_min: u32, default_max: u32) -> Self {
        let defaults = RingConfig::default();
        let probe_defaults = ProbeConfig::default();
        let shard_defaults = ShardConfig::default();
        let drift_defaults = DriftConfig::default();
        let mut opts = RunOpts {
            min_exp: default_min,
            max_exp: default_max,
            tuples: 0,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(8)
                .min(16),
            task_size: 8,
            seed: 42,
            ring_cap: defaults.capacity,
            ingest_target: defaults.ingest_target,
            spin_limit: defaults.spin_limit,
            yield_limit: defaults.yield_limit,
            park_micros: defaults.park_micros,
            probe_batch: probe_defaults.batch,
            prefetch_dist: probe_defaults.prefetch_dist,
            interleave: probe_defaults.interleave,
            shards: 0,
            steal_batch: shard_defaults.steal_batch,
            steal_threshold: shard_defaults.steal_threshold,
            partition_index: shard_defaults.partition_index,
            repartition: drift_defaults.repartition,
            drift_window: drift_defaults.window,
            drift_trigger: drift_defaults.imbalance_trigger,
            drift_cost_gate: drift_defaults.cost_gate,
            migration_mode: drift_defaults.migration_mode,
            handoff_budget: drift_defaults.handoff_budget,
            arrival_rate: 0.0,
            telemetry: TelemetryConfig::default().mode,
            telemetry_interval_ms: TelemetryConfig::default().sample_interval_ms,
        };
        for arg in std::env::args().skip(1) {
            let mut split = arg.splitn(2, '=');
            let key = split.next().unwrap_or_default();
            let value = split.next().unwrap_or_default();
            let parse_usize = || {
                value
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad value for {key}: {value}"))
            };
            match key {
                "--min-exp" => opts.min_exp = parse_usize() as u32,
                "--max-exp" => opts.max_exp = parse_usize() as u32,
                "--tuples" => opts.tuples = parse_usize(),
                "--threads" => opts.threads = parse_usize(),
                "--task-size" => opts.task_size = parse_usize(),
                "--seed" => opts.seed = parse_usize() as u64,
                "--ring-cap" => opts.ring_cap = parse_usize(),
                "--ingest-target" => opts.ingest_target = parse_usize(),
                "--spin" => opts.spin_limit = parse_usize() as u32,
                "--yield" => opts.yield_limit = parse_usize() as u32,
                "--park-us" => opts.park_micros = parse_usize() as u64,
                "--probe-batch" => {
                    opts.probe_batch = match value {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => panic!("bad value for --probe-batch: {other} (use on/off)"),
                    }
                }
                "--prefetch-dist" => opts.prefetch_dist = parse_usize(),
                "--interleave" => opts.interleave = parse_usize(),
                "--shards" => opts.shards = parse_usize(),
                "--steal-batch" => opts.steal_batch = parse_usize(),
                "--steal-threshold" => opts.steal_threshold = parse_usize(),
                "--partition-index" => {
                    opts.partition_index = match value {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => panic!("bad value for --partition-index: {other} (use on/off)"),
                    }
                }
                "--repartition" => {
                    opts.repartition = match value {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => panic!("bad value for --repartition: {other} (use on/off)"),
                    }
                }
                "--drift-window" => opts.drift_window = parse_usize(),
                "--drift-trigger" => {
                    opts.drift_trigger = value
                        .parse::<f64>()
                        .unwrap_or_else(|_| panic!("bad value for {key}: {value}"))
                }
                "--drift-cost-gate" => {
                    opts.drift_cost_gate = value
                        .parse::<f64>()
                        .unwrap_or_else(|_| panic!("bad value for {key}: {value}"))
                }
                "--migration-mode" => {
                    opts.migration_mode = match value {
                        "epoch" | "wholesale" => MigrationMode::Epoch,
                        "incremental" | "handoff" => MigrationMode::Incremental,
                        other => {
                            panic!(
                                "bad value for --migration-mode: {other} (use epoch/incremental)"
                            )
                        }
                    }
                }
                "--handoff-budget" => opts.handoff_budget = parse_usize(),
                "--arrival-rate" => {
                    opts.arrival_rate = value
                        .parse::<f64>()
                        .unwrap_or_else(|_| panic!("bad value for {key}: {value}"))
                }
                "--telemetry" => {
                    opts.telemetry = value.parse::<TelemetryMode>().unwrap_or_else(|_| {
                        panic!("bad value for --telemetry: {value} (use off/counters/full)")
                    })
                }
                "--telemetry-interval" => opts.telemetry_interval_ms = parse_usize() as u64,
                // String-valued; consumed by `telemetry_out_from_args`.
                "--telemetry-out" => {}
                other => eprintln!("note: ignoring unknown argument '{other}'"),
            }
        }
        assert!(
            opts.min_exp <= opts.max_exp,
            "--min-exp must not exceed --max-exp"
        );
        opts
    }

    /// The window-size exponents of the sweep.
    pub fn window_exps(&self) -> Vec<u32> {
        (self.min_exp..=self.max_exp).collect()
    }

    /// Number of measured tuples for a window of `w` tuples: enough to slide
    /// through the window a few times, bounded so large windows stay cheap.
    pub fn tuples_for(&self, w: usize) -> usize {
        if self.tuples > 0 {
            self.tuples
        } else {
            (4 * w).clamp(1 << 16, 4 << 20)
        }
    }

    /// The task-ring configuration selected on the command line.
    pub fn ring(&self) -> RingConfig {
        RingConfig::default()
            .with_capacity(self.ring_cap)
            .with_ingest_target(self.ingest_target)
            .with_backoff(self.spin_limit, self.yield_limit, self.park_micros)
    }

    /// The batched-probe configuration selected on the command line.
    pub fn probe(&self) -> ProbeConfig {
        ProbeConfig::default()
            .with_batch(self.probe_batch)
            .with_prefetch_dist(self.prefetch_dist)
            .with_interleave(self.interleave)
    }

    /// The sharded-ring configuration selected on the command line
    /// (`--shards=0`, the automatic default, resolves to the single-ring
    /// engine).
    pub fn shard(&self) -> ShardConfig {
        ShardConfig::default()
            .with_shards(self.shards.max(1))
            .with_steal_batch(self.steal_batch)
            .with_steal_threshold(self.steal_threshold)
            .with_partition_index(self.partition_index)
    }

    /// The drift / live-repartition configuration selected on the command
    /// line.
    pub fn drift(&self) -> DriftConfig {
        DriftConfig::default()
            .with_repartition(self.repartition)
            .with_window(self.drift_window)
            .with_imbalance_trigger(self.drift_trigger)
            .with_cost_gate(self.drift_cost_gate)
            .with_migration_mode(self.migration_mode)
            .with_handoff_budget(self.handoff_budget)
    }

    /// The engine flight-recorder configuration selected on the command line.
    pub fn telemetry(&self) -> TelemetryConfig {
        TelemetryConfig::default()
            .with_mode(self.telemetry)
            .with_sample_interval_ms(self.telemetry_interval_ms)
    }
}

/// Reads the `--telemetry-out=PATH` option from the command line. Kept out of
/// [`RunOpts`] (which is `Copy`) because the value is an owned path string;
/// `None` when the option is absent or empty.
pub fn telemetry_out_from_args() -> Option<String> {
    std::env::args().skip(1).find_map(|arg| {
        let path = arg.strip_prefix("--telemetry-out=")?;
        (!path.is_empty()).then(|| path.to_string())
    })
}

/// The paper's default PIM/IM-Tree configuration for a window of `w` tuples:
/// fan-out 32, leaf size 32, insertion depth 3, merge ratio 1 (the best
/// multithreaded setting per Figure 9a).
pub fn pim_config(w: usize) -> PimConfig {
    PimConfig::for_window(w)
        .with_merge_ratio(1.0)
        .with_insertion_depth(3)
}

/// Generates a two-way workload: `n` interleaved tuples whose keys follow
/// `dist`, with `s_percent`% of tuples on stream `S`, and a band predicate
/// calibrated so that a probe against a window of `w` tuples yields about
/// `match_rate` matches.
pub fn two_way_workload(
    n: usize,
    w: usize,
    match_rate: f64,
    dist: KeyDistribution,
    s_percent: f64,
    seed: u64,
) -> (Vec<Tuple>, BandPredicate) {
    let diff = calibrate_diff(dist, w, match_rate, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = StreamGenerator::new(dist, StreamMix::with_s_percent(s_percent));
    (generator.generate(&mut rng, n), BandPredicate::new(diff))
}

/// Generates a self-join workload: `n` tuples on stream `R` with a calibrated
/// band predicate.
pub fn self_join_workload(
    n: usize,
    w: usize,
    match_rate: f64,
    dist: KeyDistribution,
    seed: u64,
) -> (Vec<Tuple>, BandPredicate) {
    let diff = calibrate_diff(dist, w, match_rate, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n as u64)
        .map(|i| Tuple::r(i, dist.sample(&mut rng)))
        .collect();
    (tuples, BandPredicate::new(diff))
}

/// Runs a single-threaded operator (NLWJ or IBWJ over the given index kind)
/// over `tuples` after warming the windows with the first `warmup` tuples.
#[allow(clippy::too_many_arguments)]
pub fn run_single(
    kind: IndexKind,
    window: usize,
    chain_length: usize,
    pim: PimConfig,
    predicate: BandPredicate,
    tuples: &[Tuple],
    warmup: usize,
    self_join: bool,
) -> JoinRunStats {
    let config = JoinConfig::symmetric(window, kind)
        .with_chain_length(chain_length)
        .with_pim(pim);
    let mut op = build_single_threaded(&config, predicate, self_join);
    let warmup = warmup.min(tuples.len());
    let (_, _) = op.run(&tuples[..warmup], false);
    let (stats, _) = op.run(&tuples[warmup..], false);
    stats
}

/// Runs the parallel shared-index engine over `tuples`.
///
/// The first `window_r + window_s` tuples (at most half the sequence) are
/// treated as warmup: they fill the sliding windows and take the PIM-Tree
/// through its first merge so that it has its partition structure, exactly
/// like the single-threaded runners are measured on warm windows. Statistics
/// cover only the remaining tuples.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel(
    kind: SharedIndexKind,
    window_r: usize,
    window_s: usize,
    threads: usize,
    task_size: usize,
    pim: PimConfig,
    predicate: BandPredicate,
    tuples: &[Tuple],
    self_join: bool,
) -> JoinRunStats {
    run_parallel_ring(
        kind,
        window_r,
        window_s,
        threads,
        task_size,
        pim,
        RingConfig::default(),
        ProbeConfig::default(),
        predicate,
        tuples,
        self_join,
    )
}

/// Runs the parallel shared-index engine with an explicit task-ring / idle
/// back-off and batched-probe configuration (see [`run_parallel`] for the
/// warmup convention).
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_ring(
    kind: SharedIndexKind,
    window_r: usize,
    window_s: usize,
    threads: usize,
    task_size: usize,
    pim: PimConfig,
    ring: RingConfig,
    probe: ProbeConfig,
    predicate: BandPredicate,
    tuples: &[Tuple],
    self_join: bool,
) -> JoinRunStats {
    run_parallel_sharded(
        kind,
        window_r,
        window_s,
        threads,
        task_size,
        pim,
        ring,
        probe,
        ShardConfig::default(),
        DriftConfig::default(),
        None,
        predicate,
        tuples,
        self_join,
    )
}

/// Runs the parallel shared-index engine on a sharded task ring. When
/// `shard.shards > 1` and no `partitioner` is given, one is built from the
/// input's key sample so that ingestion routes by key range (the paper's
/// NUMA partitioning); pass `Some(partitioner)` to control routing, or use
/// `shard.shards == 1` for the plain single-ring engine. `drift` arms live
/// repartition adoption (migration epochs) when its `repartition` flag is
/// on.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_sharded(
    kind: SharedIndexKind,
    window_r: usize,
    window_s: usize,
    threads: usize,
    task_size: usize,
    pim: PimConfig,
    ring: RingConfig,
    probe: ProbeConfig,
    shard: ShardConfig,
    drift: DriftConfig,
    partitioner: Option<RangePartitioner>,
    predicate: BandPredicate,
    tuples: &[Tuple],
    self_join: bool,
) -> JoinRunStats {
    run_parallel_paced(
        kind,
        window_r,
        window_s,
        threads,
        task_size,
        pim,
        ring,
        probe,
        shard,
        drift,
        partitioner,
        0.0,
        predicate,
        tuples,
        self_join,
    )
}

/// Runs the parallel engine like [`run_parallel_sharded`], additionally
/// pacing measured-phase ingestion as an open-loop arrival process at
/// `arrival_rate` tuples per second (0 = closed loop). Open-loop runs fill
/// [`JoinRunStats::arrival_latency`] with one arrival → propagation sample
/// per measured tuple, which is what the tail-latency SLO harness reads.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_paced(
    kind: SharedIndexKind,
    window_r: usize,
    window_s: usize,
    threads: usize,
    task_size: usize,
    pim: PimConfig,
    ring: RingConfig,
    probe: ProbeConfig,
    shard: ShardConfig,
    drift: DriftConfig,
    partitioner: Option<RangePartitioner>,
    arrival_rate: f64,
    predicate: BandPredicate,
    tuples: &[Tuple],
    self_join: bool,
) -> JoinRunStats {
    run_parallel_instrumented(
        kind,
        window_r,
        window_s,
        threads,
        task_size,
        pim,
        ring,
        probe,
        shard,
        drift,
        partitioner,
        arrival_rate,
        TelemetryConfig::default(),
        None,
        predicate,
        tuples,
        self_join,
    )
}

/// Runs the parallel engine like [`run_parallel_paced`] with the engine
/// flight recorder armed: `telemetry` selects the recorder mode and gauge
/// sampler period, and `telemetry_out` (when set) streams JSONL gauge
/// samples to that path during the measured phase plus a Prometheus-style
/// text dump to `PATH.prom` at drain.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_instrumented(
    kind: SharedIndexKind,
    window_r: usize,
    window_s: usize,
    threads: usize,
    task_size: usize,
    pim: PimConfig,
    ring: RingConfig,
    probe: ProbeConfig,
    shard: ShardConfig,
    drift: DriftConfig,
    partitioner: Option<RangePartitioner>,
    arrival_rate: f64,
    telemetry: TelemetryConfig,
    telemetry_out: Option<&str>,
    predicate: BandPredicate,
    tuples: &[Tuple],
    self_join: bool,
) -> JoinRunStats {
    let mut config = JoinConfig::symmetric(window_r.max(window_s), IndexKind::PimTree)
        .with_threads(threads)
        .with_task_size(task_size)
        .with_pim(pim)
        .with_ring(ring)
        .with_probe(probe)
        .with_shard(shard)
        .with_drift(drift)
        .with_telemetry(telemetry);
    config.window_r = window_r;
    config.window_s = window_s;
    let mut op = ParallelIbwj::new(config, predicate, kind, self_join);
    if let Some(path) = telemetry_out {
        op = op.with_telemetry_out(path);
    }
    if arrival_rate > 0.0 {
        op = op.with_open_loop(arrival_rate);
    }
    if shard.shards > 1 {
        let partitioner = partitioner.unwrap_or_else(|| {
            // Bounded strided subsample: the partitioner only needs N − 1
            // quantiles, not a sorted copy of every key.
            let step = (tuples.len() / 4096).max(1);
            let sample: Vec<i64> = tuples.iter().step_by(step).map(|t| t.key).collect();
            RangePartitioner::from_key_sample(shard.shards, &sample)
        });
        op = op.with_partitioner(partitioner);
    }
    let warmup = (window_r + window_s).min(tuples.len() / 2);
    let (stats, _) = op.run_with_warmup(tuples, warmup);
    stats
}

/// Runs the round-robin partitioned (handshake-style) join.
pub fn run_handshake(
    mode: HandshakeMode,
    threads: usize,
    window_r: usize,
    window_s: usize,
    predicate: BandPredicate,
    tuples: &[Tuple],
) -> JoinRunStats {
    let op = HandshakeJoin::new(threads, window_r, window_s, predicate, mode);
    let (stats, _) = op.run(tuples);
    stats
}

/// Prints the figure banner and CSV header.
pub fn print_header(figure: &str, description: &str, columns: &[&str]) {
    println!("# {figure}: {description}");
    println!("{}", columns.join(","));
}

/// Prints one CSV row.
pub fn print_row(values: &[String]) {
    println!("{}", values.join(","));
}

/// Formats a throughput in million tuples per second.
pub fn mtps(stats: &JoinRunStats) -> String {
    format!("{:.4}", stats.million_tuples_per_second())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_for_scales_with_window_and_respects_override() {
        let opts = RunOpts {
            min_exp: 10,
            max_exp: 12,
            tuples: 0,
            threads: 4,
            task_size: 8,
            seed: 1,
            ring_cap: 0,
            ingest_target: 0,
            spin_limit: 6,
            yield_limit: 16,
            park_micros: 50,
            probe_batch: true,
            prefetch_dist: 4,
            interleave: 0,
            shards: 1,
            steal_batch: 0,
            steal_threshold: 1,
            partition_index: false,
            repartition: false,
            drift_window: 4096,
            drift_trigger: 1.5,
            drift_cost_gate: 0.9,
            migration_mode: MigrationMode::Epoch,
            handoff_budget: 0,
            arrival_rate: 0.0,
            telemetry: TelemetryMode::Off,
            telemetry_interval_ms: 50,
        };
        assert_eq!(opts.tuples_for(1 << 10), 1 << 16);
        assert_eq!(opts.tuples_for(1 << 18), 1 << 20);
        assert_eq!(opts.tuples_for(1 << 24), 4 << 20);
        let fixed = RunOpts {
            tuples: 1234,
            ..opts
        };
        assert_eq!(fixed.tuples_for(1 << 24), 1234);
        assert_eq!(opts.window_exps(), vec![10, 11, 12]);
        let ring = RunOpts {
            ring_cap: 512,
            spin_limit: 2,
            ..opts
        }
        .ring();
        assert_eq!(ring.capacity, 512);
        assert_eq!(ring.spin_limit, 2);
        ring.validate().unwrap();
        let probe = RunOpts {
            probe_batch: false,
            prefetch_dist: 16,
            interleave: 8,
            ..opts
        }
        .probe();
        assert!(!probe.batch);
        assert_eq!(probe.prefetch_dist, 16);
        assert_eq!(probe.interleave, 8);
        probe.validate().unwrap();
        let shard = RunOpts {
            shards: 4,
            steal_batch: 2,
            steal_threshold: 3,
            partition_index: true,
            ..opts
        }
        .shard();
        assert_eq!(
            (shard.shards, shard.steal_batch, shard.steal_threshold),
            (4, 2, 3)
        );
        assert!(shard.partition_index);
        shard.validate().unwrap();
        let drift = RunOpts {
            repartition: true,
            drift_window: 256,
            drift_trigger: 2.0,
            drift_cost_gate: 0.5,
            migration_mode: MigrationMode::Incremental,
            handoff_budget: 32,
            ..opts
        }
        .drift();
        assert!(drift.repartition);
        assert_eq!(drift.window, 256);
        assert!((drift.imbalance_trigger - 2.0).abs() < 1e-9);
        assert!((drift.cost_gate - 0.5).abs() < 1e-9);
        assert_eq!(drift.migration_mode, MigrationMode::Incremental);
        assert_eq!(drift.effective_handoff_budget(), 32);
        drift.validate().unwrap();
        let telemetry = RunOpts {
            telemetry: TelemetryMode::Full,
            telemetry_interval_ms: 10,
            ..opts
        }
        .telemetry();
        assert_eq!(telemetry.mode, TelemetryMode::Full);
        assert_eq!(telemetry.sample_interval_ms, 10);
        telemetry.validate().unwrap();
    }

    #[test]
    fn workloads_hit_the_requested_match_rate_roughly() {
        let w = 1 << 12;
        let (tuples, predicate) =
            two_way_workload(6 * w, w, 2.0, KeyDistribution::uniform(), 50.0, 7);
        let stats = run_single(
            IndexKind::BTree,
            w,
            2,
            pim_config(w),
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let rate = stats.observed_match_rate();
        assert!(
            (0.8..=4.0).contains(&rate),
            "observed match rate {rate}, expected about 2"
        );
    }

    #[test]
    fn single_and_parallel_runners_produce_stats() {
        let w = 1 << 10;
        let (tuples, predicate) = self_join_workload(4 * w, w, 2.0, KeyDistribution::uniform(), 3);
        let st = run_single(
            IndexKind::PimTree,
            w,
            2,
            pim_config(w),
            predicate,
            &tuples,
            w,
            true,
        );
        assert!(st.million_tuples_per_second() > 0.0);
        let par = run_parallel(
            SharedIndexKind::PimTree,
            w,
            w,
            2,
            4,
            pim_config(w),
            predicate,
            &tuples,
            true,
        );
        // The parallel runner excludes its window-fill warmup (2w here) from
        // the reported statistics.
        assert_eq!(par.tuples as usize, tuples.len() - 2 * w);
        let hs = run_handshake(HandshakeMode::Ibwj, 2, w, w, predicate, &tuples);
        assert_eq!(hs.tuples as usize, tuples.len());
        // The sharded runner reports the shard provenance and accounts every
        // post-warmup claim in the simulated traffic model.
        let sharded = run_parallel_sharded(
            SharedIndexKind::PimTree,
            w,
            w,
            2,
            4,
            pim_config(w),
            RingConfig::default(),
            ProbeConfig::default(),
            ShardConfig::default().with_shards(2),
            DriftConfig::default(),
            None,
            predicate,
            &tuples,
            true,
        );
        assert_eq!(sharded.tuples, par.tuples);
        assert_eq!(sharded.shard.shards, 2);
        assert_eq!(
            sharded.shard.local_accesses + sharded.shard.remote_accesses,
            sharded.tuples
        );
        // The partitioned-store runner routes every post-warmup insert and
        // probe through the per-shard store and charges its traffic model.
        let partitioned = run_parallel_sharded(
            SharedIndexKind::PimTree,
            w,
            w,
            2,
            4,
            pim_config(w),
            RingConfig::default(),
            ProbeConfig::default(),
            ShardConfig::default()
                .with_shards(2)
                .with_partition_index(true),
            DriftConfig::default(),
            None,
            predicate,
            &tuples,
            true,
        );
        assert_eq!(partitioned.tuples, par.tuples);
        assert_eq!(partitioned.results, sharded.results);
        assert_eq!(partitioned.store.partitioned, 1);
        assert_eq!(partitioned.store.store_shards, 2);
        assert_eq!(
            partitioned.store.local_inserts + partitioned.store.remote_inserts,
            partitioned.tuples
        );
        assert_eq!(partitioned.store.probes, partitioned.tuples);
        assert!(partitioned.store.simulated_store_cost > 0);
        // The open-loop runner reports one arrival→drain latency sample per
        // measured tuple; the closed-loop runs above report none.
        assert!(partitioned.arrival_latency.is_none());
        let paced = run_parallel_paced(
            SharedIndexKind::PimTree,
            w,
            w,
            2,
            4,
            pim_config(w),
            RingConfig::default(),
            ProbeConfig::default(),
            ShardConfig::default().with_shards(2),
            DriftConfig::default(),
            None,
            5_000_000.0,
            predicate,
            &tuples,
            true,
        );
        let hist = paced
            .arrival_latency
            .as_ref()
            .expect("open-loop run records arrival latency");
        assert_eq!(hist.len(), paced.tuples);
    }
}
