//! Figure 11b: parallel IBWJ throughput using the PIM-Tree under asymmetric
//! input rates (percentage of tuples arriving on stream S), for several
//! window sizes.

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 17);
    let exps: Vec<u32> = opts.window_exps().into_iter().step_by(2).collect();
    let header: Vec<String> = std::iter::once("s_percent".to_string())
        .chain(exps.iter().map(|e| format!("w2e{e}")))
        .collect();
    print_header(
        "fig11b",
        "parallel IBWJ with PIM-Tree under asymmetric input rates (Mtps)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for s_percent in [0.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let mut row = vec![format!("{s_percent:.0}")];
        for &exp in &exps {
            let w = 1usize << exp;
            let n = opts.tuples_for(w);
            let (tuples, predicate) = two_way_workload(
                n + 2 * w,
                w,
                2.0,
                KeyDistribution::uniform(),
                s_percent,
                opts.seed,
            );
            let stats = run_parallel(
                SharedIndexKind::PimTree,
                w,
                w,
                opts.threads,
                opts.task_size,
                pim_config(w),
                predicate,
                &tuples,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
