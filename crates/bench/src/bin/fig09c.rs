//! Figure 9c: single-threaded IBWJ throughput using the IM-Tree for merge
//! ratios 2^-6 … 1, over several window sizes.

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 17);
    let exps = opts.window_exps();
    let header: Vec<String> = std::iter::once("merge_ratio_exp".to_string())
        .chain(exps.iter().map(|e| format!("w2e{e}")))
        .collect();
    print_header(
        "fig09c",
        "single-threaded IBWJ with IM-Tree vs merge ratio (Mtps)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for ratio_exp in (0..=6).rev() {
        let merge_ratio = 1.0 / f64::from(1 << ratio_exp);
        let mut row = vec![format!("-{ratio_exp}")];
        for &exp in &exps {
            let w = 1usize << exp;
            let n = opts.tuples_for(w);
            let (tuples, predicate) = two_way_workload(
                n + 2 * w,
                w,
                2.0,
                KeyDistribution::uniform(),
                50.0,
                opts.seed,
            );
            let pim = pim_config(w).with_merge_ratio(merge_ratio);
            let stats = run_single(
                IndexKind::ImTree,
                w,
                2,
                pim,
                predicate,
                &tuples,
                2 * w,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
