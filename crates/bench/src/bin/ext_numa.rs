//! Extension study (no paper figure): NUMA placement policies.
//!
//! Compares the paper's proposed workload-aware range partitioning against
//! context-insensitive round-robin placement on the simulated NUMA substrate
//! (`pimtree-numa`), reporting remote-access share, simulated memory cost and
//! node load imbalance for a range of node counts, for both a uniform and a
//! heavily skewed key distribution.

use pimtree_bench::harness::*;
use pimtree_common::BandPredicate;
use pimtree_numa::{NumaPartitionedJoin, NumaTopology, PlacementStrategy, RangePartitioner};
use pimtree_workload::KeyDistribution;

fn run_case(
    strategy: PlacementStrategy,
    nodes: usize,
    w: usize,
    tuples: &[pimtree_common::Tuple],
    predicate: BandPredicate,
) -> (f64, u64, f64) {
    let sample: Vec<i64> = tuples.iter().step_by(7).map(|t| t.key).collect();
    let topology = NumaTopology::new(nodes, 90, 180);
    let partitioner = RangePartitioner::from_key_sample(nodes, &sample);
    let mut op = NumaPartitionedJoin::new(topology, strategy, partitioner, w, predicate);
    op.run(tuples);
    (
        op.traffic().remote_fraction(),
        op.total_cost(),
        op.load_imbalance(),
    )
}

fn main() {
    let opts = RunOpts::parse(14, 14);
    let w = 1usize << opts.max_exp;
    let n = (4 * w).min(opts.tuples_for(w));

    print_header(
        "ext_numa",
        &format!(
            "NUMA placement study on the simulated substrate (w = 2^{}, {} tuples)",
            opts.max_exp, n
        ),
        &[
            "distribution",
            "nodes",
            "strategy",
            "remote_fraction",
            "simulated_cost_per_tuple",
            "load_imbalance",
        ],
    );

    let distributions = [
        ("uniform", KeyDistribution::uniform()),
        ("gaussian", KeyDistribution::gaussian(0.5, 0.125)),
    ];
    for (name, dist) in distributions {
        let (tuples, predicate) = two_way_workload(n, w, 2.0, dist, 50.0, opts.seed);
        for nodes in [2usize, 4, 8] {
            for (label, strategy) in [
                ("range", PlacementStrategy::RangePartitioned),
                ("round_robin", PlacementStrategy::RoundRobin),
            ] {
                let (remote, cost, imbalance) = run_case(strategy, nodes, w, &tuples, predicate);
                print_row(&[
                    name.to_string(),
                    nodes.to_string(),
                    label.to_string(),
                    format!("{remote:.3}"),
                    format!("{:.0}", cost as f64 / tuples.len() as f64),
                    format!("{imbalance:.2}"),
                ]);
            }
        }
    }
}
