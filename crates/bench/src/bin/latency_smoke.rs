//! Open-loop tail-latency SLO harness for the migration protocols.
//!
//! A drifting-skew workload (the key distribution jumps to a disjoint range
//! at the stream midpoint) is offered to the partitioned-store engine as an
//! **open-loop arrival process**: tuples become available at a fixed rate —
//! calibrated to a fraction of the engine's closed-loop throughput — and
//! each tuple's latency is measured from its *scheduled* arrival to its
//! propagation, so time spent queued behind a quiesced engine counts toward
//! the tail (a closed-loop run simply stops offering load during a stall
//! and never sees it: coordinated omission).
//!
//! At the midpoint a repartition plan fitted to the shifted key range is
//! force-adopted through both migration protocols:
//!
//! * `epoch` — one wholesale migration epoch: quiesce, swap, migrate every
//!   re-homed index entry and window tuple, resume;
//! * `incremental` — the same plan decomposed into budgeted per-sub-range
//!   handoff steps, each quiescing the engine only for its own bounded
//!   chunk while ingestion and probing continue in between.
//!
//! Both runs produce identical joins (the differential suites pin that);
//! what differs is the stall profile. The harness writes per-phase
//! p50/p99/p999/max arrival latencies plus the migration stall counters —
//! including the per-cause `stall_causes_us` decomposition, which is
//! asserted to sum to the total stall within 1% on every leg — to
//! `BENCH_latency.json` and asserts the tentpole SLO: the incremental
//! protocol's **worst single stall** stays an order of magnitude below the
//! wholesale epoch's on the same workload. `--telemetry=` arms the engine
//! flight recorder per leg and `--telemetry-out=PATH` streams gauge samples
//! to `PATH.<shards>shards.<mode>.<rate>tps` (one trace per leg).

use std::io::Write;

use pimtree_bench::harness::{
    pim_config, print_header, telemetry_out_from_args, two_way_workload, RunOpts,
};
use pimtree_common::{IndexKind, JoinConfig, MigrationMode, ShardConfig, Tuple};
use pimtree_join::{JoinRunStats, ParallelIbwj, SharedIndexKind};
use pimtree_numa::RangePartitioner;
use pimtree_telemetry::StallCause;
use pimtree_workload::KeyDistribution;

/// Offered load as a fraction of the calibrated closed-loop throughput:
/// far enough below saturation that the queue drains between stalls, close
/// enough that a multi-millisecond quiesce shows up in the tail.
const OFFERED_FRACTION: f64 = 0.5;

/// The SLO under test: the incremental protocol's worst single stall must
/// stay below this fraction of the wholesale epoch's.
const STALL_RATIO_LIMIT: f64 = 0.1;

/// Repeats per measured leg; the run with the smallest worst-stall is kept.
/// The incremental protocol takes dozens of short quiesces where the epoch
/// takes one, so on a shared/1-core host a single involuntary context
/// switch inside any one of them inflates the max by milliseconds of
/// scheduler noise. Best-of-N sheds that noise while a real O(window)
/// per-step cost would survive every repeat.
const LEG_REPEATS: usize = 3;

struct Leg {
    shards: usize,
    mode: MigrationMode,
    offered_tps: f64,
    stats: JoinRunStats,
}

fn mode_name(mode: MigrationMode) -> &'static str {
    match mode {
        MigrationMode::Epoch => "epoch",
        MigrationMode::Incremental => "incremental",
    }
}

#[allow(clippy::too_many_arguments)]
fn run_leg(
    opts: &RunOpts,
    w: usize,
    budget: usize,
    shards: usize,
    mode: MigrationMode,
    arrival_rate: f64,
    tuples: &[Tuple],
    predicate: pimtree_common::BandPredicate,
    initial: &RangePartitioner,
    target: &RangePartitioner,
) -> JoinRunStats {
    let mut config = JoinConfig::symmetric(w, IndexKind::PimTree)
        .with_threads(opts.threads)
        .with_task_size(opts.task_size)
        .with_pim(pim_config(w))
        .with_ring(opts.ring())
        .with_probe(opts.probe())
        .with_shard(
            ShardConfig::default()
                .with_shards(shards)
                .with_partition_index(true),
        )
        .with_drift(
            opts.drift()
                .with_migration_mode(mode)
                .with_handoff_budget(budget),
        )
        .with_telemetry(opts.telemetry());
    config.window_r = w;
    config.window_s = w;
    let mut op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
        .with_partitioner(initial.clone())
        .with_forced_repartition(tuples.len() / 2, target.clone());
    if let Some(path) = telemetry_out_from_args() {
        // One trace per leg would clobber the file; suffix by configuration.
        op = op.with_telemetry_out(format!(
            "{path}.{shards}shards.{}.{}tps",
            mode_name(mode),
            arrival_rate as u64
        ));
    }
    if arrival_rate > 0.0 {
        op = op.with_open_loop(arrival_rate);
    }
    let warmup = (2 * w).min(tuples.len() / 2);
    let (stats, _) = op.run_with_warmup(tuples, warmup);
    stats
}

fn main() {
    let opts = RunOpts::parse(13, 13);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    // Small steps by default: the point of the incremental protocol is many
    // short quiesces instead of one long one.
    let budget = if opts.handoff_budget == 0 {
        512
    } else {
        opts.handoff_budget
    };
    let shard_counts: Vec<usize> = if opts.shards > 1 {
        vec![opts.shards]
    } else {
        vec![2, 4]
    };
    let (tuples, predicate) =
        two_way_workload(n, w, 2.0, KeyDistribution::uniform(), 50.0, opts.seed);
    // Drifting skew: the second half of the stream moves to a disjoint key
    // range, so the plan fitted to it re-homes essentially every live tuple.
    let drift_shift = 2_000_000_000i64;
    let drifting: Vec<Tuple> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i >= tuples.len() / 2 {
                Tuple::new(t.side, t.seq, t.key + drift_shift)
            } else {
                *t
            }
        })
        .collect();
    let sample_of = |slice: &[Tuple]| -> Vec<i64> {
        slice
            .iter()
            .step_by((slice.len() / 8192).max(1))
            .map(|t| t.key)
            .collect()
    };
    let first_sample = sample_of(&drifting[..drifting.len() / 2]);
    let second_sample = sample_of(&drifting[drifting.len() / 2..]);

    print_header(
        "latency_smoke",
        "open-loop tail latency of the migration protocols under drifting skew",
        &[
            "shards",
            "mode",
            "offered_ktps",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us",
            "epochs",
            "handoff_steps",
            "stall_us",
            "max_stall_us",
        ],
    );

    let mut legs: Vec<Leg> = Vec::new();
    for &shards in &shard_counts {
        let initial = RangePartitioner::from_key_sample(shards, &first_sample);
        let target = RangePartitioner::from_key_sample(shards, &second_sample);
        // Calibrate the offered rate once per shard count on a closed-loop
        // epoch-mode run, then offer the *same* rate to both protocols.
        let closed = run_leg(
            &opts,
            w,
            budget,
            shards,
            MigrationMode::Epoch,
            0.0,
            &drifting,
            predicate,
            &initial,
            &target,
        );
        let offered_tps = closed.million_tuples_per_second() * 1.0e6 * OFFERED_FRACTION;
        for mode in [MigrationMode::Epoch, MigrationMode::Incremental] {
            let stats = (0..LEG_REPEATS)
                .map(|_| {
                    run_leg(
                        &opts,
                        w,
                        budget,
                        shards,
                        mode,
                        offered_tps,
                        &drifting,
                        predicate,
                        &initial,
                        &target,
                    )
                })
                .min_by_key(|s| s.migration.max_stall_nanos)
                .expect("at least one repeat");
            let hist = stats
                .arrival_latency
                .as_ref()
                .expect("open-loop run records arrival latency");
            assert_eq!(
                hist.len(),
                stats.tuples,
                "one arrival latency sample per measured tuple"
            );
            assert!(
                stats.migration.epochs >= 1,
                "the forced plan must be adopted ({} shards, {} mode)",
                shards,
                mode_name(mode)
            );
            assert!(stats.migration.tuples_moved() > 0);
            match mode {
                MigrationMode::Epoch => assert_eq!(stats.migration.handoff_steps, 0),
                MigrationMode::Incremental => assert!(stats.migration.handoff_steps >= 1),
            }
            // Per-cause stall attribution must reproduce the total stall
            // (within 1%) under both protocols.
            let cause_sum: u64 = StallCause::ALL
                .iter()
                .map(|&c| stats.migration.stall_cause_nanos(c))
                .sum();
            assert!(
                (cause_sum as f64 - stats.migration.stall_nanos as f64).abs()
                    <= stats.migration.stall_nanos as f64 * 0.01,
                "stall causes must sum to the total stall ({} shards, {} mode)",
                shards,
                mode_name(mode)
            );
            println!(
                "{shards},{},{:.1},{:.1},{:.1},{:.1},{:.1},{},{},{:.1},{:.1}",
                mode_name(mode),
                offered_tps / 1.0e3,
                hist.p50_micros(),
                hist.p99_micros(),
                hist.p999_micros(),
                hist.max_micros(),
                stats.migration.epochs,
                stats.migration.handoff_steps,
                stats.migration.stall_micros(),
                stats.migration.max_stall_micros(),
            );
            legs.push(Leg {
                shards,
                mode,
                offered_tps,
                stats,
            });
        }
    }

    // The tentpole SLO: per shard count, the incremental protocol's worst
    // single quiesce stays an order of magnitude under the epoch's.
    let mut worst_ratio = 0.0f64;
    for &shards in &shard_counts {
        let stall_of = |mode: MigrationMode| {
            legs.iter()
                .find(|l| l.shards == shards && l.mode == mode)
                .map(|l| l.stats.migration.max_stall_nanos as f64)
                .expect("both legs ran")
        };
        let (epoch, incremental) = (
            stall_of(MigrationMode::Epoch),
            stall_of(MigrationMode::Incremental),
        );
        let ratio = incremental / epoch.max(1.0);
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "latency_smoke {shards} shards: epoch max stall {:.1}us, \
             incremental max stall {:.1}us (ratio {:.4})",
            epoch / 1.0e3,
            incremental / 1.0e3,
            ratio
        );
        assert!(
            ratio < STALL_RATIO_LIMIT,
            "incremental worst stall must stay under {:.0}% of the epoch stall \
             ({shards} shards: {:.1}us vs {:.1}us)",
            STALL_RATIO_LIMIT * 100.0,
            incremental / 1.0e3,
            epoch / 1.0e3,
        );
    }

    let entries: Vec<String> = legs
        .iter()
        .map(|l| {
            let hist = l.stats.arrival_latency.as_ref().unwrap();
            format!(
                concat!(
                    "    {{\"shards\": {}, \"migration_mode\": \"{}\", ",
                    "\"offered_rate_tps\": {:.0}, \"mtps\": {:.4}, ",
                    "\"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, ",
                    "\"max_us\": {:.2}, \"migration_epochs\": {}, ",
                    "\"migration_handoff_steps\": {}, \"migrated_tuples\": {}, ",
                    "\"migration_stall_us\": {:.2}, \"migration_max_stall_us\": {:.2}, ",
                    "\"stall_causes_us\": {{\"gate_close\": {:.2}, ",
                    "\"in_flight_drain\": {:.2}, \"window_snapshot\": {:.2}, ",
                    "\"rebuild\": {:.2}, \"index_swap\": {:.2}, ",
                    "\"router_swap\": {:.2}}}}}"
                ),
                l.shards,
                mode_name(l.mode),
                l.offered_tps,
                l.stats.million_tuples_per_second(),
                hist.p50_micros(),
                hist.p99_micros(),
                hist.p999_micros(),
                hist.max_micros(),
                l.stats.migration.epochs,
                l.stats.migration.handoff_steps,
                l.stats.migration.tuples_moved(),
                l.stats.migration.stall_micros(),
                l.stats.migration.max_stall_micros(),
                l.stats.migration.stall_cause_nanos(StallCause::GateClose) as f64 / 1_000.0,
                l.stats
                    .migration
                    .stall_cause_nanos(StallCause::InFlightDrain) as f64
                    / 1_000.0,
                l.stats
                    .migration
                    .stall_cause_nanos(StallCause::WindowSnapshot) as f64
                    / 1_000.0,
                l.stats.migration.stall_cause_nanos(StallCause::Rebuild) as f64 / 1_000.0,
                l.stats.migration.stall_cause_nanos(StallCause::IndexSwap) as f64 / 1_000.0,
                l.stats.migration.stall_cause_nanos(StallCause::RouterSwap) as f64 / 1_000.0,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"latency_slo_open_loop\",\n",
            "  \"window_exp\": {},\n",
            "  \"tuples\": {},\n",
            "  \"threads\": {},\n",
            "  \"task_size\": {},\n",
            "  \"handoff_budget\": {},\n",
            "  \"offered_fraction\": {},\n",
            "  \"drift_shift\": {},\n",
            "  \"stall_ratio_limit\": {},\n",
            "  \"worst_stall_ratio\": {:.6},\n",
            "  \"entries\": [\n{}\n  ]\n",
            "}}\n"
        ),
        opts.max_exp,
        n,
        opts.threads,
        opts.task_size,
        budget,
        OFFERED_FRACTION,
        drift_shift,
        STALL_RATIO_LIMIT,
        worst_ratio,
        entries.join(",\n"),
    );
    let path = "BENCH_latency.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
