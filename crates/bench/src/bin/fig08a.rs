//! Figure 8a: window join throughput of round-robin-partitioned (handshake
//! style) operators, the single-threaded baselines, and the multithreaded
//! IBWJ over the Bw-Tree-style index, for varying window sizes.

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_join::{HandshakeMode, SharedIndexKind};
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(12, 16);
    print_header(
        "fig08a",
        "round-robin partitioning vs single-threaded baselines vs MT Bw-Tree (Mtps)",
        &[
            "window_exp",
            "nlwj_single",
            "nlwj_handshake",
            "ibwj_single_btree",
            "ibwj_handshake",
            "ibwj_mt_bwtree",
        ],
    );
    for exp in opts.window_exps() {
        let w = 1usize << exp;
        let n = opts.tuples_for(w);
        // NLWJ is O(w) per tuple; keep its input small enough to finish.
        let nlwj_n = ((1 << 24) / w).clamp(2_000, n);
        let (tuples, predicate) = two_way_workload(
            n + 2 * w,
            w,
            2.0,
            KeyDistribution::uniform(),
            50.0,
            opts.seed,
        );
        let pim = pim_config(w);

        let nlwj_single = run_single(
            IndexKind::None,
            w,
            2,
            pim,
            predicate,
            &tuples[..(2 * w + nlwj_n).min(tuples.len())],
            2 * w,
            false,
        );
        let nlwj_hs = run_handshake(
            HandshakeMode::Nlwj,
            opts.threads,
            w,
            w,
            predicate,
            &tuples[..(2 * w + nlwj_n * opts.threads).min(tuples.len())],
        );
        let ibwj_single = run_single(
            IndexKind::BTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let ibwj_hs = run_handshake(HandshakeMode::Ibwj, opts.threads, w, w, predicate, &tuples);
        let ibwj_bw = run_parallel(
            SharedIndexKind::BwTree,
            w,
            w,
            opts.threads,
            opts.task_size,
            pim,
            predicate,
            &tuples,
            false,
        );

        print_row(&[
            exp.to_string(),
            mtps(&nlwj_single),
            mtps(&nlwj_hs),
            mtps(&ibwj_single),
            mtps(&ibwj_hs),
            mtps(&ibwj_bw),
        ]);
    }
}
