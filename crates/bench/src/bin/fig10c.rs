//! Figure 10c: parallel IBWJ throughput using the PIM-Tree as a function of
//! the task size, for several window sizes.

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 17);
    let exps: Vec<u32> = opts.window_exps().into_iter().step_by(2).collect();
    let header: Vec<String> = std::iter::once("task_size".to_string())
        .chain(exps.iter().map(|e| format!("w2e{e}")))
        .collect();
    print_header(
        "fig10c",
        "parallel IBWJ with PIM-Tree: throughput vs task size (Mtps)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for task_size in 1..=10usize {
        let mut row = vec![task_size.to_string()];
        for &exp in &exps {
            let w = 1usize << exp;
            let n = opts.tuples_for(w);
            let (tuples, predicate) = two_way_workload(
                n + 2 * w,
                w,
                2.0,
                KeyDistribution::uniform(),
                50.0,
                opts.seed,
            );
            let stats = run_parallel(
                SharedIndexKind::PimTree,
                w,
                w,
                opts.threads,
                task_size,
                pim_config(w),
                predicate,
                &tuples,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
