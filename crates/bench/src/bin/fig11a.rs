//! Figure 11a: memory footprint of the PIM-Tree (TS, TI, merge buffer) and of
//! a plain B+-Tree (inner nodes, leaf nodes) for varying numbers of indexed
//! elements. The merge ratio is 1 so that TI is at its largest.

use pimtree_bench::harness::*;
use pimtree_btree::BTreeIndex;
use pimtree_core::PimTree;

fn main() {
    let opts = RunOpts::parse(16, 20);
    print_header(
        "fig11a",
        "memory footprint of PIM-Tree vs B+-Tree (MiB)",
        &[
            "elements_exp",
            "pim_ts",
            "pim_ti",
            "pim_buffer",
            "pim_total",
            "btree_inner",
            "btree_leaf",
            "btree_total",
        ],
    );
    const MIB: f64 = 1024.0 * 1024.0;
    for exp in opts.window_exps() {
        let n = 1usize << exp;
        // PIM-Tree: half of the elements merged into TS, half kept in TI
        // (merge ratio 1 means TI can grow to a full window).
        let pim = PimTree::new(pim_config(n));
        for i in 0..n as i64 {
            pim.insert(i * 7, i as u64);
        }
        pim.merge(0);
        for i in 0..n as i64 {
            pim.insert(i * 7 + 3, (n as i64 + i) as u64);
        }
        let f = pim.footprint();

        let mut btree = BTreeIndex::new();
        for i in 0..n as i64 {
            btree.insert(i * 7, i as u64);
        }
        let b = btree.stats();

        print_row(&[
            exp.to_string(),
            format!("{:.2}", (f.ts_leaf_bytes + f.ts_inner_bytes) as f64 / MIB),
            format!("{:.2}", f.ti_bytes as f64 / MIB),
            format!("{:.2}", f.merge_buffer_bytes as f64 / MIB),
            format!("{:.2}", f.total_bytes() as f64 / MIB),
            format!("{:.2}", b.inner_bytes as f64 / MIB),
            format!("{:.2}", b.leaf_bytes as f64 / MIB),
            format!("{:.2}", b.total_bytes() as f64 / MIB),
        ]);
    }
}
