//! Figure 11d: effective (logical) memory bandwidth of the parallel IBWJ
//! using the PIM-Tree, split into load and store traffic, as the number of
//! threads grows. Hardware PMU counters are substituted by the logical byte
//! accounting in `pimtree-common`’s `memtraffic` module.

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(16, 16);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (tuples, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );
    print_header(
        "fig11d",
        &format!(
            "logical memory traffic of parallel IBWJ (w = 2^{})",
            opts.max_exp
        ),
        &["threads", "load_gbps", "store_gbps", "store_share", "mtps"],
    );
    for threads in 1..=opts.threads {
        let stats = run_parallel(
            SharedIndexKind::PimTree,
            w,
            w,
            threads,
            opts.task_size,
            pim_config(w),
            predicate,
            &tuples,
            false,
        );
        let total = (stats.bytes_loaded + stats.bytes_stored) as f64;
        let share = if total > 0.0 {
            stats.bytes_stored as f64 / total
        } else {
            0.0
        };
        print_row(&[
            threads.to_string(),
            format!("{:.3}", stats.load_gbps()),
            format!("{:.3}", stats.store_gbps()),
            format!("{:.3}", share),
            mtps(&stats),
        ]);
    }
}
