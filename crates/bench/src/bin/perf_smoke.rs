//! Perf smoke test: a quick, scripted measurement of the parallel engine's
//! thread scaling that machines (CI, future PRs) can diff.
//!
//! Runs the uniform two-way workload through the parallel IBWJ at 1/2/4/8
//! worker threads for both shared-index backends (PIM-Tree and Bw-Tree) and
//! writes the results as JSON to `BENCH_parallel.json` (and stdout), so every
//! PR leaves a comparable throughput trajectory behind.
//!
//! Accepts the shared harness flags (`--max-exp= --tuples= --task-size=
//! --ring-cap= --spin= --yield= --park-us= --seed=`); the defaults keep the
//! run under a couple of minutes on a laptop core.

use std::io::Write;

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 14);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (tuples, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut entries = Vec::new();
    for (backend, kind) in [
        ("pim_tree", SharedIndexKind::PimTree),
        ("bw_tree", SharedIndexKind::BwTree),
    ] {
        for threads in [1usize, 2, 4, 8] {
            let stats = run_parallel_ring(
                kind,
                w,
                w,
                threads,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                predicate,
                &tuples,
                false,
            );
            let entry = format!(
                concat!(
                    "    {{\"backend\": \"{}\", \"threads\": {}, \"mtps\": {:.4}, ",
                    "\"results\": {}, \"mean_latency_us\": {:.2}, ",
                    "\"claim_retries_per_task\": {:.4}, \"merges\": {}}}"
                ),
                backend,
                threads,
                stats.million_tuples_per_second(),
                stats.results,
                stats.latency.mean_micros(),
                stats.ring.claim_contention(),
                stats.merges,
            );
            println!(
                "perf_smoke {backend} threads={threads}: {:.4} Mtps",
                stats.million_tuples_per_second()
            );
            entries.push(entry);
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel_ibwj_ring\",\n",
            "  \"window_exp\": {},\n",
            "  \"tuples\": {},\n",
            "  \"task_size\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        opts.max_exp,
        tuples.len(),
        opts.task_size,
        cores,
        entries.join(",\n"),
    );
    let path = "BENCH_parallel.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
