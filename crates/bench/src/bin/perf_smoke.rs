//! Perf smoke test: a quick, scripted measurement of the parallel engine's
//! thread scaling that machines (CI, future PRs) can diff.
//!
//! Runs the uniform two-way workload through the parallel IBWJ at 1/2/4/8
//! worker threads — the PIM-Tree backend with the batched CSS group probe,
//! the scalar probe path and the AMAC interleaved descent ring (widths 4
//! and 8 by default; `--interleave=` pins one), and the Bw-Tree backend for
//! reference —
//! plus a sharded-ring sweep (key-range routed shards with cross-shard
//! stealing), a partitioned-store sweep (the same shard counts with the
//! per-shard index/window store on, against the shared-store arm as its
//! baseline), and a drifting-skew sweep whose key range shifts mid-stream —
//! run with and without `--repartition on`, so the live migration-epoch
//! path (drift-triggered partitioner swap plus shard-state migration) leaves
//! its adopted-epoch / moved-tuple / stall counters in the trajectory — and
//! writes the results as JSON to `BENCH_parallel.json` (and stdout), so
//! every PR leaves a comparable throughput trajectory behind.
//! The JSON records its provenance (host core count, the simulated NUMA node
//! count of the sharded arm, architecture, OS, the detected SIMD level of
//! the intra-node search, and the full
//! engine/ring/probe/shard configuration), so trajectories from different
//! hosts — in particular the 1-core build container versus a real multicore
//! box — are never silently compared as equals.
//!
//! Accepts the shared harness flags (`--max-exp= --tuples= --task-size=
//! --ring-cap= --spin= --yield= --park-us= --prefetch-dist= --seed=
//! --shards= --steal-batch= --steal-threshold=`); the defaults keep the run
//! under a couple of minutes on a laptop core. The batched-vs-scalar probe
//! comparison is built in, so unlike the other binaries perf_smoke ignores
//! `--probe-batch=` (both arms always run); `--prefetch-dist=` tunes the
//! batched arm. `--shards=` pins the sharded sweep to one shard count
//! (default: sweep 1/2/4). The drift sweep always runs both repartition
//! arms at every swept shard count above 1; `--drift-window=`,
//! `--drift-trigger=` and `--drift-cost-gate=` tune its monitor.
//!
//! A telemetry-overhead arm re-runs the 2-thread single-shard configuration
//! with the engine flight recorder off, in `counters` mode and in `full`
//! mode (interleaved rounds, best observation per mode, stopping early once
//! the bound clears) and asserts that `counters` stays within 5% of
//! off — the flight recorder's cost gate. The ratios land in the JSON under
//! `telemetry_overhead`, and every result row carries the per-cause
//! migration-stall decomposition (`stall_causes_us`) plus the per-tuple
//! step-cost breakdown (`cost_ns_per_tuple`).

use std::io::Write;

use pimtree_bench::harness::*;
use pimtree_common::{simd, DriftConfig, ProbeConfig, Step, TelemetryConfig, TelemetryMode, Tuple};
use pimtree_join::{JoinRunStats, SharedIndexKind};
use pimtree_numa::RangePartitioner;
use pimtree_telemetry::StallCause;
use pimtree_workload::KeyDistribution;

fn entry_json(backend: &str, probe: ProbeConfig, threads: usize, stats: &JoinRunStats) -> String {
    format!(
        concat!(
            "    {{\"backend\": \"{}\", \"probe_batch\": {}, \"prefetch_dist\": {}, ",
            "\"interleave\": {}, ",
            "\"threads\": {}, \"shards\": {}, \"mtps\": {:.4}, \"results\": {}, ",
            "\"mean_latency_us\": {:.2}, \"claim_retries_per_task\": {:.4}, ",
            "\"merges\": {}, \"probe_batches\": {}, \"mean_probe_batch\": {:.2}, ",
            "\"probe_dedup_rate\": {:.4}, \"nodes_prefetched\": {}, ",
            "\"interleaved_batches\": {}, \"mean_descent_steps\": {:.2}, ",
            "\"simd_node_searches\": {}, ",
            "\"scalar_probes\": {}, \"steals\": {}, \"stolen_tuples\": {}, ",
            "\"steal_fraction\": {:.4}, \"shard_remote_fraction\": {:.4}, ",
            "\"simulated_numa_cost\": {}, ",
            "\"partition_index\": {}, \"store_shards\": {}, ",
            "\"mean_probe_fanout\": {:.4}, \"single_shard_probes\": {}, ",
            "\"store_remote_fraction\": {:.4}, \"simulated_store_cost\": {}, ",
            "\"repartition\": {}, \"drift_observations\": {}, ",
            "\"migration_epochs\": {}, \"migration_plans_rejected\": {}, ",
            "\"migrated_index_entries\": {}, \"migrated_window_tuples\": {}, ",
            "\"simulated_move_cost\": {}, \"migration_stall_us\": {:.2}, ",
            "\"migration_handoff_steps\": {}, \"migration_max_stall_us\": {:.2}, ",
            "\"stall_causes_us\": {{\"gate_close\": {:.2}, \"in_flight_drain\": {:.2}, ",
            "\"window_snapshot\": {:.2}, \"rebuild\": {:.2}, \"index_swap\": {:.2}, ",
            "\"router_swap\": {:.2}}}, ",
            "\"cost_ns_per_tuple\": {{\"search\": {:.2}, \"scan\": {:.2}, ",
            "\"insert\": {:.2}, \"delete\": {:.2}, \"merge\": {:.2}}}}}"
        ),
        backend,
        probe.batch,
        probe.prefetch_dist,
        probe.interleave,
        threads,
        stats.shard.shards.max(1),
        stats.million_tuples_per_second(),
        stats.results,
        stats.latency.mean_micros(),
        stats.ring.claim_contention(),
        stats.merges,
        stats.probe.batches,
        stats.probe.mean_batch_size(),
        stats.probe.dedup_rate(),
        stats.probe.nodes_prefetched,
        stats.probe.interleaved_batches,
        stats.probe.mean_descent_steps(),
        stats.probe.simd_node_searches,
        stats.probe.scalar_probes,
        stats.shard.steal_tasks,
        stats.shard.stolen_tuples,
        stats.shard.steal_fraction(),
        stats.shard.remote_fraction(),
        stats.shard.simulated_numa_cost,
        stats.store.partitioned == 1,
        stats.store.store_shards.max(1),
        stats.store.mean_probe_fanout(),
        stats.store.single_shard_probes,
        stats.store.remote_fraction(),
        stats.store.simulated_store_cost,
        stats.migration.enabled == 1,
        stats.migration.observations,
        stats.migration.epochs,
        stats.migration.plans_rejected,
        stats.migration.index_entries_moved,
        stats.migration.window_tuples_moved,
        stats.migration.simulated_move_cost,
        stats.migration.stall_micros(),
        stats.migration.handoff_steps,
        stats.migration.max_stall_micros(),
        stats.migration.stall_cause_nanos(StallCause::GateClose) as f64 / 1_000.0,
        stats.migration.stall_cause_nanos(StallCause::InFlightDrain) as f64 / 1_000.0,
        stats
            .migration
            .stall_cause_nanos(StallCause::WindowSnapshot) as f64
            / 1_000.0,
        stats.migration.stall_cause_nanos(StallCause::Rebuild) as f64 / 1_000.0,
        stats.migration.stall_cause_nanos(StallCause::IndexSwap) as f64 / 1_000.0,
        stats.migration.stall_cause_nanos(StallCause::RouterSwap) as f64 / 1_000.0,
        stats.breakdown.per_tuple_nanos(Step::Search),
        stats.breakdown.per_tuple_nanos(Step::Scan),
        stats.breakdown.per_tuple_nanos(Step::Insert),
        stats.breakdown.per_tuple_nanos(Step::Delete),
        stats.breakdown.per_tuple_nanos(Step::Merge),
    )
}

fn main() {
    let opts = RunOpts::parse(14, 14);
    // The sharded sweep below may override the shard *count*, so validate
    // the flags up front — a bad `--shards=`/`--steal-*` must fail loudly
    // instead of being silently replaced by the sweep's values.
    opts.shard().validate().expect("invalid shard flags");
    opts.drift().validate().expect("invalid drift flags");
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (tuples, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let batched = opts.probe().with_batch(true).with_interleave(0);
    let scalar = ProbeConfig::scalar();
    // `--interleave=` pins the AMAC ring-width sweep to one value (the way
    // `--shards=` pins the shard sweep); the automatic default (0) sweeps a
    // narrow and a deep ring against the level-synchronous batched descent.
    let interleave_widths: Vec<usize> = if opts.interleave >= 2 {
        vec![opts.interleave]
    } else {
        vec![4, 8]
    };
    let mut probe_arms: Vec<(String, ProbeConfig)> = vec![
        ("batched".to_string(), batched),
        ("scalar".to_string(), scalar),
    ];
    for &k in &interleave_widths {
        probe_arms.push((format!("interleaved{k}"), batched.with_interleave(k)));
    }
    let mut entries = Vec::new();
    // 1-thread Mtps per probe arm; [0] = batched, [1] = scalar, then the
    // interleaved ring widths in sweep order.
    let mut mtps_1t = vec![0.0f64; probe_arms.len()];
    let mut best_interleaved_1t = 0.0f64;
    // PIM-Tree backend: batched group probe versus the scalar probe path
    // versus the AMAC interleaved descent ring.
    for (mode, (name, probe)) in probe_arms.iter().enumerate() {
        let probe = *probe;
        for threads in [1usize, 2, 4, 8] {
            let stats = run_parallel_ring(
                SharedIndexKind::PimTree,
                w,
                w,
                threads,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                probe,
                predicate,
                &tuples,
                false,
            );
            if threads == 1 {
                mtps_1t[mode] = stats.million_tuples_per_second();
                if probe.interleave >= 2 {
                    best_interleaved_1t = best_interleaved_1t.max(mtps_1t[mode]);
                }
            }
            println!(
                "perf_smoke pim_tree probe={name} threads={threads}: {:.4} Mtps",
                stats.million_tuples_per_second()
            );
            entries.push(entry_json("pim_tree", probe, threads, &stats));
        }
    }
    // Bw-Tree backend for reference (it has no batched probe path).
    for threads in [1usize, 2, 4, 8] {
        let stats = run_parallel_ring(
            SharedIndexKind::BwTree,
            w,
            w,
            threads,
            opts.task_size,
            pim_config(w),
            opts.ring(),
            batched,
            predicate,
            &tuples,
            false,
        );
        println!(
            "perf_smoke bw_tree threads={threads}: {:.4} Mtps",
            stats.million_tuples_per_second()
        );
        entries.push(entry_json("bw_tree", batched, threads, &stats));
    }
    // Sharded-ring sweep: key-range routed shards with cross-shard stealing.
    // An explicit `--shards=` — including 1 — pins a single count (the CI
    // shard matrix does); the automatic default (0) sweeps the interesting
    // shapes.
    let shard_counts: Vec<usize> = if opts.shards > 0 {
        vec![opts.shards]
    } else {
        vec![1, 2, 4]
    };
    let numa_nodes_simulated = shard_counts.iter().copied().max().unwrap_or(1);
    for &shards in &shard_counts {
        for threads in [2usize, 8] {
            let stats = run_parallel_sharded(
                SharedIndexKind::PimTree,
                w,
                w,
                threads,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                batched,
                opts.shard().with_shards(shards).with_partition_index(false),
                DriftConfig::default(),
                None,
                predicate,
                &tuples,
                false,
            );
            println!(
                "perf_smoke pim_tree sharded shards={shards} threads={threads}: \
                 {:.4} Mtps (steal fraction {:.3})",
                stats.million_tuples_per_second(),
                stats.shard.steal_fraction()
            );
            entries.push(entry_json("pim_tree_sharded", batched, threads, &stats));
        }
    }
    // Partitioned-store sweep: the same sharded configurations with the
    // per-shard index/window store on — the shared-store arm directly above
    // is its baseline. With one shard the store short-circuits to the shared
    // path, so that row doubles as a no-overhead check.
    for &shards in &shard_counts {
        for threads in [2usize, 8] {
            let stats = run_parallel_sharded(
                SharedIndexKind::PimTree,
                w,
                w,
                threads,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                batched,
                opts.shard().with_shards(shards).with_partition_index(true),
                DriftConfig::default(),
                None,
                predicate,
                &tuples,
                false,
            );
            println!(
                "perf_smoke pim_tree partitioned shards={shards} threads={threads}: \
                 {:.4} Mtps (mean probe fan-out {:.3}, store remote fraction {:.3})",
                stats.million_tuples_per_second(),
                stats.store.mean_probe_fanout(),
                stats.store.remote_fraction()
            );
            entries.push(entry_json("pim_tree_partitioned", batched, threads, &stats));
        }
    }
    // Drift-workload sweep: the key distribution shifts to a disjoint range
    // halfway through the measured stream, so a partitioner fitted to the
    // first half goes maximally out of balance. The `--repartition on` arm
    // must adopt at least one plan mid-run (a migration epoch: quiesce,
    // partitioner swap, shard-state migration); the off arm is its baseline
    // and doubles as the "flag off leaves the counters untouched" check.
    let drift_shift = 2_000_000_000i64; // 2x the uniform key scale: disjoint
    let drifting: Vec<Tuple> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i >= tuples.len() / 2 {
                Tuple::new(t.side, t.seq, t.key + drift_shift)
            } else {
                *t
            }
        })
        .collect();
    let first_half_sample: Vec<i64> = drifting[..drifting.len() / 2]
        .iter()
        .step_by((drifting.len() / 8192).max(1))
        .map(|t| t.key)
        .collect();
    for &shards in &shard_counts {
        if shards <= 1 {
            continue; // drift adoption needs a sharded, range-routed engine
        }
        for repartition in [false, true] {
            let stats = run_parallel_sharded(
                SharedIndexKind::PimTree,
                w,
                w,
                2,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                batched,
                opts.shard().with_shards(shards).with_partition_index(true),
                opts.drift().with_repartition(repartition),
                Some(RangePartitioner::from_key_sample(
                    shards,
                    &first_half_sample,
                )),
                predicate,
                &drifting,
                false,
            );
            println!(
                "perf_smoke pim_tree drift shards={shards} repartition={repartition}: \
                 {:.4} Mtps (epochs {}, moved {}, stall {:.1}us)",
                stats.million_tuples_per_second(),
                stats.migration.epochs,
                stats.migration.tuples_moved(),
                stats.migration.stall_micros()
            );
            if repartition {
                assert!(
                    stats.migration.epochs >= 1,
                    "the drifting workload must adopt at least one repartition plan"
                );
                assert!(
                    stats.migration.tuples_moved() > 0,
                    "a full key-range shift must migrate shard state"
                );
                // Stall-cause attribution tiles every quiesce, so the
                // per-cause decomposition must reproduce the total stall
                // (within 1%, the acceptance bound; exact by construction).
                let cause_sum: u64 = StallCause::ALL
                    .iter()
                    .map(|&c| stats.migration.stall_cause_nanos(c))
                    .sum();
                let total = stats.migration.stall_nanos;
                assert!(
                    (cause_sum as f64 - total as f64).abs() <= total as f64 * 0.01,
                    "stall causes ({cause_sum}ns) must sum to the total stall ({total}ns)"
                );
            } else {
                assert_eq!(
                    stats.migration.epochs, 0,
                    "--repartition off must leave the migration counters untouched"
                );
            }
            entries.push(entry_json("pim_tree_drift", batched, 2, &stats));
        }
    }
    // Flight-recorder overhead gate: the engine with telemetry armed must
    // stay within 5% of the telemetry-off throughput. Single-core CI
    // containers see run-to-run drift well past 5%, so the gate measures
    // interleaved rounds (one run per mode, adjacent in time) and keeps the
    // best observation per mode, stopping as soon as counters-best clears
    // the bound: a genuine, persistent overhead regression fails every
    // round, while scheduler noise only costs extra rounds.
    const OVERHEAD_MIN_ROUNDS: usize = 2;
    const OVERHEAD_MAX_ROUNDS: usize = 7;
    let overhead_modes = [
        TelemetryMode::Off,
        TelemetryMode::Counters,
        TelemetryMode::Full,
    ];
    let mut overhead_best = [0.0f64; 3];
    let mut overhead_rounds = 0usize;
    while overhead_rounds < OVERHEAD_MAX_ROUNDS {
        for (arm, &mode) in overhead_modes.iter().enumerate() {
            let stats = run_parallel_instrumented(
                SharedIndexKind::PimTree,
                w,
                w,
                2,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                batched,
                opts.shard().with_shards(1).with_partition_index(false),
                DriftConfig::default(),
                None,
                0.0,
                TelemetryConfig::default().with_mode(mode),
                None,
                predicate,
                &tuples,
                false,
            );
            overhead_best[arm] = overhead_best[arm].max(stats.million_tuples_per_second());
        }
        overhead_rounds += 1;
        if overhead_rounds >= OVERHEAD_MIN_ROUNDS && overhead_best[1] >= 0.95 * overhead_best[0] {
            break;
        }
    }
    let counters_vs_off = overhead_best[1] / overhead_best[0];
    let full_vs_off = overhead_best[2] / overhead_best[0];
    println!(
        "perf_smoke telemetry overhead: counters {counters_vs_off:.4}x off, \
         full {full_vs_off:.4}x off ({overhead_rounds} rounds)"
    );
    assert!(
        counters_vs_off >= 0.95,
        "telemetry counters mode must stay within 5% of off \
         ({counters_vs_off:.4}x after {overhead_rounds} interleaved rounds)"
    );

    let speedup_1t = if mtps_1t[1] > 0.0 {
        mtps_1t[0] / mtps_1t[1]
    } else {
        0.0
    };
    println!("perf_smoke pim_tree batched/scalar speedup at 1T: {speedup_1t:.3}x");
    let interleaved_vs_batched_1t = if mtps_1t[0] > 0.0 {
        best_interleaved_1t / mtps_1t[0]
    } else {
        0.0
    };
    println!(
        "perf_smoke pim_tree interleaved/batched speedup at 1T: \
         {interleaved_vs_batched_1t:.3}x (simd {})",
        simd::active_level().label()
    );

    let ring = opts.ring();
    let shard = opts.shard();
    let drift = opts.drift();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel_ibwj_ring\",\n",
            "  \"window_exp\": {},\n",
            "  \"tuples\": {},\n",
            "  \"task_size\": {},\n",
            "  \"host\": {{\"cores\": {}, \"numa_nodes_simulated\": {}, ",
            "\"arch\": \"{}\", \"os\": \"{}\", \"simd\": \"{}\"}},\n",
            "  \"engine\": {{\"merge_policy\": \"non_blocking\", ",
            "\"ring\": {{\"capacity\": {}, \"ingest_target\": {}, \"spin\": {}, ",
            "\"yield\": {}, \"park_us\": {}}}, ",
            "\"probe\": {{\"batch\": {}, \"prefetch_dist\": {}, ",
            "\"interleave_swept\": {:?}}}, ",
            "\"shard\": {{\"shards_swept\": {:?}, \"steal_batch\": {}, ",
            "\"steal_threshold\": {}, \"partition_index_swept\": true}}, ",
            "\"drift\": {{\"repartition_swept\": {}, \"window\": {}, ",
            "\"imbalance_trigger\": {:.2}, \"cost_gate\": {:.2}}}}},\n",
            "  \"batched_vs_scalar_1t_speedup\": {:.4},\n",
            "  \"interleaved_vs_batched_1t_speedup\": {:.4},\n",
            "  \"interleave_caveat\": \"best interleaved ring width at 1 thread ",
            "vs the batched descent; AMAC gains come from overlapping cache ",
            "misses, so re-measure on a multicore host whose index spills ",
            "past LLC before reading this as the paper's figure\",\n",
            "  \"telemetry_overhead\": {{\"counters_vs_off\": {:.4}, ",
            "\"full_vs_off\": {:.4}, \"rounds\": {}}},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        opts.max_exp,
        tuples.len(),
        opts.task_size,
        cores,
        numa_nodes_simulated,
        std::env::consts::ARCH,
        std::env::consts::OS,
        simd::active_level().label(),
        ring.capacity,
        ring.ingest_target,
        ring.spin_limit,
        ring.yield_limit,
        ring.park_micros,
        batched.batch,
        batched.prefetch_dist,
        interleave_widths,
        shard_counts,
        shard.steal_batch,
        shard.steal_threshold,
        shard_counts.iter().any(|&s| s > 1),
        drift.window,
        drift.imbalance_trigger,
        drift.cost_gate,
        speedup_1t,
        interleaved_vs_batched_1t,
        counters_vs_off,
        full_vs_off,
        overhead_rounds,
        entries.join(",\n"),
    );
    let path = "BENCH_parallel.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
