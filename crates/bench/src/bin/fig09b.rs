//! Figure 9b: per-tuple cost breakdown (search / scan / insert / delete /
//! merge) of single-threaded IBWJ using the PIM-Tree, IM-Tree and B+-Tree,
//! for a small and a large window. The paper uses 2^17 and 2^23; the defaults
//! here are 2^14 and 2^17 (override with `--min-exp` / `--max-exp`).

use pimtree_bench::harness::*;
use pimtree_common::{BandPredicate, IndexKind, JoinConfig, Step, Tuple};
use pimtree_join::build_single_threaded;
use pimtree_workload::KeyDistribution;

fn breakdown_row(
    kind: IndexKind,
    w: usize,
    tuples: &[Tuple],
    predicate: BandPredicate,
) -> Vec<String> {
    // Instrumented run: build the operator directly so instrumentation can be
    // enabled through the dedicated constructor path.
    let config = JoinConfig::symmetric(w, kind).with_pim(pim_config(w));
    let mut op = instrumented(kind, &config, predicate);
    let warmup = (2 * w).min(tuples.len());
    op.run(&tuples[..warmup], false);
    let (stats, _) = op.run(&tuples[warmup..], false);
    // The breakdown counts every processed tuple (warm-up included), so its
    // own tuple counter is the right denominator.
    let b = stats.breakdown.clone();
    Step::ALL
        .iter()
        .map(|&s| format!("{:.1}", b.per_tuple_nanos(s)))
        .collect()
}

fn instrumented(
    kind: IndexKind,
    config: &JoinConfig,
    predicate: BandPredicate,
) -> Box<dyn pimtree_join::SingleThreadJoin> {
    use pimtree_join::{BTreeAdapter, IbwjOperator, ImTreeAdapter, PimTreeAdapter};
    let w = config.window_r;
    let pim = config.pim;
    match kind {
        IndexKind::BTree => {
            Box::new(IbwjOperator::new(w, w, predicate, BTreeAdapter::new).with_instrumentation())
        }
        IndexKind::ImTree => Box::new(
            IbwjOperator::new(w, w, predicate, || ImTreeAdapter::new(pim)).with_instrumentation(),
        ),
        IndexKind::PimTree => Box::new(
            IbwjOperator::new(w, w, predicate, || PimTreeAdapter::new(pim)).with_instrumentation(),
        ),
        other => {
            // Fall back to the factory (uninstrumented) for completeness.
            build_single_threaded(&JoinConfig::symmetric(w, other), predicate, false)
        }
    }
}

fn main() {
    let opts = RunOpts::parse(14, 17);
    print_header(
        "fig09b",
        "per-tuple step cost of single-threaded IBWJ (ns/tuple)",
        &[
            "index",
            "window_exp",
            "search",
            "scan",
            "insert",
            "delete",
            "merge",
        ],
    );
    for exp in [opts.min_exp, opts.max_exp] {
        let w = 1usize << exp;
        let n = opts.tuples_for(w);
        let (tuples, predicate) = two_way_workload(
            n + 2 * w,
            w,
            2.0,
            KeyDistribution::uniform(),
            50.0,
            opts.seed,
        );
        for kind in [IndexKind::PimTree, IndexKind::ImTree, IndexKind::BTree] {
            let cols = breakdown_row(kind, w, &tuples, predicate);
            let mut row = vec![kind.to_string(), exp.to_string()];
            row.extend(cols);
            print_row(&row);
        }
    }
}
