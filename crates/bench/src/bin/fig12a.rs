//! Figure 12a: scalability of the parallel IBWJ using the PIM-Tree with the
//! number of threads, for two-way join and self-join, compared against the
//! single-threaded implementation without concurrency control.

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(16, 16);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (two_way, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );
    let (self_tuples, self_predicate) =
        self_join_workload(n + 2 * w, w, 2.0, KeyDistribution::uniform(), opts.seed);

    print_header(
        "fig12a",
        &format!(
            "thread scalability of parallel IBWJ with PIM-Tree (w = 2^{}, Mtps)",
            opts.max_exp
        ),
        &[
            "threads",
            "two_way_with_cc",
            "self_join_with_cc",
            "two_way_no_cc",
            "self_join_no_cc",
        ],
    );
    // "Without concurrency control": the plain single-threaded operator.
    let st_pim = pim_config(w).with_merge_ratio(1.0 / 8.0);
    let no_cc_two_way = run_single(
        IndexKind::PimTree,
        w,
        2,
        st_pim,
        predicate,
        &two_way,
        2 * w,
        false,
    );
    let no_cc_self = run_single(
        IndexKind::PimTree,
        w,
        2,
        st_pim,
        self_predicate,
        &self_tuples,
        2 * w,
        true,
    );
    for threads in 1..=opts.threads {
        let two = run_parallel_ring(
            SharedIndexKind::PimTree,
            w,
            w,
            threads,
            opts.task_size,
            pim_config(w),
            opts.ring(),
            opts.probe(),
            predicate,
            &two_way,
            false,
        );
        let slf = run_parallel_ring(
            SharedIndexKind::PimTree,
            w,
            w,
            threads,
            opts.task_size,
            pim_config(w),
            opts.ring(),
            opts.probe(),
            self_predicate,
            &self_tuples,
            true,
        );
        print_row(&[
            threads.to_string(),
            mtps(&two),
            mtps(&slf),
            mtps(&no_cc_two_way),
            mtps(&no_cc_self),
        ]);
    }
}
