//! Extension study (no paper figure): multidimensional band join.
//!
//! Sweeps the Z-order range budget of the multidimensional PIM-Tree
//! (`pimtree-multidim`) for a 2-D band join and reports throughput and the
//! observed match rate. A small budget means few index probes but many false
//! positives filtered after decoding; a large budget means an almost exact box
//! decomposition at the cost of more index descents. The match rate must be
//! identical for every budget — the decomposition only over-approximates, the
//! exact coordinate filter makes results budget-invariant.

use std::time::Instant;

use pimtree_bench::harness::{print_header, print_row, RunOpts};
use pimtree_common::{PimConfig, StreamSide};
use pimtree_multidim::{MdBandPredicate, MdTuple, MultiDimIbwj};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(n: usize, seed: u64) -> Vec<MdTuple<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = [0u64; 2];
    (0..n)
        .map(|_| {
            let side = if rng.gen::<bool>() {
                StreamSide::R
            } else {
                StreamSide::S
            };
            let seq = seqs[side.index()];
            seqs[side.index()] += 1;
            MdTuple {
                side,
                seq,
                point: [rng.gen::<u16>(), rng.gen::<u16>()],
            }
        })
        .collect()
}

fn main() {
    let opts = RunOpts::parse(13, 13);
    let w = 1usize << opts.max_exp;
    let n = 4 * w;
    let tuples = workload(n, opts.seed);
    // A band of +-600 grid cells per dimension over a uniform 2^16 x 2^16
    // domain yields a low single-digit match rate at w = 2^13.
    let predicate = MdBandPredicate::new([600u16, 600]);

    print_header(
        "ext_multidim",
        &format!(
            "2-D band join: throughput vs Z-order range budget (w = 2^{}, {} tuples)",
            opts.max_exp, n
        ),
        &["range_budget", "mtps", "observed_match_rate"],
    );
    for budget in [1usize, 4, 16, 64, 256] {
        let mut op = MultiDimIbwj::with_pim_config_and_budget(
            w,
            predicate,
            PimConfig::for_window(w),
            budget,
        );
        let start = Instant::now();
        let results = op.run(&tuples);
        let elapsed = start.elapsed();
        print_row(&[
            budget.to_string(),
            format!("{:.4}", n as f64 / elapsed.as_secs_f64() / 1e6),
            format!("{:.2}", results.len() as f64 / n as f64),
        ]);
    }
}
