//! Figure 13a: distribution of insert operations across the PIM-Tree's
//! sub-indexes while the key distribution drifts (shifting Gaussian with
//! drift speed r). The paper plots the full normalised histogram; this
//! harness prints its summary statistics per drift speed: the share of
//! inserts hitting the hottest sub-index, the normalised maximum, and the
//! fraction of sub-indexes that receive (almost) no inserts.

use pimtree_bench::harness::*;
use pimtree_core::PimTree;
use pimtree_workload::{KeyDistribution, ShiftingGaussian};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = RunOpts::parse(16, 16);
    let w = 1usize << opts.max_exp;
    print_header(
        "fig13a",
        &format!(
            "insert skew across PIM-Tree sub-indexes under drift (w = 2^{})",
            opts.max_exp
        ),
        &[
            "r",
            "partitions",
            "top1_share",
            "max_over_mean",
            "zero_fraction",
        ],
    );
    for r in [0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0] {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let drift = ShiftingGaussian::scaled(r, w, 4 * w, w);
        let keys = drift.generate(&mut rng);
        let _ = KeyDistribution::gaussian_paper();
        let pim = PimTree::new(pim_config(w).with_insertion_depth(4));
        // Phase 1: stationary Gaussian fills the window; merge so the
        // partition ranges adapt to it.
        for (i, &k) in keys[..w].iter().enumerate() {
            pim.insert(k, i as u64);
            if pim.needs_merge() {
                pim.merge((i + 1).saturating_sub(w) as u64);
            }
        }
        pim.reset_insert_histogram();
        // Phase 2: the drifting portion; keep merging as the window slides.
        for (i, &k) in keys[w..w + 4 * w].iter().enumerate() {
            let seq = (w + i) as u64;
            pim.insert(k, seq);
            if pim.needs_merge() {
                pim.merge((seq + 1).saturating_sub(w as u64));
            }
        }
        let hist = pim.insert_histogram();
        let total: u64 = hist.iter().sum();
        let partitions = hist.len().max(1);
        let mean = total as f64 / partitions as f64;
        let max = *hist.iter().max().unwrap_or(&0) as f64;
        let zero = hist.iter().filter(|&&c| (c as f64) < mean * 0.01).count();
        print_row(&[
            format!("{r:.1}"),
            partitions.to_string(),
            format!("{:.3}", if total > 0 { max / total as f64 } else { 0.0 }),
            format!("{:.1}", if mean > 0.0 { max / mean } else { 0.0 }),
            format!("{:.3}", zero as f64 / partitions as f64),
        ]);
    }
}
