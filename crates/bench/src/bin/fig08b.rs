//! Figure 8b: single-threaded IBWJ throughput using the chained index
//! (B-chain and IB-chain) for varying chain lengths, against a single
//! B+-Tree. The paper uses w = 2^20; the default here is smaller so the sweep
//! finishes quickly (override with `--max-exp`).

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(16, 16);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (tuples, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );
    let pim = pim_config(w);

    print_header(
        "fig08b",
        &format!(
            "chained-index throughput vs chain length (w = 2^{}, Mtps)",
            opts.max_exp
        ),
        &["chain_length", "btree", "b_chain", "ib_chain"],
    );
    let btree = run_single(
        IndexKind::BTree,
        w,
        2,
        pim,
        predicate,
        &tuples,
        2 * w,
        false,
    );
    for chain_length in 2..=16usize {
        let b = run_single(
            IndexKind::BChain,
            w,
            chain_length,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let ib = run_single(
            IndexKind::IbChain,
            w,
            chain_length,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        print_row(&[chain_length.to_string(), mtps(&btree), mtps(&b), mtps(&ib)]);
    }
}
