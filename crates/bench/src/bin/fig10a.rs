//! Figure 10a: single-threaded IBWJ throughput with B+-Tree, IM-Tree and
//! PIM-Tree for varying window sizes.

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(12, 17);
    print_header(
        "fig10a",
        "single-threaded IBWJ throughput by index (Mtps)",
        &["window_exp", "btree", "im_tree", "pim_tree"],
    );
    for exp in opts.window_exps() {
        let w = 1usize << exp;
        let n = opts.tuples_for(w);
        let (tuples, predicate) = two_way_workload(
            n + 2 * w,
            w,
            2.0,
            KeyDistribution::uniform(),
            50.0,
            opts.seed,
        );
        // Single-threaded runs use the empirically good merge ratio of 1/8
        // (Figures 9c/9d); the multithreaded default of 1 is suboptimal here.
        let pim = pim_config(w).with_merge_ratio(1.0 / 8.0);
        let b = run_single(
            IndexKind::BTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let im = run_single(
            IndexKind::ImTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let p = run_single(
            IndexKind::PimTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        print_row(&[exp.to_string(), mtps(&b), mtps(&im), mtps(&p)]);
    }
}
