//! Figure 9a: parallel IBWJ throughput using the PIM-Tree for merge ratios
//! 2^-6 … 1, over several window sizes.

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 17);
    let exps: Vec<u32> = opts.window_exps().into_iter().step_by(2).collect();
    let header: Vec<String> = std::iter::once("merge_ratio_exp".to_string())
        .chain(exps.iter().map(|e| format!("w2e{e}")))
        .collect();
    print_header(
        "fig09a",
        "parallel IBWJ with PIM-Tree vs merge ratio (Mtps)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for ratio_exp in (0..=6).rev() {
        let merge_ratio = 1.0 / f64::from(1 << ratio_exp);
        let mut row = vec![format!("-{ratio_exp}")];
        for &exp in &exps {
            let w = 1usize << exp;
            let n = opts.tuples_for(w);
            let (tuples, predicate) = two_way_workload(
                n + 2 * w,
                w,
                2.0,
                KeyDistribution::uniform(),
                50.0,
                opts.seed,
            );
            let pim = pim_config(w).with_merge_ratio(merge_ratio);
            let stats = run_parallel(
                SharedIndexKind::PimTree,
                w,
                w,
                opts.threads,
                opts.task_size,
                pim,
                predicate,
                &tuples,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
