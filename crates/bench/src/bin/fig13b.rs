//! Figure 13b: multithreaded index-based self-join throughput using the
//! PIM-Tree while the key distribution drifts (shifting Gaussian, drift
//! speed r). The paper plots throughput over time; this harness reports the
//! throughput of each of the three drift phases (stationary, drifting,
//! re-stationary) per drift speed.

use pimtree_bench::harness::*;
use pimtree_common::{BandPredicate, Tuple};
use pimtree_join::SharedIndexKind;
use pimtree_workload::{calibrate_diff, KeyDistribution, ShiftingGaussian};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = RunOpts::parse(16, 16);
    let w = 1usize << opts.max_exp;
    let diff = calibrate_diff(KeyDistribution::gaussian_paper(), w, 2.0, opts.seed);
    let predicate = BandPredicate::new(diff);
    print_header(
        "fig13b",
        &format!(
            "parallel self-join with PIM-Tree under drifting keys (w = 2^{}, Mtps)",
            opts.max_exp
        ),
        &[
            "r",
            "phase1_stationary",
            "phase2_drifting",
            "phase3_recovered",
        ],
    );
    for r in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let drift = ShiftingGaussian::scaled(r, 2 * w, 4 * w, 2 * w);
        let keys = drift.generate(&mut rng);
        let tuples: Vec<Tuple> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Tuple::r(i as u64, k))
            .collect();
        // Run each phase separately (each run re-fills its window during the
        // first w tuples of the phase, which slightly understates absolute
        // throughput but preserves the relative effect of the drift speed).
        let phases = [&tuples[..2 * w], &tuples[2 * w..6 * w], &tuples[6 * w..]];
        let mut row = vec![format!("{r:.1}")];
        for phase in phases {
            let stats = run_parallel_ring(
                SharedIndexKind::PimTree,
                w,
                w,
                opts.threads,
                opts.task_size,
                pim_config(w).with_insertion_depth(4),
                opts.ring(),
                opts.probe(),
                predicate,
                phase,
                true,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
