//! Figure 12c: index-based self-join throughput for varying window sizes:
//! single-threaded B+-Tree and PIM-Tree vs multithreaded Bw-Tree and
//! PIM-Tree.

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(12, 17);
    print_header(
        "fig12c",
        "index-based self-join throughput (Mtps)",
        &[
            "window_exp",
            "st_btree",
            "st_pim_tree",
            "mt_bw_tree",
            "mt_pim_tree",
        ],
    );
    for exp in opts.window_exps() {
        let w = 1usize << exp;
        let n = opts.tuples_for(w);
        let (tuples, predicate) =
            self_join_workload(n + 2 * w, w, 2.0, KeyDistribution::uniform(), opts.seed);
        let st_pim_cfg = pim_config(w).with_merge_ratio(1.0 / 8.0);
        let st_b = run_single(
            IndexKind::BTree,
            w,
            2,
            st_pim_cfg,
            predicate,
            &tuples,
            2 * w,
            true,
        );
        let st_p = run_single(
            IndexKind::PimTree,
            w,
            2,
            st_pim_cfg,
            predicate,
            &tuples,
            2 * w,
            true,
        );
        let mt_bw = run_parallel_ring(
            SharedIndexKind::BwTree,
            w,
            w,
            opts.threads,
            opts.task_size,
            pim_config(w),
            opts.ring(),
            opts.probe(),
            predicate,
            &tuples,
            true,
        );
        let mt_p = run_parallel_ring(
            SharedIndexKind::PimTree,
            w,
            w,
            opts.threads,
            opts.task_size,
            pim_config(w),
            opts.ring(),
            opts.probe(),
            predicate,
            &tuples,
            true,
        );
        print_row(&[
            exp.to_string(),
            mtps(&st_b),
            mtps(&st_p),
            mtps(&mt_bw),
            mtps(&mt_p),
        ]);
    }
}
