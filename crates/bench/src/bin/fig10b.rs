//! Figure 10b: IBWJ throughput as a function of the match rate (band width),
//! for single-threaded B+-Tree / IM-Tree / PIM-Tree and multithreaded
//! PIM-Tree. The paper uses w = 2^20; the default here is smaller.

use pimtree_bench::harness::*;
use pimtree_common::IndexKind;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(16, 16);
    let w = 1usize << opts.max_exp;
    print_header(
        "fig10b",
        &format!(
            "IBWJ throughput vs match rate (w = 2^{}, Mtps)",
            opts.max_exp
        ),
        &[
            "match_rate_exp",
            "btree",
            "im_tree",
            "pim_tree",
            "pim_tree_mt",
        ],
    );
    for rate_exp in [-4i32, -2, 0, 2, 4, 6, 8, 10] {
        let match_rate = 2f64.powi(rate_exp);
        let n = opts.tuples_for(w);
        let (tuples, predicate) = two_way_workload(
            n + 2 * w,
            w,
            match_rate,
            KeyDistribution::uniform(),
            50.0,
            opts.seed,
        );
        let pim = pim_config(w).with_merge_ratio(1.0 / 8.0);
        let b = run_single(
            IndexKind::BTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let im = run_single(
            IndexKind::ImTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let p = run_single(
            IndexKind::PimTree,
            w,
            2,
            pim,
            predicate,
            &tuples,
            2 * w,
            false,
        );
        let mt = run_parallel(
            SharedIndexKind::PimTree,
            w,
            w,
            opts.threads,
            opts.task_size,
            pim_config(w),
            predicate,
            &tuples,
            false,
        );
        print_row(&[
            rate_exp.to_string(),
            mtps(&b),
            mtps(&im),
            mtps(&p),
            mtps(&mt),
        ]);
    }
}
