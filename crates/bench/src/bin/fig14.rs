//! Figure 14 (appendix): cost of one PIM-Tree merge operation — merging the
//! live tuples of TS and TI into a new immutable B+-Tree — for varying window
//! sizes. The cost is expected to grow linearly with the window.

use pimtree_bench::harness::*;
use pimtree_core::PimTree;
use pimtree_workload::KeyDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = RunOpts::parse(14, 20);
    print_header(
        "fig14",
        "PIM-Tree merge cost vs window size",
        &["window_exp", "merge_seconds", "entries_merged"],
    );
    let dist = KeyDistribution::uniform();
    for exp in opts.window_exps() {
        let w = 1usize << exp;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let pim = PimTree::new(pim_config(w));
        // Fill TS with one window and TI with another (merge ratio 1), then
        // measure the merge that combines them while expiring the older half.
        for i in 0..w as u64 {
            pim.insert(dist.sample(&mut rng), i);
        }
        pim.merge(0);
        for i in 0..w as u64 {
            pim.insert(dist.sample(&mut rng), w as u64 + i);
        }
        let report = pim.merge(w as u64);
        print_row(&[
            exp.to_string(),
            format!("{:.6}", report.duration.as_secs_f64()),
            report.new_len.to_string(),
        ]);
    }
}
