//! Figure 8d: parallel IBWJ throughput using the PIM-Tree for insertion
//! depths 1–4, over varying window sizes.

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 17);
    print_header(
        "fig08d",
        "parallel IBWJ with PIM-Tree vs insertion depth (Mtps)",
        &["window_exp", "di1", "di2", "di3", "di4"],
    );
    for exp in opts.window_exps() {
        let w = 1usize << exp;
        let n = opts.tuples_for(w);
        let (tuples, predicate) = two_way_workload(
            n + 2 * w,
            w,
            2.0,
            KeyDistribution::uniform(),
            50.0,
            opts.seed,
        );
        let mut row = vec![exp.to_string()];
        for di in 1..=4usize {
            let pim = pim_config(w).with_insertion_depth(di);
            let stats = run_parallel(
                SharedIndexKind::PimTree,
                w,
                w,
                opts.threads,
                opts.task_size,
                pim,
                predicate,
                &tuples,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
