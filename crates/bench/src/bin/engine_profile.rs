//! Diagnostic profile of the parallel IBWJ engine: where worker wall-clock
//! time goes (task acquisition, result generation, index update, propagation,
//! idle back-off, merging) as the number of threads grows, plus the lock-free
//! task ring's contention counters (claim-CAS retries, ingest-token and
//! drain-token collisions, idle back-off stage mix).
//!
//! This binary is not tied to a specific paper figure; it backs the
//! engine-scaling notes in `docs/ARCHITECTURE.md` and is the tool used to verify
//! that task distribution and edge-tuple bookkeeping stay off the per-tuple
//! critical path. Sweep the ring itself with `--ring-cap= --ingest-target=
//! --spin= --yield= --park-us=`, the batched CSS group probe with
//! `--probe-batch=on|off --prefetch-dist=` (`--interleave=K` switches the
//! descent to the AMAC interleaved ring; the descent-step histogram and the
//! SIMD/scalar intra-node search split print after each row), and the
//! sharded ring layer with
//! `--shards= --steal-batch= --steal-threshold=` (shards > 1 routes
//! ingestion by key range and reports steal/remote-traffic counters).
//! `--partition-index=on` additionally partitions the index and window state
//! per shard (the `ShardStore` layer) and reports its probe fan-out and
//! simulated store-traffic counters. `--repartition=on` (with
//! `--migration-mode=epoch|incremental` and `--handoff-budget=`) turns on
//! drift-driven repartitioning and reports the migration columns (mode,
//! epochs, handoff steps, worst stall); `--arrival-rate=` paces ingestion
//! open-loop and reports the arrival-latency tail (p99).
//!
//! The engine flight recorder is always armed here (at least `counters`
//! mode; `--telemetry=full` adds phase histograms). After each CSV row the
//! binary renders the recorder's per-phase table (events, time, percent of
//! recorded time, mean) and a per-shard gauge table from the final sample
//! of a short-interval JSONL trace — ring occupancy per shard, unindexed
//! suffix and window sizes, drift imbalance — as `#`-prefixed comment lines
//! so CSV consumers are unaffected. `--telemetry-out=PATH` keeps the traces
//! (one per swept thread count, at `PATH.<threads>t`); without it the trace
//! goes to a scratch file that is removed after rendering.

use pimtree_bench::harness::*;
use pimtree_common::{IndexKind, JoinConfig, MigrationMode, TelemetryMode};
use pimtree_join::{ParallelIbwj, SharedIndexKind};
use pimtree_numa::RangePartitioner;
use pimtree_telemetry::{EnginePhase, TelemetryReport};
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(18, 18);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (tuples, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );

    print_header(
        "engine_profile",
        &format!(
            "parallel IBWJ phase breakdown and ring contention (w = 2^{}, {} tuples, task size {}, ring {:?}, probe {:?}, shard {:?})",
            opts.max_exp,
            tuples.len(),
            opts.task_size,
            opts.ring(),
            opts.probe(),
            opts.shard()
        ),
        &[
            "threads",
            "mtps",
            "acquire_pct",
            "generate_pct",
            "update_pct",
            "propagate_pct",
            "idle_pct",
            "merges",
            "merge_ms",
            "mean_latency_us",
            "loaded_mb",
            "recorder_events",
            "claim_retries_per_task",
            "mean_task_size",
            "ingest_contended",
            "drain_contended",
            "idle_spin",
            "idle_yield",
            "idle_park",
            "probe_batches",
            "mean_probe_batch",
            "probe_dedup_rate",
            "nodes_prefetched",
            "interleaved_batches",
            "mean_descent_steps",
            "simd_search_rate",
            "shards",
            "steal_tasks",
            "stolen_tuples",
            "steal_fraction",
            "shard_remote_fraction",
            "shard_full_stalls",
            "partition_index",
            "store_shards",
            "mean_probe_fanout",
            "single_shard_probes",
            "store_remote_fraction",
            "simulated_store_cost",
            "migration_mode",
            "migration_epochs",
            "handoff_steps",
            "max_stall_us",
            "arrival_p99_us",
        ],
    );
    let mut sweep = vec![1, 2, 4, 8];
    if opts.threads > 0 && !sweep.contains(&opts.threads) {
        sweep.push(opts.threads);
    }
    // One partitioner for the whole sweep, from a bounded strided key
    // subsample — the partitioner only needs N − 1 quantiles, not every key.
    let partitioner = (opts.shards > 1).then(|| {
        let step = (tuples.len() / 4096).max(1);
        let sample: Vec<i64> = tuples.iter().step_by(step).map(|t| t.key).collect();
        RangePartitioner::from_key_sample(opts.shards, &sample)
    });
    // The profiler's whole point is attribution, so the flight recorder is
    // always at least in `counters` mode here; `--telemetry=full` upgrades.
    let telemetry_mode = if opts.telemetry == TelemetryMode::Off {
        TelemetryMode::Counters
    } else {
        opts.telemetry
    };
    let trace_base = telemetry_out_from_args();
    for threads in sweep {
        let mut config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(opts.task_size)
            .with_pim(pim_config(w))
            .with_ring(opts.ring())
            .with_probe(opts.probe())
            .with_shard(opts.shard())
            .with_drift(opts.drift())
            .with_telemetry(opts.telemetry().with_mode(telemetry_mode));
        config.window_r = w;
        config.window_s = w;
        let trace_path = match &trace_base {
            Some(base) => format!("{base}.{threads}t"),
            None => std::env::temp_dir()
                .join(format!("engine_profile_trace_{threads}t.jsonl"))
                .to_string_lossy()
                .into_owned(),
        };
        let mut op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false)
            .with_telemetry_out(&trace_path);
        if let Some(p) = &partitioner {
            op = op.with_partitioner(p.clone());
        }
        if opts.arrival_rate > 0.0 {
            op = op.with_open_loop(opts.arrival_rate);
        }
        let (stats, _) = op.run_with_warmup(&tuples, (2 * w).min(tuples.len() / 2));
        let total = stats.phase.total().as_secs_f64().max(1e-12);
        let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / total);
        print_row(&[
            threads.to_string(),
            mtps(&stats),
            pct(stats.phase.acquire),
            pct(stats.phase.generate),
            pct(stats.phase.update),
            pct(stats.phase.propagate),
            pct(stats.phase.idle),
            stats.merges.to_string(),
            format!("{:.1}", stats.merge_time.as_secs_f64() * 1e3),
            format!("{:.1}", stats.latency.mean_micros()),
            format!("{:.1}", stats.bytes_loaded as f64 / 1e6),
            stats
                .telemetry
                .as_ref()
                .map_or(0, |r| r.totals.events)
                .to_string(),
            format!("{:.3}", stats.ring.claim_contention()),
            format!("{:.2}", stats.ring.mean_task_size()),
            stats.ring.ingest_token_contended.to_string(),
            stats.ring.drain_contended.to_string(),
            stats.ring.idle_spins.to_string(),
            stats.ring.idle_yields.to_string(),
            stats.ring.idle_parks.to_string(),
            stats.probe.batches.to_string(),
            format!("{:.2}", stats.probe.mean_batch_size()),
            format!("{:.3}", stats.probe.dedup_rate()),
            stats.probe.nodes_prefetched.to_string(),
            stats.probe.interleaved_batches.to_string(),
            format!("{:.2}", stats.probe.mean_descent_steps()),
            format!("{:.3}", stats.probe.simd_search_rate()),
            stats.shard.shards.to_string(),
            stats.shard.steal_tasks.to_string(),
            stats.shard.stolen_tuples.to_string(),
            format!("{:.3}", stats.shard.steal_fraction()),
            format!("{:.3}", stats.shard.remote_fraction()),
            stats.shard.shard_full_stalls.to_string(),
            stats.store.partitioned.to_string(),
            stats.store.store_shards.max(1).to_string(),
            format!("{:.3}", stats.store.mean_probe_fanout()),
            stats.store.single_shard_probes.to_string(),
            format!("{:.3}", stats.store.remote_fraction()),
            stats.store.simulated_store_cost.to_string(),
            match opts.migration_mode {
                MigrationMode::Epoch => "epoch".to_string(),
                MigrationMode::Incremental => "incremental".to_string(),
            },
            stats.migration.epochs.to_string(),
            stats.migration.handoff_steps.to_string(),
            format!("{:.1}", stats.migration.max_stall_micros()),
            format!(
                "{:.1}",
                stats
                    .arrival_latency
                    .as_ref()
                    .map_or(0.0, |h| h.p99_micros())
            ),
        ]);
        if let Some(report) = &stats.telemetry {
            render_phase_table(report, threads);
        }
        render_descent_histogram(&stats.probe);
        render_gauge_table(&trace_path);
        if trace_base.is_none() {
            let _ = std::fs::remove_file(&trace_path);
            let _ = std::fs::remove_file(format!("{trace_path}.prom"));
        }
    }
}

/// Renders the flight recorder's per-phase totals as `#`-prefixed comment
/// lines (CSV consumers skip them).
fn render_phase_table(report: &TelemetryReport, threads: usize) {
    let total = report.totals.total_nanos().max(1);
    println!(
        "# flight recorder ({threads} threads, mode {}): phase count time_ms pct mean_us",
        report.mode
    );
    for phase in EnginePhase::ALL {
        let nanos = report.totals.nanos(phase);
        let count = report.totals.count(phase);
        let mean_us = if count == 0 {
            0.0
        } else {
            nanos as f64 / count as f64 / 1_000.0
        };
        println!(
            "#   {:<6} {:>12} {:>10.2} {:>5.1} {:>9.3}",
            phase.label(),
            count,
            nanos as f64 / 1e6,
            100.0 * nanos as f64 / total as f64,
            mean_us
        );
    }
}

/// Renders the batched/interleaved descent-step histogram (one bucket per
/// steps-per-descent count, the last bucket saturating) plus the SIMD /
/// scalar intra-node search split, as `#`-prefixed comment lines.
fn render_descent_histogram(probe: &pimtree_common::ProbeCounters) {
    let descents: u64 = probe.descent_steps.iter().sum();
    if descents == 0 {
        return;
    }
    println!(
        "# descent steps ({} descents, mean {:.2}; node searches simd/scalar {}/{}):",
        descents,
        probe.mean_descent_steps(),
        probe.simd_node_searches,
        probe.scalar_node_searches,
    );
    for (bucket, &count) in probe.descent_steps.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let label = if bucket + 1 == pimtree_common::ProbeCounters::DESCENT_STEP_BUCKETS {
            format!("{}+", bucket + 1)
        } else {
            format!("{}", bucket + 1)
        };
        println!(
            "#   {label:>3} steps {count:>12} ({:.1}%)",
            100.0 * count as f64 / descents as f64
        );
    }
}

/// Renders the per-shard gauge table from the final sample of the run's
/// JSONL trace. The trace format is the flat one-line-per-sample JSON that
/// `pimtree_telemetry::GaugeSample::to_json` emits, so scalar fields can be
/// sliced out positionally without a JSON parser.
fn render_gauge_table(trace_path: &str) {
    let Ok(trace) = std::fs::read_to_string(trace_path) else {
        return;
    };
    let Some(last) = trace.lines().rev().find(|l| !l.trim().is_empty()) else {
        return;
    };
    let field = |key: &str| -> String {
        let pat = format!("\"{key}\": ");
        let Some(start) = last.find(&pat).map(|i| i + pat.len()) else {
            return "?".to_string();
        };
        let rest = &last[start..];
        match rest.find([',', '}']) {
            Some(end) => rest[..end].trim().to_string(),
            None => "?".to_string(),
        }
    };
    let occupancy: Vec<String> = last
        .find("\"shard_occupancy\": [")
        .and_then(|i| {
            let rest = &last[i + "\"shard_occupancy\": [".len()..];
            let close = rest.find(']')?;
            Some(
                rest[..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            )
        })
        .unwrap_or_default();
    println!(
        "# final gauges (sample {} at {}us): in_flight {}, unindexed r/s {}/{}, \
         window r/s {}/{}, claims local/stolen {}/{}, drift imbalance {}, handoff {}/{}",
        field("seq"),
        field("elapsed_us"),
        field("in_flight"),
        field("unindexed_r"),
        field("unindexed_s"),
        field("window_r"),
        field("window_s"),
        field("local_claims"),
        field("stolen_claims"),
        field("drift_imbalance"),
        field("handoff_steps_done"),
        field("handoff_steps_total"),
    );
    for (shard, occ) in occupancy.iter().enumerate() {
        println!("#   shard {shard}: ring occupancy {occ}");
    }
}
