//! Diagnostic profile of the parallel IBWJ engine: where worker wall-clock
//! time goes (task acquisition, result generation, index update, propagation,
//! idle back-off, merging) as the number of threads grows, plus the lock-free
//! task ring's contention counters (claim-CAS retries, ingest-token and
//! drain-token collisions, idle back-off stage mix).
//!
//! This binary is not tied to a specific paper figure; it backs the
//! engine-scaling notes in `docs/ARCHITECTURE.md` and is the tool used to verify
//! that task distribution and edge-tuple bookkeeping stay off the per-tuple
//! critical path. Sweep the ring itself with `--ring-cap= --ingest-target=
//! --spin= --yield= --park-us=`, the batched CSS group probe with
//! `--probe-batch=on|off --prefetch-dist=`, and the sharded ring layer with
//! `--shards= --steal-batch= --steal-threshold=` (shards > 1 routes
//! ingestion by key range and reports steal/remote-traffic counters).
//! `--partition-index=on` additionally partitions the index and window state
//! per shard (the `ShardStore` layer) and reports its probe fan-out and
//! simulated store-traffic counters. `--repartition=on` (with
//! `--migration-mode=epoch|incremental` and `--handoff-budget=`) turns on
//! drift-driven repartitioning and reports the migration columns (mode,
//! epochs, handoff steps, worst stall); `--arrival-rate=` paces ingestion
//! open-loop and reports the arrival-latency tail (p99).

use pimtree_bench::harness::*;
use pimtree_common::{IndexKind, JoinConfig, MigrationMode};
use pimtree_join::{ParallelIbwj, SharedIndexKind};
use pimtree_numa::RangePartitioner;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(18, 18);
    let w = 1usize << opts.max_exp;
    let n = opts.tuples_for(w);
    let (tuples, predicate) = two_way_workload(
        n + 2 * w,
        w,
        2.0,
        KeyDistribution::uniform(),
        50.0,
        opts.seed,
    );

    print_header(
        "engine_profile",
        &format!(
            "parallel IBWJ phase breakdown and ring contention (w = 2^{}, {} tuples, task size {}, ring {:?}, probe {:?}, shard {:?})",
            opts.max_exp,
            tuples.len(),
            opts.task_size,
            opts.ring(),
            opts.probe(),
            opts.shard()
        ),
        &[
            "threads",
            "mtps",
            "acquire_pct",
            "generate_pct",
            "update_pct",
            "propagate_pct",
            "idle_pct",
            "merges",
            "merge_ms",
            "mean_latency_us",
            "loaded_mb",
            "search_ns_per_tuple",
            "scan_ns_per_tuple",
            "claim_retries_per_task",
            "mean_task_size",
            "ingest_contended",
            "drain_contended",
            "idle_spin",
            "idle_yield",
            "idle_park",
            "probe_batches",
            "mean_probe_batch",
            "probe_dedup_rate",
            "nodes_prefetched",
            "shards",
            "steal_tasks",
            "stolen_tuples",
            "steal_fraction",
            "shard_remote_fraction",
            "shard_full_stalls",
            "partition_index",
            "store_shards",
            "mean_probe_fanout",
            "single_shard_probes",
            "store_remote_fraction",
            "simulated_store_cost",
            "migration_mode",
            "migration_epochs",
            "handoff_steps",
            "max_stall_us",
            "arrival_p99_us",
        ],
    );
    let mut sweep = vec![1, 2, 4, 8];
    if opts.threads > 0 && !sweep.contains(&opts.threads) {
        sweep.push(opts.threads);
    }
    // One partitioner for the whole sweep, from a bounded strided key
    // subsample — the partitioner only needs N − 1 quantiles, not every key.
    let partitioner = (opts.shards > 1).then(|| {
        let step = (tuples.len() / 4096).max(1);
        let sample: Vec<i64> = tuples.iter().step_by(step).map(|t| t.key).collect();
        RangePartitioner::from_key_sample(opts.shards, &sample)
    });
    for threads in sweep {
        let mut config = JoinConfig::symmetric(w, IndexKind::PimTree)
            .with_threads(threads)
            .with_task_size(opts.task_size)
            .with_pim(pim_config(w))
            .with_ring(opts.ring())
            .with_probe(opts.probe())
            .with_shard(opts.shard())
            .with_drift(opts.drift());
        config.window_r = w;
        config.window_s = w;
        let mut op = ParallelIbwj::new(config, predicate, SharedIndexKind::PimTree, false);
        if let Some(p) = &partitioner {
            op = op.with_partitioner(p.clone());
        }
        if opts.arrival_rate > 0.0 {
            op = op.with_open_loop(opts.arrival_rate);
        }
        let (stats, _) = op.run_with_warmup(&tuples, (2 * w).min(tuples.len() / 2));
        let total = stats.phase.total().as_secs_f64().max(1e-12);
        let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / total);
        print_row(&[
            threads.to_string(),
            mtps(&stats),
            pct(stats.phase.acquire),
            pct(stats.phase.generate),
            pct(stats.phase.update),
            pct(stats.phase.propagate),
            pct(stats.phase.idle),
            stats.merges.to_string(),
            format!("{:.1}", stats.merge_time.as_secs_f64() * 1e3),
            format!("{:.1}", stats.latency.mean_micros()),
            format!("{:.1}", stats.bytes_loaded as f64 / 1e6),
            format!(
                "{:.0}",
                stats
                    .breakdown
                    .total(pimtree_common::Step::Search)
                    .as_nanos() as f64
                    / stats.tuples.max(1) as f64
            ),
            format!(
                "{:.0}",
                stats.breakdown.total(pimtree_common::Step::Scan).as_nanos() as f64
                    / stats.tuples.max(1) as f64
            ),
            format!("{:.3}", stats.ring.claim_contention()),
            format!("{:.2}", stats.ring.mean_task_size()),
            stats.ring.ingest_token_contended.to_string(),
            stats.ring.drain_contended.to_string(),
            stats.ring.idle_spins.to_string(),
            stats.ring.idle_yields.to_string(),
            stats.ring.idle_parks.to_string(),
            stats.probe.batches.to_string(),
            format!("{:.2}", stats.probe.mean_batch_size()),
            format!("{:.3}", stats.probe.dedup_rate()),
            stats.probe.nodes_prefetched.to_string(),
            stats.shard.shards.to_string(),
            stats.shard.steal_tasks.to_string(),
            stats.shard.stolen_tuples.to_string(),
            format!("{:.3}", stats.shard.steal_fraction()),
            format!("{:.3}", stats.shard.remote_fraction()),
            stats.shard.shard_full_stalls.to_string(),
            stats.store.partitioned.to_string(),
            stats.store.store_shards.max(1).to_string(),
            format!("{:.3}", stats.store.mean_probe_fanout()),
            stats.store.single_shard_probes.to_string(),
            format!("{:.3}", stats.store.remote_fraction()),
            stats.store.simulated_store_cost.to_string(),
            match opts.migration_mode {
                MigrationMode::Epoch => "epoch".to_string(),
                MigrationMode::Incremental => "incremental".to_string(),
            },
            stats.migration.epochs.to_string(),
            stats.migration.handoff_steps.to_string(),
            format!("{:.1}", stats.migration.max_stall_micros()),
            format!(
                "{:.1}",
                stats
                    .arrival_latency
                    .as_ref()
                    .map_or(0.0, |h| h.p99_micros())
            ),
        ]);
    }
}
