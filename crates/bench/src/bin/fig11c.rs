//! Figure 11c: parallel IBWJ throughput using the PIM-Tree with asymmetric
//! window sizes (w_r × w_s grid).

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(13, 17);
    let exps: Vec<u32> = opts.window_exps().into_iter().step_by(2).collect();
    let header: Vec<String> = std::iter::once("wr_exp".to_string())
        .chain(exps.iter().map(|e| format!("ws2e{e}")))
        .collect();
    print_header(
        "fig11c",
        "parallel IBWJ with PIM-Tree and asymmetric window sizes (Mtps)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &wr_exp in &exps {
        let mut row = vec![wr_exp.to_string()];
        for &ws_exp in &exps {
            let wr = 1usize << wr_exp;
            let ws = 1usize << ws_exp;
            let w_max = wr.max(ws);
            let n = opts.tuples_for(w_max);
            let (tuples, predicate) = two_way_workload(
                n + 2 * w_max,
                w_max,
                2.0,
                KeyDistribution::uniform(),
                50.0,
                opts.seed,
            );
            let stats = run_parallel(
                SharedIndexKind::PimTree,
                wr,
                ws,
                opts.threads,
                opts.task_size,
                pim_config(w_max),
                predicate,
                &tuples,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
