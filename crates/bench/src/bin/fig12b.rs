//! Figure 12b: parallel IBWJ throughput using the PIM-Tree for different
//! (stationary) tuple value distributions: uniform, Gaussian and two Gamma
//! parameterisations, with the band predicate re-calibrated per distribution
//! so the match rate stays at 2.

use pimtree_bench::harness::*;
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn main() {
    let opts = RunOpts::parse(14, 17);
    print_header(
        "fig12b",
        "parallel IBWJ with PIM-Tree by key distribution (Mtps)",
        &[
            "window_exp",
            "uniform",
            "gaussian",
            "gamma_k3_t3",
            "gamma_k1_t5",
        ],
    );
    let dists = [
        KeyDistribution::uniform(),
        KeyDistribution::gaussian_paper(),
        KeyDistribution::gamma_3_3(),
        KeyDistribution::gamma_1_5(),
    ];
    for exp in opts.window_exps() {
        let w = 1usize << exp;
        let n = opts.tuples_for(w);
        let mut row = vec![exp.to_string()];
        for dist in dists {
            let (tuples, predicate) = two_way_workload(n + 2 * w, w, 2.0, dist, 50.0, opts.seed);
            let stats = run_parallel_ring(
                SharedIndexKind::PimTree,
                w,
                w,
                opts.threads,
                opts.task_size,
                pim_config(w),
                opts.ring(),
                opts.probe(),
                predicate,
                &tuples,
                false,
            );
            row.push(mtps(&stats));
        }
        print_row(&row);
    }
}
