//! Criterion benchmarks of end-to-end join throughput for the main operator
//! configurations (single-threaded B+-Tree / PIM-Tree, parallel PIM-Tree on
//! the lock-free task ring, including a deliberately tiny ring that maximises
//! wraparound and coordination pressure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pimtree_bench::harness::{
    pim_config, run_parallel, run_parallel_ring, run_single, two_way_workload,
};
use pimtree_common::{IndexKind, ProbeConfig, RingConfig};
use pimtree_join::SharedIndexKind;
use pimtree_workload::KeyDistribution;

fn bench_join(c: &mut Criterion) {
    let w = 1usize << 15;
    let n = 1usize << 17;
    let (tuples, predicate) =
        two_way_workload(n + 2 * w, w, 2.0, KeyDistribution::uniform(), 50.0, 42);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8)
        .min(8);

    let mut group = c.benchmark_group("join_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("single_btree", w), |b| {
        b.iter(|| {
            run_single(
                IndexKind::BTree,
                w,
                2,
                pim_config(w).with_merge_ratio(0.125),
                predicate,
                &tuples,
                2 * w,
                false,
            )
            .results
        })
    });
    group.bench_function(BenchmarkId::new("single_pim", w), |b| {
        b.iter(|| {
            run_single(
                IndexKind::PimTree,
                w,
                2,
                pim_config(w).with_merge_ratio(0.125),
                predicate,
                &tuples,
                2 * w,
                false,
            )
            .results
        })
    });
    group.bench_function(BenchmarkId::new("parallel_pim", w), |b| {
        b.iter(|| {
            run_parallel(
                SharedIndexKind::PimTree,
                w,
                w,
                threads,
                8,
                pim_config(w),
                predicate,
                &tuples,
                false,
            )
            .results
        })
    });
    // A 256-slot ring wraps ~hundreds of times per run: this measures the
    // task ring's coordination overhead in isolation from cache effects.
    group.bench_function(BenchmarkId::new("parallel_pim_tiny_ring", w), |b| {
        b.iter(|| {
            run_parallel_ring(
                SharedIndexKind::PimTree,
                w,
                w,
                threads,
                8,
                pim_config(w),
                RingConfig::default().with_capacity(256),
                ProbeConfig::default(),
                predicate,
                &tuples,
                false,
            )
            .results
        })
    });
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
