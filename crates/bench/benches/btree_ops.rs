//! Criterion micro-benchmarks for the mutable B+-Tree: the building block of
//! the single-index baseline and of the PIM-Tree's mutable partitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pimtree_btree::BTreeIndex;
use pimtree_common::KeyRange;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn populated(n: usize, seed: u64) -> (BTreeIndex, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = BTreeIndex::new();
    let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1_000_000_000)).collect();
    for (i, &k) in keys.iter().enumerate() {
        tree.insert(k, i as u64);
    }
    (tree, keys)
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);
    for &n in &[1usize << 14, 1 << 17] {
        let (tree, keys) = populated(n, 7);
        group.bench_with_input(BenchmarkId::new("point_probe", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| {
                let k = keys[rng.gen_range(0..keys.len())];
                tree.range_collect(KeyRange::new(k - 100, k + 100)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("sliding_insert_delete", n), &n, |b, _| {
            let (mut tree, keys) = populated(n, 13);
            let mut next = n as u64;
            b.iter(|| {
                let idx = (next as usize) % keys.len();
                tree.insert(keys[idx].wrapping_add(1), next);
                tree.remove(keys[idx], (next - n as u64) % next.max(1));
                next += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
