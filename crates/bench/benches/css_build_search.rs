//! Criterion micro-benchmarks for the immutable B+-Tree (CSS-Tree): bulk
//! construction (the merge's dominant cost) and point lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pimtree_btree::Entry;
use pimtree_css::CssTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted_entries(n: usize) -> Vec<Entry> {
    (0..n as i64).map(|i| Entry::new(i * 3, i as u64)).collect()
}

fn bench_css(c: &mut Criterion) {
    let mut group = c.benchmark_group("css_tree");
    group.sample_size(20);
    for &n in &[1usize << 16, 1 << 20] {
        let entries = sorted_entries(n);
        group.bench_with_input(BenchmarkId::new("bulk_build", n), &n, |b, _| {
            b.iter(|| CssTree::from_sorted(entries.clone()).len())
        });
        let tree = CssTree::from_sorted(entries);
        group.bench_with_input(BenchmarkId::new("lower_bound", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| tree.lower_bound_key(rng.gen_range(0..(3 * n as i64))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_css);
criterion_main!(benches);
