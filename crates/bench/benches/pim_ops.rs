//! Criterion micro-benchmarks for the PIM-Tree: inserts, range probes and the
//! merge operation that rebuilds the immutable component.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pimtree_common::{KeyRange, PimConfig};
use pimtree_core::PimTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn populated(w: usize, seed: u64) -> PimTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let pim = PimTree::new(PimConfig::for_window(w));
    for i in 0..w as u64 {
        pim.insert(rng.gen_range(0..1_000_000_000), i);
    }
    pim.merge(0);
    pim
}

fn bench_pim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pim_tree");
    group.sample_size(15);
    for &w in &[1usize << 16, 1 << 18] {
        let pim = populated(w, 5);
        group.bench_with_input(BenchmarkId::new("insert", w), &w, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut seq = w as u64;
            b.iter(|| {
                pim.insert(rng.gen_range(0..1_000_000_000), seq);
                seq += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("range_probe", w), &w, |b, _| {
            let mut rng = StdRng::seed_from_u64(10);
            b.iter(|| {
                let k = rng.gen_range(0..1_000_000_000i64);
                let mut hits = 0usize;
                pim.range_live(KeyRange::new(k - 1000, k + 1000), 0, |_| hits += 1);
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("merge", w), &w, |b, _| {
            b.iter_with_setup(
                || {
                    let pim = populated(w, 21);
                    let mut rng = StdRng::seed_from_u64(22);
                    for i in 0..(w / 4) as u64 {
                        pim.insert(rng.gen_range(0..1_000_000_000), w as u64 + i);
                    }
                    pim
                },
                |pim| pim.merge((w / 4) as u64),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pim);
criterion_main!(benches);
