//! Implementation of the chained index.

use std::collections::VecDeque;

use pimtree_btree::{bulk, BTreeIndex, Entry};
use pimtree_common::{Key, KeyRange, Seq};
use pimtree_css::CssTree;

/// Which data structure archived sub-indexes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainVariant {
    /// Archived sub-indexes stay mutable B+-Trees.
    BChain,
    /// Archived sub-indexes are converted into immutable B+-Trees.
    IbChain,
}

#[derive(Debug)]
enum ArchivedSub {
    BTree(BTreeIndex),
    Css(CssTree),
}

impl ArchivedSub {
    fn len(&self) -> usize {
        match self {
            ArchivedSub::BTree(t) => t.len(),
            ArchivedSub::Css(t) => t.len(),
        }
    }

    fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, f: F) {
        match self {
            ArchivedSub::BTree(t) => t.range_for_each(range, f),
            ArchivedSub::Css(t) => {
                t.range_for_each(range, f);
            }
        }
    }

    fn footprint_bytes(&self) -> usize {
        match self {
            ArchivedSub::BTree(t) => t.stats().total_bytes(),
            ArchivedSub::Css(t) => t.stats().total_bytes(),
        }
    }
}

/// Structural statistics of a [`ChainedIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainedStats {
    /// Entries in the active sub-index.
    pub active_entries: usize,
    /// Entries across archived sub-indexes.
    pub archived_entries: usize,
    /// Number of archived sub-indexes currently in the chain.
    pub archived_count: usize,
    /// Approximate payload bytes across all sub-indexes.
    pub total_bytes: usize,
}

/// A chained sliding-window index of length `L`.
///
/// The index is single-threaded; the paper evaluates it only against the
/// single-threaded join baselines.
#[derive(Debug)]
pub struct ChainedIndex {
    variant: ChainVariant,
    chain_length: usize,
    sub_capacity: usize,
    btree_fanout: usize,
    active: BTreeIndex,
    /// Oldest sub-index at the front.
    archived: VecDeque<ArchivedSub>,
}

impl ChainedIndex {
    /// Creates a chained index for a window of `window_size` tuples using
    /// `chain_length` sub-indexes (`L >= 2`).
    ///
    /// Each sub-index covers `window_size / (chain_length - 1)` tuples so that
    /// the `L - 1` archived sub-indexes together span (at least) one full
    /// window.
    pub fn new(variant: ChainVariant, window_size: usize, chain_length: usize) -> Self {
        Self::with_fanout(
            variant,
            window_size,
            chain_length,
            pimtree_btree::DEFAULT_FANOUT,
        )
    }

    /// Like [`ChainedIndex::new`] with an explicit B+-Tree fan-out.
    pub fn with_fanout(
        variant: ChainVariant,
        window_size: usize,
        chain_length: usize,
        btree_fanout: usize,
    ) -> Self {
        assert!(chain_length >= 2, "chain length must be at least 2");
        assert!(window_size > 0, "window size must be positive");
        let sub_capacity = (window_size / (chain_length - 1)).max(1);
        ChainedIndex {
            variant,
            chain_length,
            sub_capacity,
            btree_fanout,
            active: BTreeIndex::with_fanout(btree_fanout),
            archived: VecDeque::new(),
        }
    }

    /// Which archival variant this chain uses.
    pub fn variant(&self) -> ChainVariant {
        self.variant
    }

    /// Configured chain length `L`.
    pub fn chain_length(&self) -> usize {
        self.chain_length
    }

    /// Capacity of each sub-index.
    pub fn sub_capacity(&self) -> usize {
        self.sub_capacity
    }

    /// Total entries across all sub-indexes (including not-yet-disposed
    /// expired tuples).
    pub fn len(&self) -> usize {
        self.active.len() + self.archived.iter().map(ArchivedSub::len).sum::<usize>()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a tuple into the active sub-index, archiving it (and disposing
    /// of the oldest archived sub-index) when it reaches capacity.
    pub fn insert(&mut self, key: Key, seq: Seq) {
        self.active.insert(key, seq);
        if self.active.len() >= self.sub_capacity {
            self.archive_active();
        }
    }

    fn archive_active(&mut self) {
        let full = std::mem::replace(&mut self.active, BTreeIndex::with_fanout(self.btree_fanout));
        let archived = match self.variant {
            ChainVariant::BChain => {
                // Rebuild compactly; content is identical, shape is packed.
                let entries = full.to_sorted_vec();
                ArchivedSub::BTree(bulk::from_sorted_with_fanout(entries, self.btree_fanout))
            }
            ChainVariant::IbChain => ArchivedSub::Css(CssTree::from_sorted(full.to_sorted_vec())),
        };
        self.archived.push_back(archived);
        // Coarse-grained disposal: the chain keeps at most L - 1 archived
        // sub-indexes; the oldest one only contains expired tuples by now.
        while self.archived.len() > self.chain_length - 1 {
            self.archived.pop_front();
        }
    }

    /// Calls `f` for every entry with key in `range` across the whole chain.
    /// Entries of expired tuples may still be reported (they live in the
    /// oldest archived sub-index until it is disposed of); the caller filters
    /// them by sequence number, exactly as the paper's Step 1 does.
    pub fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, mut f: F) {
        self.active.range_for_each(range, &mut f);
        for sub in &self.archived {
            sub.range_for_each(range, &mut f);
        }
    }

    /// Collects all entries with key in `range` across the whole chain.
    pub fn range_collect(&self, range: KeyRange) -> Vec<Entry> {
        let mut out = Vec::new();
        self.range_for_each(range, |e| out.push(e));
        out
    }

    /// Number of sub-indexes a lookup currently has to consult.
    pub fn lookup_width(&self) -> usize {
        1 + self.archived.len()
    }

    /// Structural statistics.
    pub fn stats(&self) -> ChainedStats {
        ChainedStats {
            active_entries: self.active.len(),
            archived_entries: self.archived.iter().map(ArchivedSub::len).sum(),
            archived_count: self.archived.len(),
            total_bytes: self.active.stats().total_bytes()
                + self
                    .archived
                    .iter()
                    .map(ArchivedSub::footprint_bytes)
                    .sum::<usize>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(variant: ChainVariant, window: usize, chain: usize, n: usize) -> ChainedIndex {
        let mut idx = ChainedIndex::new(variant, window, chain);
        for i in 0..n as i64 {
            idx.insert((i * 7919) % 100_000, i as Seq);
        }
        idx
    }

    #[test]
    fn sub_capacity_spans_the_window() {
        let idx = ChainedIndex::new(ChainVariant::BChain, 1000, 5);
        assert_eq!(idx.sub_capacity(), 250);
        let idx = ChainedIndex::new(ChainVariant::BChain, 1000, 2);
        assert_eq!(idx.sub_capacity(), 1000);
    }

    #[test]
    fn archival_keeps_at_most_l_minus_one_archived() {
        for variant in [ChainVariant::BChain, ChainVariant::IbChain] {
            let idx = fill(variant, 1000, 3, 10_000);
            assert!(idx.stats().archived_count <= 2, "variant {variant:?}");
            assert!(idx.lookup_width() <= 3);
            // Total entries never exceed (L archived+active) * capacity.
            assert!(idx.len() <= 3 * idx.sub_capacity());
        }
    }

    #[test]
    fn chain_retains_at_least_a_full_window_of_recent_tuples() {
        let window = 1200;
        let n = 10_000usize;
        let idx = fill(ChainVariant::IbChain, window, 4, n);
        // Every live tuple (the last `window` arrivals) must be findable.
        let mut found = std::collections::HashSet::new();
        idx.range_for_each(KeyRange::new(i64::MIN, i64::MAX), |e| {
            found.insert(e.seq);
        });
        for seq in (n - window) as u64..n as u64 {
            assert!(found.contains(&seq), "live tuple {seq} missing from chain");
        }
    }

    #[test]
    fn range_queries_agree_with_a_single_btree() {
        let window = 600;
        let n = 3000usize;
        let chained = fill(ChainVariant::BChain, window, 3, n);
        let ib = fill(ChainVariant::IbChain, window, 3, n);
        // Reference: a plain B+-Tree over the same inserts with exact expiry.
        let mut reference = BTreeIndex::new();
        for i in 0..n as i64 {
            reference.insert((i * 7919) % 100_000, i as Seq);
        }
        let earliest_live = (n - window) as u64;
        let range = KeyRange::new(10_000, 30_000);
        let expected: std::collections::BTreeSet<(i64, u64)> = reference
            .range_collect(range)
            .into_iter()
            .filter(|e| e.seq >= earliest_live)
            .map(|e| (e.key, e.seq))
            .collect();
        for (name, idx) in [("b-chain", &chained), ("ib-chain", &ib)] {
            let got: std::collections::BTreeSet<(i64, u64)> = idx
                .range_collect(range)
                .into_iter()
                .filter(|e| e.seq >= earliest_live)
                .map(|e| (e.key, e.seq))
                .collect();
            assert_eq!(got, expected, "{name} disagrees with the reference index");
        }
    }

    #[test]
    fn longer_chains_mean_wider_lookups() {
        let short = fill(ChainVariant::IbChain, 1024, 2, 8192);
        let long = fill(ChainVariant::IbChain, 1024, 8, 8192);
        assert!(long.lookup_width() > short.lookup_width());
    }

    #[test]
    fn empty_chain_lookups() {
        let idx = ChainedIndex::new(ChainVariant::IbChain, 100, 3);
        assert!(idx.is_empty());
        assert!(idx.range_collect(KeyRange::new(0, 1000)).is_empty());
        assert_eq!(idx.lookup_width(), 1);
    }

    #[test]
    fn stats_add_up() {
        let idx = fill(ChainVariant::BChain, 500, 3, 2000);
        let s = idx.stats();
        assert_eq!(s.active_entries + s.archived_entries, idx.len());
        assert!(s.total_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn chain_length_one_rejected() {
        let _ = ChainedIndex::new(ChainVariant::BChain, 100, 1);
    }
}
