//! The chained sliding-window index (§2.2.2 of the paper).
//!
//! The chained index partitions the sliding window into `L - 1` archived
//! intervals plus one *active* interval. New tuples are inserted into the
//! active sub-index; once it reaches its capacity it is archived and a fresh
//! active sub-index is started, while the oldest archived sub-index — which by
//! then contains only expired tuples — is dropped wholesale. This trades
//! cheap, coarse-grained tuple disposal for more expensive lookups, because a
//! range query has to consult every sub-index in the chain.
//!
//! Two variants are evaluated in Figure 8b:
//!
//! * **B-chain** — every sub-index (active and archived) is a mutable
//!   B+-Tree;
//! * **IB-chain** — the active sub-index is a mutable B+-Tree, but archived
//!   sub-indexes are converted into immutable B+-Trees (CSS-Trees), whose
//!   higher fan-out makes chained lookups noticeably faster.

pub mod chain;

pub use chain::{ChainVariant, ChainedIndex, ChainedStats};
