//! Logical memory-traffic accounting.
//!
//! The paper's Figure 11d reports the *effective memory bandwidth* (GB/s of
//! loads and stores) of the parallel window join, measured with hardware
//! counters on the authors' Xeon. Hardware PMUs are not portable, so this
//! module provides the documented substitution: index and window operations
//! report the bytes they logically read and write, and the benchmark harness
//! divides the accumulated totals by wall-clock time. The absolute numbers
//! differ from DRAM traffic (caches are invisible to logical accounting), but
//! the quantity the figure actually discusses — the load/store *ratio* and its
//! trend as threads are added — is preserved.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters of logically loaded and stored bytes.
///
/// Counters use relaxed atomics: they are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct MemTraffic {
    loaded: AtomicU64,
    stored: AtomicU64,
}

impl MemTraffic {
    /// Creates a zeroed counter pair.
    pub const fn new() -> Self {
        MemTraffic {
            loaded: AtomicU64::new(0),
            stored: AtomicU64::new(0),
        }
    }

    /// Records `bytes` logically loaded.
    #[inline]
    pub fn load(&self, bytes: u64) {
        self.loaded.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` logically stored.
    #[inline]
    pub fn store(&self, bytes: u64) {
        self.stored.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total bytes loaded so far.
    pub fn loaded_bytes(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Total bytes stored so far.
    pub fn stored_bytes(&self) -> u64 {
        self.stored.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.loaded.store(0, Ordering::Relaxed);
        self.stored.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(loaded, stored)` bytes.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.loaded_bytes(), self.stored_bytes())
    }

    /// Fraction of the total traffic that is store traffic (`0` when idle).
    ///
    /// The paper reports 22% store share for single-threaded execution,
    /// decreasing to 16% with 16 threads.
    pub fn store_share(&self) -> f64 {
        let (l, s) = self.snapshot();
        let total = l + s;
        if total == 0 {
            0.0
        } else {
            s as f64 / total as f64
        }
    }

    /// Effective bandwidth pair `(load GB/s, store GB/s)` over `elapsed_secs`.
    pub fn gigabytes_per_second(&self, elapsed_secs: f64) -> (f64, f64) {
        if elapsed_secs <= 0.0 {
            return (0.0, 0.0);
        }
        let (l, s) = self.snapshot();
        const GB: f64 = 1_000_000_000.0;
        (l as f64 / GB / elapsed_secs, s as f64 / GB / elapsed_secs)
    }
}

/// Process-wide counters used by index implementations that do not carry an
/// explicit [`MemTraffic`] handle.
pub static GLOBAL_TRAFFIC: MemTraffic = MemTraffic::new();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let t = MemTraffic::new();
        t.load(100);
        t.load(50);
        t.store(30);
        assert_eq!(t.loaded_bytes(), 150);
        assert_eq!(t.stored_bytes(), 30);
        assert_eq!(t.snapshot(), (150, 30));
        t.reset();
        assert_eq!(t.snapshot(), (0, 0));
    }

    #[test]
    fn store_share_is_ratio_of_total() {
        let t = MemTraffic::new();
        assert_eq!(t.store_share(), 0.0);
        t.load(80);
        t.store(20);
        assert!((t.store_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_is_bytes_over_time() {
        let t = MemTraffic::new();
        t.load(2_000_000_000);
        t.store(1_000_000_000);
        let (l, s) = t.gigabytes_per_second(2.0);
        assert!((l - 1.0).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
        assert_eq!(t.gigabytes_per_second(0.0), (0.0, 0.0));
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let t = std::sync::Arc::new(MemTraffic::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.load(8);
                    t.store(4);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.loaded_bytes(), 4 * 1000 * 8);
        assert_eq!(t.stored_bytes(), 4 * 1000 * 4);
    }
}
