//! Shared building blocks for the PIM-Tree stream-join reproduction.
//!
//! This crate contains the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`types`] — keys, stream tuples, the band-join predicate and join results;
//! * [`config`] — runtime configuration for indexes and join operators;
//! * [`metrics`] — per-step cost breakdowns, throughput and latency meters
//!   (used to reproduce Figure 9b and Figure 10d of the paper);
//! * [`memtraffic`] — logical load/store byte accounting, the software
//!   substitute for the hardware memory-bandwidth counters of Figure 11d;
//! * [`simd`] — runtime-detected SIMD lower-bound kernels for intra-node
//!   search, with a guaranteed scalar fallback;
//! * [`sync`] — the synchronization facade every lock-free file imports:
//!   standard atomics and `parking_lot` locks normally, the `pimtree-check`
//!   model checker's instrumented types under `--cfg pimtree_model`;
//! * [`error`] — the shared error type.
//!
//! The paper this workspace reproduces is *"Parallel Index-based Stream Join on
//! a Multicore CPU"* (Shahvarani & Jacobsen, SIGMOD 2020).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod error;
pub mod memtraffic;
pub mod metrics;
pub mod prefetch;
pub mod simd;
pub mod sync;
pub mod types;

pub use config::{
    DriftConfig, IndexKind, JoinConfig, MergePolicy, MigrationMode, PimConfig, ProbeConfig,
    RingConfig, ShardConfig, TelemetryConfig,
};
pub use error::{Error, Result};
pub use memtraffic::MemTraffic;
pub use metrics::{
    CostBreakdown, LatencyHistogram, LatencyRecorder, ProbeCounters, Step, StepTimer,
    ThroughputMeter,
};
pub use pimtree_telemetry::TelemetryMode;
pub use prefetch::{prefetch_read, prefetch_slice, CACHE_LINE_BYTES};
pub use simd::SimdLevel;
pub use types::{BandPredicate, JoinResult, Key, KeyRange, Seq, StreamSide, Tuple};
