//! Synchronization facade: the single import point for atomics, locks and
//! scheduling hints in every lock-free file of the engine.
//!
//! Normally these are zero-cost aliases for `std::sync::atomic` and
//! `parking_lot`. Under `RUSTFLAGS="--cfg pimtree_model"` they resolve to
//! the instrumented types of [`pimtree_check`], so the *same* ring, shard
//! cursor, quiesce gate and window code runs under the deterministic model
//! checker without modification. Code that participates in a lock-free
//! protocol must go through this module — `docs/ARCHITECTURE.md` documents
//! the audit, and `CONTRIBUTING.md` requires a model test for any new
//! atomic protocol added behind it.

/// Atomic cells and memory orderings.
pub mod atomic {
    #[cfg(not(pimtree_model))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(pimtree_model)]
    pub use pimtree_check::sync::atomic::{
        AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

#[cfg(not(pimtree_model))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(pimtree_model)]
pub use pimtree_check::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Scheduling hints for spin-wait loops. Under the model checker a yield
/// deprioritises the calling virtual thread so spin loops terminate in
/// every explored schedule; in production builds these are the standard
/// library calls.
pub mod hint {
    /// Yields the current thread (scheduler-visible under the model).
    pub fn yield_now() {
        #[cfg(not(pimtree_model))]
        std::thread::yield_now();
        #[cfg(pimtree_model)]
        pimtree_check::thread::yield_now();
    }

    /// Spin-loop pause hint (also scheduler-visible under the model).
    pub fn spin_loop() {
        #[cfg(not(pimtree_model))]
        std::hint::spin_loop();
        #[cfg(pimtree_model)]
        pimtree_check::hint::spin_loop();
    }
}
