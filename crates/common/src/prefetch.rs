//! Portable software-prefetch shim.
//!
//! The batched CSS-Tree group probe (see `pimtree-cssbtree`) descends the
//! immutable index level by level for a whole task's worth of keys and wants
//! to issue prefetches for every next-level node the group will touch before
//! it gets there — the classic group-probe trick the cache-sensitive layout
//! was designed for. Rust has no stable portable prefetch intrinsic, so this
//! module wraps the x86-64 `PREFETCHT0` instruction and degrades to a no-op
//! on every other architecture: the batch descent stays correct everywhere
//! and merely loses the latency-hiding benefit.
//!
//! Prefetching is a *hint*: it never faults, even on dangling or unmapped
//! addresses, so the helpers take raw slices/pointers without any validity
//! obligation beyond what safe Rust already guarantees for references.

/// Bytes per cache line assumed when striding prefetches across a block.
///
/// 64 bytes is correct for every x86-64 and almost every AArch64 part this
/// code will run on; a wrong constant only changes how many hint
/// instructions are issued, never correctness.
pub const CACHE_LINE_BYTES: usize = 64;

/// Issues a read prefetch (to all cache levels) for the line holding `p`.
///
/// No-op on architectures other than x86-64, and under Miri (prefetch
/// intrinsics are not modelled there).
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    unsafe {
        // SAFETY: PREFETCHT0 is a hint; it cannot fault regardless of the
        // address and has no architectural side effects.
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        let _ = p;
    }
}

/// Issues read prefetches covering `slice`, one per cache line, and returns
/// the number of hint instructions issued (the same count on every
/// architecture, so statistics stay comparable across hosts).
#[inline]
pub fn prefetch_slice<T>(slice: &[T]) -> u64 {
    let bytes = std::mem::size_of_val(slice);
    if bytes == 0 {
        return 0;
    }
    let base = slice.as_ptr() as *const u8;
    let mut issued = 0u64;
    let mut offset = 0usize;
    while offset < bytes {
        // SAFETY: `offset < bytes`, so the pointer stays inside (or one line
        // past the start of) the referenced slice; and prefetch never faults.
        prefetch_read(unsafe { base.add(offset) });
        issued += 1;
        offset += CACHE_LINE_BYTES;
    }
    issued
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_safe_no_op_semantically() {
        let data = [1u64, 2, 3, 4];
        prefetch_read(data.as_ptr());
        prefetch_read(&data[3] as *const u64);
        // The data is unchanged (prefetch has no architectural effect).
        assert_eq!(data, [1, 2, 3, 4]);
    }

    #[test]
    fn slice_prefetch_counts_cache_lines() {
        let empty: [u64; 0] = [];
        assert_eq!(prefetch_slice(&empty), 0);
        // 4 * 8 = 32 bytes -> one line.
        assert_eq!(prefetch_slice(&[0u64; 4]), 1);
        // 8 * 8 = 64 bytes -> still one line from the slice start.
        assert_eq!(prefetch_slice(&[0u64; 8]), 1);
        // 9 * 8 = 72 bytes -> two lines.
        assert_eq!(prefetch_slice(&[0u64; 9]), 2);
        // 32 * 16-byte entries = 512 bytes -> eight lines.
        assert_eq!(prefetch_slice(&[(0i64, 0u64); 32]), 8);
    }
}
