//! Core value types shared across the workspace.
//!
//! The paper joins two integer-keyed streams `R` and `S` with a *band*
//! predicate `ABS(R.x - S.x) <= diff`. A tuple is identified by the stream it
//! belongs to and a monotonically increasing per-stream sequence number which
//! doubles as the sliding-window reference stored in index payloads.

use serde::{Deserialize, Serialize};

/// Join-attribute type. The paper uses 32-bit integers; we use 64-bit signed
/// integers so that drifting-distribution workloads have head-room without
/// wrap-around. [`ENTRY_BYTES_PAPER`] is used when reporting paper-comparable
/// memory footprints.
pub type Key = i64;

/// Per-stream sequence number (arrival order). Also used as the sliding-window
/// reference stored next to a key inside every index.
pub type Seq = u64;

/// Size in bytes of one index entry as configured in the paper's footprint
/// experiment (4-byte key + 4-byte window reference).
pub const ENTRY_BYTES_PAPER: usize = 8;

/// Size in bytes of one index entry as actually stored by this implementation
/// (8-byte key + 8-byte sequence number).
pub const ENTRY_BYTES_NATIVE: usize = 16;

/// Which of the two joined streams a tuple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamSide {
    /// The left stream `R`.
    R,
    /// The right stream `S`.
    S,
}

impl StreamSide {
    /// The stream joined against, i.e. the one whose window is probed when a
    /// tuple of `self` arrives.
    #[inline]
    pub fn opposite(self) -> StreamSide {
        match self {
            StreamSide::R => StreamSide::S,
            StreamSide::S => StreamSide::R,
        }
    }

    /// Stable index (0 for `R`, 1 for `S`) for array-indexed per-stream state.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StreamSide::R => 0,
            StreamSide::S => 1,
        }
    }
}

impl std::fmt::Display for StreamSide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamSide::R => write!(f, "R"),
            StreamSide::S => write!(f, "S"),
        }
    }
}

/// A streaming tuple: the join attribute plus its arrival metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Join attribute (`R.x` / `S.x` in the paper's band-join query).
    pub key: Key,
    /// Per-stream arrival sequence number; also the window reference.
    pub seq: Seq,
    /// Stream this tuple arrived on.
    pub side: StreamSide,
}

impl Tuple {
    /// Creates a new tuple.
    #[inline]
    pub fn new(side: StreamSide, seq: Seq, key: Key) -> Self {
        Tuple { key, seq, side }
    }

    /// Convenience constructor for stream `R`.
    #[inline]
    pub fn r(seq: Seq, key: Key) -> Self {
        Tuple::new(StreamSide::R, seq, key)
    }

    /// Convenience constructor for stream `S`.
    #[inline]
    pub fn s(seq: Seq, key: Key) -> Self {
        Tuple::new(StreamSide::S, seq, key)
    }
}

/// An inclusive range of keys, `[lo, hi]`, used for index range lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: Key,
    /// Inclusive upper bound.
    pub hi: Key,
}

impl KeyRange {
    /// Creates a range, normalising the bounds so that `lo <= hi`.
    #[inline]
    pub fn new(lo: Key, hi: Key) -> Self {
        if lo <= hi {
            KeyRange { lo, hi }
        } else {
            KeyRange { lo: hi, hi: lo }
        }
    }

    /// Creates the degenerate single-point range `[k, k]`.
    #[inline]
    pub fn point(k: Key) -> Self {
        KeyRange { lo: k, hi: k }
    }

    /// Whether `key` falls inside the range (bounds inclusive).
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.lo <= key && key <= self.hi
    }

    /// Number of distinct integer keys covered by the range.
    #[inline]
    pub fn width(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }
}

/// The band-join predicate `ABS(R.x - S.x) <= diff` from the paper's
/// evaluation query:
///
/// ```sql
/// SELECT * FROM R, S WHERE ABS(R.x - S.x) <= diff
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BandPredicate {
    /// Maximum absolute difference between matching keys.
    pub diff: Key,
}

impl BandPredicate {
    /// Creates a band predicate with the given half-width. `diff = 0` is an
    /// equi-join on the key.
    #[inline]
    pub fn new(diff: Key) -> Self {
        assert!(diff >= 0, "band width must be non-negative");
        BandPredicate { diff }
    }

    /// Evaluates the predicate on a pair of keys. The difference is taken in
    /// the widened domain: `a - b` itself can overflow `i64` when the keys
    /// sit at opposite ends of the key domain (e.g. `Key::MIN` vs
    /// `Key::MAX`), which a debug build turns into a panic.
    #[inline]
    pub fn matches(&self, a: Key, b: Key) -> bool {
        (a as i128 - b as i128).unsigned_abs() <= self.diff as u128
    }

    /// Key range of the *opposite* window that can match key `k`, i.e.
    /// `[k - diff, k + diff]` with saturation at the integer domain bounds.
    #[inline]
    pub fn probe_range(&self, k: Key) -> KeyRange {
        KeyRange {
            lo: k.saturating_sub(self.diff),
            hi: k.saturating_add(self.diff),
        }
    }
}

/// One joined output pair: the probing tuple and one matching tuple from the
/// opposite sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinResult {
    /// The tuple whose arrival produced this result.
    pub probe: Tuple,
    /// The matching tuple found in the opposite window.
    pub matched: Tuple,
}

impl JoinResult {
    /// Creates a join result pair.
    #[inline]
    pub fn new(probe: Tuple, matched: Tuple) -> Self {
        JoinResult { probe, matched }
    }

    /// Canonical `(r, s)` ordering of the pair regardless of which side probed.
    #[inline]
    pub fn as_r_s(&self) -> (Tuple, Tuple) {
        match self.probe.side {
            StreamSide::R => (self.probe, self.matched),
            StreamSide::S => (self.matched, self.probe),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_side_opposite_roundtrip() {
        assert_eq!(StreamSide::R.opposite(), StreamSide::S);
        assert_eq!(StreamSide::S.opposite(), StreamSide::R);
        assert_eq!(StreamSide::R.opposite().opposite(), StreamSide::R);
    }

    #[test]
    fn stream_side_indexes_are_distinct() {
        assert_eq!(StreamSide::R.index(), 0);
        assert_eq!(StreamSide::S.index(), 1);
    }

    #[test]
    fn key_range_normalises_bounds() {
        let r = KeyRange::new(10, -5);
        assert_eq!(r.lo, -5);
        assert_eq!(r.hi, 10);
        assert!(r.contains(0));
        assert!(r.contains(-5));
        assert!(r.contains(10));
        assert!(!r.contains(11));
        assert_eq!(r.width(), 16);
    }

    #[test]
    fn key_range_point() {
        let r = KeyRange::point(7);
        assert!(r.contains(7));
        assert!(!r.contains(6));
        assert_eq!(r.width(), 1);
    }

    #[test]
    fn band_predicate_matches_symmetrically() {
        let p = BandPredicate::new(3);
        assert!(p.matches(10, 13));
        assert!(p.matches(13, 10));
        assert!(p.matches(10, 10));
        assert!(!p.matches(10, 14));
        assert!(!p.matches(14, 10));
    }

    #[test]
    fn band_predicate_zero_is_equijoin() {
        let p = BandPredicate::new(0);
        assert!(p.matches(5, 5));
        assert!(!p.matches(5, 6));
    }

    #[test]
    fn band_predicate_probe_range_saturates() {
        let p = BandPredicate::new(10);
        let r = p.probe_range(Key::MAX - 3);
        assert_eq!(r.hi, Key::MAX);
        let r = p.probe_range(Key::MIN + 3);
        assert_eq!(r.lo, Key::MIN);
    }

    #[test]
    fn band_predicate_matches_across_the_whole_domain() {
        // The naive `a - b` overflows i64 for keys at opposite domain ends;
        // the widened difference must evaluate (to false) instead.
        let p = BandPredicate::new(10);
        assert!(!p.matches(Key::MIN, Key::MAX));
        assert!(!p.matches(Key::MAX, Key::MIN));
        assert!(p.matches(Key::MAX, Key::MAX - 10));
        assert!(p.matches(Key::MIN, Key::MIN + 10));
        assert!(!p.matches(Key::MIN, Key::MIN + 11));
    }

    #[test]
    fn probe_range_contains_exactly_matching_keys() {
        let p = BandPredicate::new(2);
        let r = p.probe_range(100);
        for k in 95..=105 {
            assert_eq!(r.contains(k), p.matches(100, k), "k={k}");
        }
    }

    #[test]
    fn join_result_canonical_ordering() {
        let r = Tuple::r(1, 10);
        let s = Tuple::s(2, 11);
        let from_r = JoinResult::new(r, s);
        let from_s = JoinResult::new(s, r);
        assert_eq!(from_r.as_r_s(), (r, s));
        assert_eq!(from_s.as_r_s(), (r, s));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn band_predicate_rejects_negative_width() {
        let _ = BandPredicate::new(-1);
    }
}
