//! Measurement utilities: per-step cost breakdowns, throughput and latency.
//!
//! Figure 9b of the paper splits the per-tuple cost of index-based window join
//! into *search*, *scan*, *insert*, *delete* and *merge* time. [`CostBreakdown`]
//! accumulates exactly those buckets. [`ThroughputMeter`] and
//! [`LatencyRecorder`] back the throughput/latency series of the remaining
//! figures.

use std::time::{Duration, Instant};

/// The cost buckets distinguished by the paper's step-wise analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Traversing an index from the root to the first matching leaf position.
    Search,
    /// Linearly scanning leaf entries (and the non-indexed window suffix).
    Scan,
    /// Inserting the newly arrived tuple into its window's index.
    Insert,
    /// Removing the expired tuple (incremental deletion approaches only).
    Delete,
    /// Merging the mutable component into the immutable component.
    Merge,
}

impl Step {
    /// All steps in reporting order.
    pub const ALL: [Step; 5] = [
        Step::Search,
        Step::Scan,
        Step::Insert,
        Step::Delete,
        Step::Merge,
    ];

    /// Stable array index for the step.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Step::Search => 0,
            Step::Scan => 1,
            Step::Insert => 2,
            Step::Delete => 3,
            Step::Merge => 4,
        }
    }

    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            Step::Search => "search",
            Step::Scan => "scan",
            Step::Insert => "insert",
            Step::Delete => "delete",
            Step::Merge => "merge",
        }
    }
}

/// Accumulated time and invocation counts per [`Step`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostBreakdown {
    nanos: [u64; 5],
    counts: [u64; 5],
    /// Number of tuples processed while this breakdown was recording; used to
    /// report per-tuple averages (the unit of Figure 9b).
    pub tuples: u64,
}

impl CostBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the bucket of `step` and bumps its invocation count.
    #[inline]
    pub fn record(&mut self, step: Step, d: Duration) {
        self.nanos[step.index()] += d.as_nanos() as u64;
        self.counts[step.index()] += 1;
    }

    /// Adds raw nanoseconds to the bucket of `step` (used when timing is
    /// captured externally, e.g. by a merging thread).
    #[inline]
    pub fn record_nanos(&mut self, step: Step, nanos: u64) {
        self.nanos[step.index()] += nanos;
        self.counts[step.index()] += 1;
    }

    /// Total accumulated time for `step`.
    pub fn total(&self, step: Step) -> Duration {
        Duration::from_nanos(self.nanos[step.index()])
    }

    /// Number of times `step` was recorded.
    pub fn count(&self, step: Step) -> u64 {
        self.counts[step.index()]
    }

    /// Average nanoseconds spent in `step` per processed tuple. Returns zero
    /// when no tuples have been processed.
    pub fn per_tuple_nanos(&self, step: Step) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.nanos[step.index()] as f64 / self.tuples as f64
        }
    }

    /// Sum of all buckets.
    pub fn total_all(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Merges another breakdown into this one (used to aggregate per-thread
    /// breakdowns).
    pub fn merge_from(&mut self, other: &CostBreakdown) {
        for i in 0..5 {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
        self.tuples += other.tuples;
    }
}

/// Counters of the batched CSS-Tree group probe (see `pimtree-cssbtree`),
/// recording how much of the result-generation work went through the batched
/// path and how much prefetching it issued. Filled by `PimTree::probe_batch`
/// and absorbed into the join engines' run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Batched probe calls (one per task and probe side).
    pub batches: u64,
    /// Probe keys submitted across all batches (before deduplication).
    pub batched_keys: u64,
    /// Largest single batch submitted.
    pub max_batch: u64,
    /// Keys that shared a descent with an identical earlier key in the same
    /// batch (sort + dedup hits).
    pub dedup_hits: u64,
    /// Node key blocks (inner nodes and leaf groups) software-prefetched
    /// ahead of the group descent.
    pub nodes_prefetched: u64,
    /// Probes a batched call had to answer through the scalar one-key path
    /// because the index backend has no batched probe (e.g. the Bw-Tree).
    /// Stays zero when batching is disabled: the engines then take the
    /// original scalar code path, which records nothing here.
    pub scalar_probes: u64,
    /// Mutable-partition (`TI`) locks taken by the batched probe path, which
    /// groups a batch's unique ranges per partition so every overlapping
    /// partition is locked once per batch instead of once per range.
    pub ti_partition_locks: u64,
    /// Range-over-partition probes answered by the batched `TI` path. The
    /// difference to `ti_partition_locks` is the number of lock round-trips
    /// the per-partition grouping saved.
    pub ti_range_visits: u64,
}

impl ProbeCounters {
    /// Folds another worker's counters into this one.
    pub fn merge_from(&mut self, other: &ProbeCounters) {
        self.batches += other.batches;
        self.batched_keys += other.batched_keys;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.dedup_hits += other.dedup_hits;
        self.nodes_prefetched += other.nodes_prefetched;
        self.scalar_probes += other.scalar_probes;
        self.ti_partition_locks += other.ti_partition_locks;
        self.ti_range_visits += other.ti_range_visits;
    }

    /// Mean keys per batched probe call.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_keys as f64 / self.batches as f64
        }
    }

    /// Fraction of batched keys that shared an identical earlier key's
    /// descent.
    pub fn dedup_rate(&self) -> f64 {
        if self.batched_keys == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.batched_keys as f64
        }
    }
}

/// A scoped timer that records into a [`CostBreakdown`] bucket on demand.
///
/// The timer is intentionally explicit (call [`StepTimer::finish`]) rather than
/// RAII-based so that hot paths can skip the clock reads entirely when
/// instrumentation is disabled.
#[derive(Debug)]
pub struct StepTimer {
    start: Instant,
    step: Step,
}

impl StepTimer {
    /// Starts timing `step`.
    #[inline]
    pub fn start(step: Step) -> Self {
        StepTimer {
            start: Instant::now(),
            step,
        }
    }

    /// Stops the timer and records the elapsed time into `breakdown`.
    #[inline]
    pub fn finish(self, breakdown: &mut CostBreakdown) {
        breakdown.record(self.step, self.start.elapsed());
    }

    /// Elapsed time without recording (for callers that aggregate manually).
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Tuples-per-second throughput meter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    tuples: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Starts a meter at the current instant.
    pub fn new() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            tuples: 0,
        }
    }

    /// Adds `n` processed tuples.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.tuples += n;
    }

    /// Total tuples recorded so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Elapsed wall-clock time since the meter was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Throughput in million tuples per second — the unit used on the y-axis
    /// of most figures in the paper.
    pub fn million_tuples_per_second(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs / 1.0e6
        }
    }

    /// Throughput computed against an externally supplied duration (used when
    /// the measured region is narrower than the meter's lifetime).
    pub fn million_tuples_per_second_over(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs / 1.0e6
        }
    }
}

/// Records per-tuple processing latencies and reports order statistics.
///
/// Latency is defined as in §5 ("task processing time"): the time from a tuple
/// being picked up by a worker until its join results are ready.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_nanos: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder pre-allocated for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder {
            samples_nanos: Vec::with_capacity(n),
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.samples_nanos.push(d.as_nanos() as u64);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_nanos.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_nanos.is_empty()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge_from(&mut self, other: &LatencyRecorder) {
        self.samples_nanos.extend_from_slice(&other.samples_nanos);
    }

    /// Mean latency in microseconds (the unit of Figure 10d).
    pub fn mean_micros(&self) -> f64 {
        if self.samples_nanos.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples_nanos.iter().map(|&n| n as u128).sum();
        sum as f64 / self.samples_nanos.len() as f64 / 1.0e3
    }

    /// Latency percentile (`q` in `[0, 1]`) in microseconds.
    pub fn percentile_micros(&self, q: f64) -> f64 {
        if self.samples_nanos.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_nanos.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] as f64 / 1.0e3
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> f64 {
        self.samples_nanos
            .iter()
            .max()
            .map(|&n| n as f64 / 1.0e3)
            .unwrap_or(0.0)
    }
}

/// Sub-bucket resolution of [`LatencyHistogram`]: every power-of-two octave
/// is split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantization error at `2^-SUB_BITS` (~6 %).
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Sub-linear region (values below `SUB_BUCKETS` are exact) plus one group of
/// sub-buckets per remaining octave of the `u64` nanosecond range.
const HIST_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Fixed-footprint log-bucketed latency histogram.
///
/// [`LatencyRecorder`] keeps every sample, which is exact but unbounded — an
/// open-loop run at a sustained arrival rate records one sample per tuple and
/// would grow without limit. The histogram instead spreads nanosecond values
/// over power-of-two octaves with `2^SUB_BITS` linear sub-buckets each
/// (HdrHistogram's bucketing), so recording is O(1), the footprint is a few
/// kilobytes regardless of run length, and quantiles are accurate to ~6 %
/// relative error — plenty for p50/p99/p999 tail reporting. The maximum is
/// tracked exactly so the worst observed latency is never quantized away.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    #[inline]
    fn bucket_of(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS {
            nanos as usize
        } else {
            let exp = 63 - nanos.leading_zeros(); // >= SUB_BITS
            let octave = (exp - SUB_BITS) as u64;
            let sub = (nanos >> octave) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
            (SUB_BUCKETS + octave * SUB_BUCKETS + sub) as usize
        }
    }

    /// Midpoint of a bucket's value interval (the quantile estimate).
    fn bucket_mid(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            idx
        } else {
            let octave = (idx - SUB_BUCKETS) / SUB_BUCKETS;
            let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS;
            let lo = (SUB_BUCKETS + sub) << octave;
            lo + ((1u64 << octave) >> 1)
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample given in nanoseconds.
    #[inline]
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another histogram's samples into this one.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64 / 1.0e3
        }
    }

    /// Latency quantile (`q` in `[0, 1]`) in microseconds, estimated at the
    /// covering bucket's midpoint and clamped to the exact maximum.
    pub fn percentile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested order statistic, matching LatencyRecorder's
        // nearest-rank convention over the sorted sample.
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_mid(idx).min(self.max_nanos) as f64 / 1.0e3;
            }
        }
        self.max_micros()
    }

    /// Median latency in microseconds.
    pub fn p50_micros(&self) -> f64 {
        self.percentile_micros(0.50)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_micros(&self) -> f64 {
        self.percentile_micros(0.99)
    }

    /// 99.9th-percentile latency in microseconds.
    pub fn p999_micros(&self) -> f64 {
        self.percentile_micros(0.999)
    }

    /// Maximum observed latency in microseconds (exact, not quantized).
    pub fn max_micros(&self) -> f64 {
        self.max_nanos as f64 / 1.0e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_indices_are_unique_and_labels_distinct() {
        let mut seen = [false; 5];
        for s in Step::ALL {
            assert!(!seen[s.index()], "duplicate index for {:?}", s);
            seen[s.index()] = true;
        }
        let labels: std::collections::HashSet<_> = Step::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn breakdown_accumulates_and_averages() {
        let mut b = CostBreakdown::new();
        b.record(Step::Search, Duration::from_nanos(100));
        b.record(Step::Search, Duration::from_nanos(300));
        b.record_nanos(Step::Merge, 1_000);
        b.tuples = 4;
        assert_eq!(b.total(Step::Search), Duration::from_nanos(400));
        assert_eq!(b.count(Step::Search), 2);
        assert_eq!(b.count(Step::Merge), 1);
        assert_eq!(b.count(Step::Insert), 0);
        assert!((b.per_tuple_nanos(Step::Search) - 100.0).abs() < 1e-9);
        assert!((b.per_tuple_nanos(Step::Merge) - 250.0).abs() < 1e-9);
        assert_eq!(b.total_all(), Duration::from_nanos(1_400));
    }

    #[test]
    fn breakdown_per_tuple_is_zero_without_tuples() {
        let mut b = CostBreakdown::new();
        b.record_nanos(Step::Insert, 500);
        assert_eq!(b.per_tuple_nanos(Step::Insert), 0.0);
    }

    #[test]
    fn breakdown_merge_from_adds_everything() {
        let mut a = CostBreakdown::new();
        a.record_nanos(Step::Scan, 10);
        a.tuples = 1;
        let mut b = CostBreakdown::new();
        b.record_nanos(Step::Scan, 30);
        b.record_nanos(Step::Delete, 5);
        b.tuples = 3;
        a.merge_from(&b);
        assert_eq!(a.total(Step::Scan), Duration::from_nanos(40));
        assert_eq!(a.count(Step::Scan), 2);
        assert_eq!(a.count(Step::Delete), 1);
        assert_eq!(a.tuples, 4);
    }

    #[test]
    fn step_timer_records_positive_duration() {
        let mut b = CostBreakdown::new();
        let t = StepTimer::start(Step::Insert);
        std::hint::black_box(1 + 1);
        t.finish(&mut b);
        assert_eq!(b.count(Step::Insert), 1);
    }

    #[test]
    fn throughput_meter_counts_tuples() {
        let mut m = ThroughputMeter::new();
        m.add(500);
        m.add(500);
        assert_eq!(m.tuples(), 1000);
        let mtps = m.million_tuples_per_second_over(Duration::from_millis(1));
        assert!(
            (mtps - 1.0).abs() < 1e-9,
            "1000 tuples in 1ms = 1 Mtps, got {mtps}"
        );
        assert_eq!(m.million_tuples_per_second_over(Duration::ZERO), 0.0);
    }

    #[test]
    fn latency_recorder_percentiles() {
        let mut l = LatencyRecorder::with_capacity(100);
        assert!(l.is_empty());
        assert_eq!(l.mean_micros(), 0.0);
        assert_eq!(l.percentile_micros(0.5), 0.0);
        for i in 1..=100u64 {
            l.record(Duration::from_micros(i));
        }
        assert_eq!(l.len(), 100);
        assert!((l.mean_micros() - 50.5).abs() < 1e-6);
        assert!((l.percentile_micros(0.0) - 1.0).abs() < 1e-6);
        assert!((l.percentile_micros(1.0) - 100.0).abs() < 1e-6);
        let p50 = l.percentile_micros(0.5);
        assert!((49.0..=52.0).contains(&p50), "p50 = {p50}");
        assert!((l.max_micros() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_buckets_partition_the_value_range() {
        // Every value maps into exactly one bucket whose interval contains
        // it, and bucket indices are monotone in the value.
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 7] {
                values.push((1u64 << exp).saturating_add(off << exp.saturating_sub(5)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for &v in &values {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(idx < HIST_BUCKETS, "value {v} -> bucket {idx}");
            assert!(idx >= last, "bucketing must be monotone at {v}");
            last = idx;
        }
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Sub-linear region is exact; midpoints stay within their octave's
        // ~6 % relative error above it.
        for v in [3u64, 100, 1_000, 65_537, 1 << 40] {
            let mid = LatencyHistogram::bucket_mid(LatencyHistogram::bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.07, "value {v}: midpoint {mid}, error {err}");
        }
    }

    #[test]
    fn histogram_quantiles_track_the_exact_recorder() {
        let mut exact = LatencyRecorder::new();
        let mut hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.percentile_micros(0.99), 0.0);
        // A long-tailed sample: mostly microseconds, a few milliseconds.
        for i in 1..=1000u64 {
            let nanos = if i % 100 == 0 { i * 10_000 } else { i * 10 };
            exact.record(Duration::from_nanos(nanos));
            hist.record_nanos(nanos);
        }
        assert_eq!(hist.len(), 1000);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let (e, h) = (exact.percentile_micros(q), hist.percentile_micros(q));
            let tolerance = (e * 0.07).max(0.002);
            assert!(
                (e - h).abs() <= tolerance,
                "q={q}: exact {e}, histogram {h}"
            );
        }
        assert!((hist.mean_micros() - exact.mean_micros()).abs() < 1e-6);
        assert_eq!(hist.max_micros(), exact.max_micros(), "max is exact");
        assert_eq!(hist.percentile_micros(1.0), hist.max_micros());
        // p-helpers agree with the generic quantile.
        assert_eq!(hist.p50_micros(), hist.percentile_micros(0.5));
        assert_eq!(hist.p99_micros(), hist.percentile_micros(0.99));
        assert_eq!(hist.p999_micros(), hist.percentile_micros(0.999));
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..500u64 {
            let nanos = i * 997;
            all.record_nanos(nanos);
            if i % 2 == 0 {
                a.record_nanos(nanos);
            } else {
                b.record_nanos(nanos);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.len(), all.len());
        assert_eq!(a.max_micros(), all.max_micros());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.percentile_micros(q), all.percentile_micros(q));
        }
    }

    #[test]
    fn latency_recorder_merge() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_micros(30));
        a.merge_from(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean_micros() - 20.0).abs() < 1e-6);
    }
}
