//! Measurement utilities: per-step cost breakdowns, throughput and latency.
//!
//! Figure 9b of the paper splits the per-tuple cost of index-based window join
//! into *search*, *scan*, *insert*, *delete* and *merge* time. [`CostBreakdown`]
//! accumulates exactly those buckets. [`ThroughputMeter`] and
//! [`LatencyRecorder`] back the throughput/latency series of the remaining
//! figures.

use std::time::{Duration, Instant};

/// The cost buckets distinguished by the paper's step-wise analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Traversing an index from the root to the first matching leaf position.
    Search,
    /// Linearly scanning leaf entries (and the non-indexed window suffix).
    Scan,
    /// Inserting the newly arrived tuple into its window's index.
    Insert,
    /// Removing the expired tuple (incremental deletion approaches only).
    Delete,
    /// Merging the mutable component into the immutable component.
    Merge,
}

impl Step {
    /// All steps in reporting order.
    pub const ALL: [Step; 5] = [
        Step::Search,
        Step::Scan,
        Step::Insert,
        Step::Delete,
        Step::Merge,
    ];

    /// Stable array index for the step.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Step::Search => 0,
            Step::Scan => 1,
            Step::Insert => 2,
            Step::Delete => 3,
            Step::Merge => 4,
        }
    }

    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            Step::Search => "search",
            Step::Scan => "scan",
            Step::Insert => "insert",
            Step::Delete => "delete",
            Step::Merge => "merge",
        }
    }
}

/// Accumulated time and invocation counts per [`Step`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostBreakdown {
    nanos: [u64; 5],
    counts: [u64; 5],
    /// Number of tuples processed while this breakdown was recording; used to
    /// report per-tuple averages (the unit of Figure 9b).
    pub tuples: u64,
}

impl CostBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the bucket of `step` and bumps its invocation count.
    #[inline]
    pub fn record(&mut self, step: Step, d: Duration) {
        self.nanos[step.index()] += d.as_nanos() as u64;
        self.counts[step.index()] += 1;
    }

    /// Adds raw nanoseconds to the bucket of `step` (used when timing is
    /// captured externally, e.g. by a merging thread).
    #[inline]
    pub fn record_nanos(&mut self, step: Step, nanos: u64) {
        self.nanos[step.index()] += nanos;
        self.counts[step.index()] += 1;
    }

    /// Total accumulated time for `step`.
    pub fn total(&self, step: Step) -> Duration {
        Duration::from_nanos(self.nanos[step.index()])
    }

    /// Number of times `step` was recorded.
    pub fn count(&self, step: Step) -> u64 {
        self.counts[step.index()]
    }

    /// Average nanoseconds spent in `step` per processed tuple. Returns zero
    /// when no tuples have been processed.
    pub fn per_tuple_nanos(&self, step: Step) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.nanos[step.index()] as f64 / self.tuples as f64
        }
    }

    /// Sum of all buckets.
    pub fn total_all(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Merges another breakdown into this one (used to aggregate per-thread
    /// breakdowns).
    pub fn merge_from(&mut self, other: &CostBreakdown) {
        for i in 0..5 {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
        self.tuples += other.tuples;
    }
}

/// Counters of the batched CSS-Tree group probe (see `pimtree-cssbtree`),
/// recording how much of the result-generation work went through the batched
/// path and how much prefetching it issued. Filled by `PimTree::probe_batch`
/// and absorbed into the join engines' run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Batched probe calls (one per task and probe side).
    pub batches: u64,
    /// Probe keys submitted across all batches (before deduplication).
    pub batched_keys: u64,
    /// Largest single batch submitted.
    pub max_batch: u64,
    /// Keys that shared a descent with an identical earlier key in the same
    /// batch (sort + dedup hits).
    pub dedup_hits: u64,
    /// Node key blocks (inner nodes and leaf groups) software-prefetched
    /// ahead of the group descent.
    pub nodes_prefetched: u64,
    /// Probes a batched call had to answer through the scalar one-key path
    /// because the index backend has no batched probe (e.g. the Bw-Tree).
    /// Stays zero when batching is disabled: the engines then take the
    /// original scalar code path, which records nothing here.
    pub scalar_probes: u64,
    /// Mutable-partition (`TI`) locks taken by the batched probe path, which
    /// groups a batch's unique ranges per partition so every overlapping
    /// partition is locked once per batch instead of once per range.
    pub ti_partition_locks: u64,
    /// Range-over-partition probes answered by the batched `TI` path. The
    /// difference to `ti_partition_locks` is the number of lock round-trips
    /// the per-partition grouping saved.
    pub ti_range_visits: u64,
    /// Probe calls answered through the AMAC-style interleaved descent ring
    /// (one per batch or scalar-path range group that took the interleaved
    /// engine).
    pub interleaved_batches: u64,
    /// Root-to-leaf descents resolved by the interleaved engine.
    pub interleaved_descents: u64,
    /// Node visits (inner-node compares plus final leaf searches) the
    /// interleaved engine stepped through across all descents.
    pub interleave_steps: u64,
    /// Histogram of steps per interleaved descent: bucket `i` counts
    /// descents that took `i + 1` node visits; the last bucket collects
    /// everything at or beyond [`ProbeCounters::DESCENT_STEP_BUCKETS`]
    /// visits.
    pub descent_steps: [u64; ProbeCounters::DESCENT_STEP_BUCKETS],
    /// Intra-node lower bounds answered by the runtime-detected SIMD kernel.
    pub simd_node_searches: u64,
    /// Intra-node lower bounds answered by the scalar fallback (counted only
    /// on instrumented descent paths, like `simd_node_searches`).
    pub scalar_node_searches: u64,
}

impl ProbeCounters {
    /// Buckets of the per-descent step histogram (`descent_steps`).
    pub const DESCENT_STEP_BUCKETS: usize = 8;

    /// Folds another worker's counters into this one. Every field is summed
    /// (except `max_batch`, which is a maximum) so that per-worker counters
    /// aggregate losslessly no matter how many workers report.
    pub fn merge_from(&mut self, other: &ProbeCounters) {
        self.batches += other.batches;
        self.batched_keys += other.batched_keys;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.dedup_hits += other.dedup_hits;
        self.nodes_prefetched += other.nodes_prefetched;
        self.scalar_probes += other.scalar_probes;
        self.ti_partition_locks += other.ti_partition_locks;
        self.ti_range_visits += other.ti_range_visits;
        self.interleaved_batches += other.interleaved_batches;
        self.interleaved_descents += other.interleaved_descents;
        self.interleave_steps += other.interleave_steps;
        for (mine, theirs) in self
            .descent_steps
            .iter_mut()
            .zip(other.descent_steps.iter())
        {
            *mine += *theirs;
        }
        self.simd_node_searches += other.simd_node_searches;
        self.scalar_node_searches += other.scalar_node_searches;
    }

    /// Records one interleaved descent that took `steps` node visits into
    /// the per-descent histogram.
    #[inline]
    pub fn record_descent_steps(&mut self, steps: usize, descents: u64) {
        let bucket = steps.saturating_sub(1).min(Self::DESCENT_STEP_BUCKETS - 1);
        self.descent_steps[bucket] += descents;
    }

    /// Mean node visits per interleaved descent.
    pub fn mean_descent_steps(&self) -> f64 {
        if self.interleaved_descents == 0 {
            0.0
        } else {
            self.interleave_steps as f64 / self.interleaved_descents as f64
        }
    }

    /// Fraction of instrumented intra-node searches answered by the SIMD
    /// kernel.
    pub fn simd_search_rate(&self) -> f64 {
        let total = self.simd_node_searches + self.scalar_node_searches;
        if total == 0 {
            0.0
        } else {
            self.simd_node_searches as f64 / total as f64
        }
    }

    /// Mean keys per batched probe call.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_keys as f64 / self.batches as f64
        }
    }

    /// Fraction of batched keys that shared an identical earlier key's
    /// descent.
    pub fn dedup_rate(&self) -> f64 {
        if self.batched_keys == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.batched_keys as f64
        }
    }
}

/// A scoped timer that records into a [`CostBreakdown`] bucket on demand.
///
/// The timer is intentionally explicit (call [`StepTimer::finish`]) rather than
/// RAII-based so that hot paths can skip the clock reads entirely when
/// instrumentation is disabled.
#[derive(Debug)]
pub struct StepTimer {
    start: Instant,
    step: Step,
}

impl StepTimer {
    /// Starts timing `step`.
    #[inline]
    pub fn start(step: Step) -> Self {
        StepTimer {
            start: Instant::now(),
            step,
        }
    }

    /// Stops the timer and records the elapsed time into `breakdown`.
    #[inline]
    pub fn finish(self, breakdown: &mut CostBreakdown) {
        breakdown.record(self.step, self.start.elapsed());
    }

    /// Elapsed time without recording (for callers that aggregate manually).
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Tuples-per-second throughput meter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    tuples: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Starts a meter at the current instant.
    pub fn new() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            tuples: 0,
        }
    }

    /// Adds `n` processed tuples.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.tuples += n;
    }

    /// Total tuples recorded so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Elapsed wall-clock time since the meter was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Throughput in million tuples per second — the unit used on the y-axis
    /// of most figures in the paper.
    pub fn million_tuples_per_second(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs / 1.0e6
        }
    }

    /// Throughput computed against an externally supplied duration (used when
    /// the measured region is narrower than the meter's lifetime).
    pub fn million_tuples_per_second_over(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs / 1.0e6
        }
    }
}

/// Records per-tuple processing latencies and reports order statistics.
///
/// Latency is defined as in §5 ("task processing time"): the time from a tuple
/// being picked up by a worker until its join results are ready.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_nanos: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder pre-allocated for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder {
            samples_nanos: Vec::with_capacity(n),
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.samples_nanos.push(d.as_nanos() as u64);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_nanos.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_nanos.is_empty()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge_from(&mut self, other: &LatencyRecorder) {
        self.samples_nanos.extend_from_slice(&other.samples_nanos);
    }

    /// Mean latency in microseconds (the unit of Figure 10d).
    pub fn mean_micros(&self) -> f64 {
        if self.samples_nanos.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples_nanos.iter().map(|&n| n as u128).sum();
        sum as f64 / self.samples_nanos.len() as f64 / 1.0e3
    }

    /// Latency percentile (`q` in `[0, 1]`) in microseconds.
    pub fn percentile_micros(&self, q: f64) -> f64 {
        if self.samples_nanos.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_nanos.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] as f64 / 1.0e3
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> f64 {
        self.samples_nanos
            .iter()
            .max()
            .map(|&n| n as f64 / 1.0e3)
            .unwrap_or(0.0)
    }
}

/// Fixed-footprint log-bucketed latency histogram, promoted into
/// `pimtree-telemetry` (the engine flight recorder) and re-exported here so
/// existing `pimtree_common::LatencyHistogram` imports keep working. See the
/// telemetry crate for the bucketing scheme and its pinning tests.
pub use pimtree_telemetry::LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_indices_are_unique_and_labels_distinct() {
        let mut seen = [false; 5];
        for s in Step::ALL {
            assert!(!seen[s.index()], "duplicate index for {:?}", s);
            seen[s.index()] = true;
        }
        let labels: std::collections::HashSet<_> = Step::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn breakdown_accumulates_and_averages() {
        let mut b = CostBreakdown::new();
        b.record(Step::Search, Duration::from_nanos(100));
        b.record(Step::Search, Duration::from_nanos(300));
        b.record_nanos(Step::Merge, 1_000);
        b.tuples = 4;
        assert_eq!(b.total(Step::Search), Duration::from_nanos(400));
        assert_eq!(b.count(Step::Search), 2);
        assert_eq!(b.count(Step::Merge), 1);
        assert_eq!(b.count(Step::Insert), 0);
        assert!((b.per_tuple_nanos(Step::Search) - 100.0).abs() < 1e-9);
        assert!((b.per_tuple_nanos(Step::Merge) - 250.0).abs() < 1e-9);
        assert_eq!(b.total_all(), Duration::from_nanos(1_400));
    }

    #[test]
    fn breakdown_per_tuple_is_zero_without_tuples() {
        let mut b = CostBreakdown::new();
        b.record_nanos(Step::Insert, 500);
        assert_eq!(b.per_tuple_nanos(Step::Insert), 0.0);
    }

    #[test]
    fn breakdown_merge_from_adds_everything() {
        let mut a = CostBreakdown::new();
        a.record_nanos(Step::Scan, 10);
        a.tuples = 1;
        let mut b = CostBreakdown::new();
        b.record_nanos(Step::Scan, 30);
        b.record_nanos(Step::Delete, 5);
        b.tuples = 3;
        a.merge_from(&b);
        assert_eq!(a.total(Step::Scan), Duration::from_nanos(40));
        assert_eq!(a.count(Step::Scan), 2);
        assert_eq!(a.count(Step::Delete), 1);
        assert_eq!(a.tuples, 4);
    }

    #[test]
    fn step_timer_records_positive_duration() {
        let mut b = CostBreakdown::new();
        let t = StepTimer::start(Step::Insert);
        std::hint::black_box(1 + 1);
        t.finish(&mut b);
        assert_eq!(b.count(Step::Insert), 1);
    }

    #[test]
    fn throughput_meter_counts_tuples() {
        let mut m = ThroughputMeter::new();
        m.add(500);
        m.add(500);
        assert_eq!(m.tuples(), 1000);
        let mtps = m.million_tuples_per_second_over(Duration::from_millis(1));
        assert!(
            (mtps - 1.0).abs() < 1e-9,
            "1000 tuples in 1ms = 1 Mtps, got {mtps}"
        );
        assert_eq!(m.million_tuples_per_second_over(Duration::ZERO), 0.0);
    }

    #[test]
    fn latency_recorder_percentiles() {
        let mut l = LatencyRecorder::with_capacity(100);
        assert!(l.is_empty());
        assert_eq!(l.mean_micros(), 0.0);
        assert_eq!(l.percentile_micros(0.5), 0.0);
        for i in 1..=100u64 {
            l.record(Duration::from_micros(i));
        }
        assert_eq!(l.len(), 100);
        assert!((l.mean_micros() - 50.5).abs() < 1e-6);
        assert!((l.percentile_micros(0.0) - 1.0).abs() < 1e-6);
        assert!((l.percentile_micros(1.0) - 100.0).abs() < 1e-6);
        let p50 = l.percentile_micros(0.5);
        assert!((49.0..=52.0).contains(&p50), "p50 = {p50}");
        assert!((l.max_micros() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_reexport_still_tracks_the_exact_recorder() {
        // The histogram now lives in pimtree-telemetry (where its bucketing
        // is pinned); this keeps the re-exported type interoperating with
        // the exact recorder it approximates.
        let mut exact = LatencyRecorder::new();
        let mut hist = LatencyHistogram::new();
        for i in 1..=1000u64 {
            let nanos = if i % 100 == 0 { i * 10_000 } else { i * 10 };
            exact.record(Duration::from_nanos(nanos));
            hist.record_nanos(nanos);
        }
        assert_eq!(hist.len(), 1000);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let (e, h) = (exact.percentile_micros(q), hist.percentile_micros(q));
            let tolerance = (e * 0.07).max(0.002);
            assert!(
                (e - h).abs() <= tolerance,
                "q={q}: exact {e}, histogram {h}"
            );
        }
        assert_eq!(hist.max_micros(), exact.max_micros(), "max is exact");
    }

    #[test]
    fn latency_recorder_merge() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_micros(30));
        a.merge_from(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean_micros() - 20.0).abs() < 1e-6);
    }
}
