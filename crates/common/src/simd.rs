//! Runtime-detected SIMD lower-bound kernels for intra-node search.
//!
//! A CSS-Tree node is a small sorted block of 16-byte `(key, seq)` entries
//! (or, for plain sorted key arrays, of `u64` values). The hot probe loop
//! answers one lower bound per node visit, so the per-node compare cost sits
//! directly on the critical path once prefetching has hidden the memory
//! latency. These kernels replace the scalar binary search with a
//! branch-free compare-mask count: because the block is sorted, the number
//! of elements strictly below the target *is* the lower bound, and that
//! count can be taken eight 64-bit lanes at a time with AVX2 compares plus
//! a move-mask popcount.
//!
//! The AVX2 path is selected at runtime via `is_x86_feature_detected!` and
//! cached process-wide; everything degrades to the scalar
//! `slice::partition_point` on other architectures, on x86-64 parts without
//! AVX2, and when the [`SIMD_ENV`] environment variable force-disables it
//! (used by CI to keep the fallback covered on AVX2-capable runners). Both
//! paths return bit-identical results — the property-based tests pin
//! SIMD == scalar on arbitrary sorted blocks, including the
//! `Key::MAX`-padded sentinel slots CSS inner nodes carry.

use std::sync::OnceLock;

/// Environment variable consulted once (first use) to force the scalar
/// fallback: set to `off`, `scalar`, `0` or `false` to disable the SIMD
/// kernels regardless of what the CPU supports. Any other value — or the
/// variable being unset — leaves runtime feature detection in charge.
pub const SIMD_ENV: &str = "PIMTREE_SIMD";

/// The instruction-set level the lower-bound kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar fallback (`slice::partition_point`).
    Scalar,
    /// AVX2 64-bit compare-mask kernels (x86-64 only).
    Avx2,
}

impl SimdLevel {
    /// Stable label for logs and benchmark provenance.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

fn detect_level() -> SimdLevel {
    if let Ok(v) = std::env::var(SIMD_ENV) {
        let v = v.to_ascii_lowercase();
        if v == "off" || v == "scalar" || v == "0" || v == "false" {
            return SimdLevel::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// The instruction-set level in effect for this process (detected once,
/// then cached).
pub fn active_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect_level)
}

/// Whether the SIMD kernels (rather than the scalar fallback) answer
/// lower-bound calls in this process.
#[inline]
pub fn simd_active() -> bool {
    active_level() == SimdLevel::Avx2
}

/// Position of the first value `>= target` in a sorted `u64` slice —
/// identical to `values.partition_point(|&v| v < target)`.
///
/// The AVX2 path counts lanes `< target` eight at a time (two 256-bit
/// vectors per iteration), biasing both sides by `1 << 63` so the signed
/// `cmpgt` instruction implements the unsigned order, and early-exits on the
/// first vector that contains the boundary.
#[inline]
pub fn lower_bound_u64(values: &[u64], target: u64) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_active() {
            // SAFETY: `simd_active()` is true only after runtime AVX2
            // detection succeeded.
            return unsafe { lower_bound_u64_avx2(values, target) };
        }
    }
    values.partition_point(|&v| v < target)
}

/// Number of leading pairs whose first lane (the key) is `< key`, in a
/// slice of `[key, payload]` pairs sorted by key — identical to
/// `pairs.partition_point(|p| p[0] < key)`.
///
/// This is the strided variant the CSS-Tree node search uses: entries are
/// 16-byte `(key, seq)` records, so each iteration loads four entries as
/// two 256-bit vectors and gathers the four keys with an in-register
/// unpack. The unpack scrambles lane order, which is harmless — only the
/// *count* of keys below the target matters in a sorted block.
#[inline]
pub fn count_keys_below(pairs: &[[i64; 2]], key: i64) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_active() {
            // SAFETY: `simd_active()` is true only after runtime AVX2
            // detection succeeded.
            return unsafe { count_keys_below_avx2(pairs, key) };
        }
    }
    pairs.partition_point(|p| p[0] < key)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lower_bound_u64_avx2(values: &[u64], target: u64) -> usize {
    use core::arch::x86_64::*;
    const BIAS: i64 = i64::MIN; // 1 << 63: maps unsigned order onto signed
    let t = _mm256_set1_epi64x((target as i64) ^ BIAS);
    let bias = _mm256_set1_epi64x(BIAS);
    let mut count = 0usize;
    let mut i = 0usize;
    while i + 8 <= values.len() {
        // SAFETY: `i + 8 <= len`, so both unaligned 4-lane loads stay inside
        // the slice.
        let a = unsafe { _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i) };
        // SAFETY: same bound — lanes `i + 4..i + 8` are still inside the slice.
        let b = unsafe { _mm256_loadu_si256(values.as_ptr().add(i + 4) as *const __m256i) };
        let a = _mm256_xor_si256(a, bias);
        let b = _mm256_xor_si256(b, bias);
        // A lane is all-ones iff value < target (biased signed compare).
        let ma = _mm256_cmpgt_epi64(t, a);
        let mb = _mm256_cmpgt_epi64(t, b);
        let bits = (_mm256_movemask_pd(_mm256_castsi256_pd(ma)) as u32)
            | ((_mm256_movemask_pd(_mm256_castsi256_pd(mb)) as u32) << 4);
        count += bits.count_ones() as usize;
        if bits != 0xff {
            // The block contains the boundary: in a sorted slice the set
            // lanes are exactly the values below the target, so the running
            // count is final.
            return count;
        }
        i += 8;
    }
    count + values[i..].partition_point(|&v| v < target)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn count_keys_below_avx2(pairs: &[[i64; 2]], key: i64) -> usize {
    use core::arch::x86_64::*;
    let t = _mm256_set1_epi64x(key);
    let ptr = pairs.as_ptr() as *const i64;
    let mut count = 0usize;
    let mut i = 0usize;
    while i + 4 <= pairs.len() {
        // SAFETY: `i + 4 <= len`, so the two loads cover exactly pairs
        // `i..i + 4` (eight i64 lanes) inside the slice.
        let a = unsafe { _mm256_loadu_si256(ptr.add(2 * i) as *const __m256i) };
        // SAFETY: same bound — lanes `2 * i + 4..2 * i + 8` are the second
        // half of pairs `i..i + 4`, still inside the slice.
        let b = unsafe { _mm256_loadu_si256(ptr.add(2 * i + 4) as *const __m256i) };
        // a = [k0 s0 k1 s1], b = [k2 s2 k3 s3]; the per-128-bit-lane unpack
        // yields [k0 k2 k1 k3] — scrambled, but counting is order-blind.
        let keys = _mm256_unpacklo_epi64(a, b);
        let m = _mm256_cmpgt_epi64(t, keys);
        let bits = _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u32;
        count += bits.count_ones() as usize;
        if bits != 0xf {
            return count;
        }
        i += 4;
    }
    count + pairs[i..].partition_point(|p| p[0] < key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_level_is_cached_and_consistent() {
        let first = active_level();
        assert_eq!(active_level(), first);
        assert_eq!(simd_active(), first == SimdLevel::Avx2);
        assert!(!first.label().is_empty());
    }

    #[test]
    fn u64_lower_bound_matches_partition_point() {
        // Boundary at every index, duplicates, unsigned extremes, and
        // lengths straddling the 8-lane vector width.
        for len in 0..40usize {
            let values: Vec<u64> = (0..len as u64).map(|i| i * 3).collect();
            for t in 0..(len as u64 * 3 + 2) {
                assert_eq!(
                    lower_bound_u64(&values, t),
                    values.partition_point(|&v| v < t),
                    "len={len} target={t}"
                );
            }
        }
        let extremes = [0u64, 1, u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX];
        for t in [0, 1, 2, u64::MAX - 1, u64::MAX] {
            assert_eq!(
                lower_bound_u64(&extremes, t),
                extremes.partition_point(|&v| v < t)
            );
        }
        assert_eq!(lower_bound_u64(&[], 7), 0);
    }

    #[test]
    fn key_count_matches_partition_point_with_sentinel_padding() {
        // A CSS inner node: real keys followed by Key::MAX padding slots.
        for real in 0..20usize {
            let mut pairs: Vec<[i64; 2]> = (0..real as i64).map(|i| [i * 2 - 5, i]).collect();
            while pairs.len() < 24 {
                pairs.push([i64::MAX, u64::MAX as i64]);
            }
            for key in -8..(real as i64 * 2 + 2) {
                assert_eq!(
                    count_keys_below(&pairs, key),
                    pairs.partition_point(|p| p[0] < key),
                    "real={real} key={key}"
                );
            }
            assert_eq!(
                count_keys_below(&pairs, i64::MAX),
                pairs.partition_point(|p| p[0] < i64::MAX)
            );
        }
        assert_eq!(count_keys_below(&[], 0), 0);
    }

    #[test]
    fn negative_keys_order_correctly() {
        let pairs: Vec<[i64; 2]> = vec![[i64::MIN, 0], [-7, 1], [-7, 2], [0, 3], [42, 4]];
        for key in [i64::MIN, -8, -7, -6, 0, 1, 42, 43, i64::MAX] {
            assert_eq!(
                count_keys_below(&pairs, key),
                pairs.partition_point(|p| p[0] < key)
            );
        }
    }
}
