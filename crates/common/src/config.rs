//! Runtime configuration for indexes and join operators.
//!
//! The tunables here correspond directly to the knobs studied in the paper's
//! evaluation: merge ratio `m` (Figures 9a/9c/9d), insertion depth `DI`
//! (Figures 8c/8d), task size (Figures 10c/10d), thread count (Figure 12a) and
//! the blocking/non-blocking merge ablation (Figure 13c).

use pimtree_telemetry::TelemetryMode;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Which indexing data structure a join operator should use for each sliding
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// No index at all: nested-loop window join (NLWJ).
    None,
    /// A single classic B+-Tree per window (the paper's `B+-Tree` baseline).
    BTree,
    /// The chained index with B+-Tree sub-indexes (`B-chain`).
    BChain,
    /// The chained index whose archived sub-indexes are immutable B+-Trees
    /// (`IB-chain`).
    IbChain,
    /// The two-stage In-memory Merge-Tree (single mutable component).
    ImTree,
    /// The Partitioned In-memory Merge-Tree (the paper's contribution).
    PimTree,
    /// The concurrent general-purpose ordered index baseline (Bw-Tree-style).
    BwTree,
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IndexKind::None => "none",
            IndexKind::BTree => "b+tree",
            IndexKind::BChain => "b-chain",
            IndexKind::IbChain => "ib-chain",
            IndexKind::ImTree => "im-tree",
            IndexKind::PimTree => "pim-tree",
            IndexKind::BwTree => "bw-tree",
        };
        f.write_str(s)
    }
}

/// How the two-stage trees perform their maintenance merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MergePolicy {
    /// Two-phase non-blocking merge (§4.2 of the paper): workers keep joining
    /// while a merging thread rebuilds `TS`.
    #[default]
    NonBlocking,
    /// Stop-the-world merge; kept for the Figure 13c ablation.
    Blocking,
}

/// Configuration of an IM-Tree / PIM-Tree instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Sliding-window size `w` the tree is provisioned for (tuples).
    pub window_size: usize,
    /// Merge ratio `m` in `(0, 1]`: the mutable component is merged into the
    /// immutable component when it holds `m * w` tuples.
    pub merge_ratio: f64,
    /// Insertion depth `DI`: partitions of the mutable component correspond to
    /// the inner nodes of `TS` at this depth (root = depth 0). Ignored by the
    /// unpartitioned IM-Tree.
    pub insertion_depth: usize,
    /// Fan-out of the immutable B+-Tree's inner nodes (`f_ib`).
    pub css_fanout: usize,
    /// Number of entries per immutable B+-Tree leaf (`l_ib`).
    pub css_leaf_size: usize,
    /// Fan-out (max keys per node) of the mutable B+-Tree component.
    pub btree_fanout: usize,
    /// Merge execution policy.
    pub merge_policy: MergePolicy,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            window_size: 1 << 20,
            merge_ratio: 1.0,
            insertion_depth: 3,
            css_fanout: 32,
            css_leaf_size: 32,
            btree_fanout: 32,
            merge_policy: MergePolicy::NonBlocking,
        }
    }
}

impl PimConfig {
    /// Creates a configuration for a window of `window_size` tuples with the
    /// paper's default parameters (merge ratio 1, `DI = 3`, fan-out 32).
    pub fn for_window(window_size: usize) -> Self {
        PimConfig {
            window_size,
            ..Default::default()
        }
    }

    /// Sets the merge ratio `m`.
    pub fn with_merge_ratio(mut self, m: f64) -> Self {
        self.merge_ratio = m;
        self
    }

    /// Sets the insertion depth `DI`.
    pub fn with_insertion_depth(mut self, di: usize) -> Self {
        self.insertion_depth = di;
        self
    }

    /// Sets the merge policy.
    pub fn with_merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Number of tuples in the mutable component that triggers a merge
    /// (`m * w`, at least 1).
    pub fn merge_threshold(&self) -> usize {
        ((self.merge_ratio * self.window_size as f64).round() as usize).max(1)
    }

    /// Validates the configuration, returning a descriptive error when a
    /// parameter is outside its legal domain.
    pub fn validate(&self) -> Result<()> {
        if self.window_size == 0 {
            return Err(Error::InvalidConfig("window_size must be positive".into()));
        }
        if !(self.merge_ratio > 0.0 && self.merge_ratio <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "merge_ratio must be in (0, 1], got {}",
                self.merge_ratio
            )));
        }
        if self.css_fanout < 2 {
            return Err(Error::InvalidConfig("css_fanout must be at least 2".into()));
        }
        if self.css_leaf_size < 1 {
            return Err(Error::InvalidConfig(
                "css_leaf_size must be at least 1".into(),
            ));
        }
        if self.btree_fanout < 4 {
            return Err(Error::InvalidConfig(
                "btree_fanout must be at least 4".into(),
            ));
        }
        Ok(())
    }
}

/// Tuning of the parallel engine's lock-free task ring and idle back-off.
///
/// The parallel IBWJ engine distributes work through a fixed-capacity MPMC
/// ring buffer (see `pimtree-join`'s `ring` module). These knobs size the
/// ring and shape the spin → yield → park back-off a worker goes through
/// when it finds no task to acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Ring capacity in slots. `0` selects an automatic capacity from the
    /// thread count and task size. Non-zero values are rounded up to a power
    /// of two and to at least twice the task size.
    pub capacity: usize,
    /// How many ingested-but-unclaimed tuples the engine tries to keep
    /// available in the ring; `0` selects `threads * task_size` (clamped to a
    /// quarter of the capacity). Larger targets amortise the ingest token
    /// better, smaller ones reduce result-propagation latency.
    pub ingest_target: usize,
    /// Number of idle rounds spent busy-spinning (with exponentially growing
    /// spin windows) before the worker starts yielding its time slice.
    pub spin_limit: u32,
    /// Number of idle rounds spent calling `yield_now` after spinning and
    /// before parking.
    pub yield_limit: u32,
    /// Sleep duration of one park once spinning and yielding both found no
    /// work, in microseconds. `0` keeps yielding forever (never parks).
    pub park_micros: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            capacity: 0,
            ingest_target: 0,
            spin_limit: 6,
            yield_limit: 16,
            park_micros: 50,
        }
    }
}

impl RingConfig {
    /// Sets an explicit ring capacity (0 = automatic).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the ingest target (0 = automatic).
    pub fn with_ingest_target(mut self, target: usize) -> Self {
        self.ingest_target = target;
        self
    }

    /// Sets the idle back-off shape.
    pub fn with_backoff(mut self, spin_limit: u32, yield_limit: u32, park_micros: u64) -> Self {
        self.spin_limit = spin_limit;
        self.yield_limit = yield_limit;
        self.park_micros = park_micros;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.capacity != 0 && self.capacity < 4 {
            return Err(Error::InvalidConfig(format!(
                "ring capacity must be 0 (auto) or at least 4, got {}",
                self.capacity
            )));
        }
        if self.capacity != 0 && self.capacity > (1 << 28) {
            return Err(Error::InvalidConfig(format!(
                "ring capacity {} exceeds the 2^28-slot ceiling",
                self.capacity
            )));
        }
        if self.spin_limit > 1 << 16 {
            return Err(Error::InvalidConfig(format!(
                "spin_limit {} is unreasonably large (max 65536)",
                self.spin_limit
            )));
        }
        if self.yield_limit > 1 << 16 {
            return Err(Error::InvalidConfig(format!(
                "yield_limit {} is unreasonably large (max 65536)",
                self.yield_limit
            )));
        }
        if self.park_micros > 1_000_000 {
            return Err(Error::InvalidConfig(format!(
                "park_micros {} exceeds one second; workers would stall",
                self.park_micros
            )));
        }
        Ok(())
    }
}

/// Tuning of the parallel engine's sharded task-ring layer.
///
/// With more than one shard, the engine splits its MPMC task ring into an
/// array of per-NUMA-node rings (see `pimtree-join`'s `shard` module): each
/// shard has its own ingest cursor, claim ticket and drain cursor, a router
/// assigns every ingested tuple to the shard owning its key range (or
/// round-robin without a partitioner), and workers claim from their *home*
/// shard first, stealing from remote shards only when the home shard runs
/// dry. `shards = 1` keeps the original single-ring path bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of ring shards (simulated NUMA nodes). `1` disables sharding
    /// and runs the plain single-ring engine.
    pub shards: usize,
    /// How many tuples a worker claims per successful steal from a remote
    /// shard. `0` selects the engine's task size.
    pub steal_batch: usize,
    /// Minimum number of available (ingested, unclaimed) tuples a remote
    /// shard must hold before the first steal pass targets it; a second pass
    /// ignores the threshold so below-threshold work can never be stranded.
    pub steal_threshold: usize,
    /// Whether the engine also partitions its *index and window state* per
    /// shard (the `ShardStore` layer): each shard owns one index plus one
    /// window slice per side covering only its key range, inserts are routed
    /// to the owning shard and probes fan out across exactly the shards
    /// overlapping the band-join range. `false` (the default) keeps one
    /// shared index/window pair per side; with one shard the flag is a no-op
    /// (the partitioned store short-circuits to the shared path).
    pub partition_index: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            steal_batch: 0,
            steal_threshold: 1,
            partition_index: false,
        }
    }
}

impl ShardConfig {
    /// Sets the number of ring shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the steal batch size (0 = the engine's task size).
    pub fn with_steal_batch(mut self, steal_batch: usize) -> Self {
        self.steal_batch = steal_batch;
        self
    }

    /// Sets the first-pass steal threshold.
    pub fn with_steal_threshold(mut self, steal_threshold: usize) -> Self {
        self.steal_threshold = steal_threshold;
        self
    }

    /// Enables or disables the per-shard index/window store.
    pub fn with_partition_index(mut self, partition_index: bool) -> Self {
        self.partition_index = partition_index;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::InvalidConfig(
                "shard count must be positive (1 disables sharding)".into(),
            ));
        }
        if self.shards > 64 {
            return Err(Error::InvalidConfig(format!(
                "shard count {} exceeds the 64-shard ceiling",
                self.shards
            )));
        }
        if self.steal_batch > 4096 {
            return Err(Error::InvalidConfig(format!(
                "steal_batch {} is unreasonably large (max 4096)",
                self.steal_batch
            )));
        }
        if self.steal_threshold > 1 << 20 {
            return Err(Error::InvalidConfig(format!(
                "steal_threshold {} is unreasonably large (max 2^20)",
                self.steal_threshold
            )));
        }
        Ok(())
    }
}

/// How an adopted repartition plan is physically migrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MigrationMode {
    /// Wholesale migration epoch: one quiesce rebuilds every shard's index
    /// and window state under the new partitioner. Simple, but the stall is
    /// proportional to the total resident state.
    #[default]
    Epoch,
    /// Incremental shard-pair handoff: the plan is decomposed into
    /// per-sub-range steps, each moving a bounded slice of one (src, dst)
    /// shard pair under a short quiesce while the rest of the engine keeps
    /// ingesting and probing; the moving sub-range is dual-owned until its
    /// step completes.
    Incremental,
}

impl std::fmt::Display for MigrationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MigrationMode::Epoch => "epoch",
            MigrationMode::Incremental => "incremental",
        })
    }
}

/// Tuning of the parallel engine's drift-driven live repartitioning.
///
/// With `repartition` on (and more than one shard), the engine feeds every
/// processed tuple's `(key, match count)` into a `DriftMonitor` sliding
/// window. When the observed load imbalance under the current
/// `RangePartitioner` exceeds `imbalance_trigger` and the resulting
/// repartition plan's moved-weight fraction clears `cost_gate`, the engine
/// migrates to the plan's partitioner under the selected
/// [`MigrationMode`]: a wholesale **migration epoch** (ingestion and
/// claiming quiesce behind the merge gate while every index entry and
/// window tuple whose key changed home shards moves to its new owner), or a
/// stall-bounded **incremental handoff** that moves at most
/// `handoff_budget` window tuples per quiesce. Off (the default), the
/// partitioner chosen at construction stays fixed for the whole run — the
/// pre-PR-5 behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Master switch for live repartition adoption. Off keeps the engine's
    /// partitioner (ring routing and store placement) fixed for the run.
    pub repartition: bool,
    /// Capacity of the drift monitor's sliding observation window (and the
    /// cooldown after a plan decision), in tuples.
    pub window: usize,
    /// Observed max-node/ideal load ratio above which a repartition plan is
    /// computed (1.0 = perfectly balanced; typical triggers are 1.5–2.0).
    pub imbalance_trigger: f64,
    /// Cost gate on plan adoption: the fraction of observed weight whose
    /// home shard changes must be **at most** this for the plan to be worth
    /// its data transfer; costlier plans are rejected (counted, and the
    /// monitor cools down so the decision is retried on fresh data).
    pub cost_gate: f64,
    /// Observations between drift checks. `0` selects an automatic interval
    /// (an eighth of the window, at least 64) so the O(window) imbalance
    /// fold stays off the per-task fast path.
    pub check_interval: usize,
    /// How an adopted plan is migrated: one wholesale epoch or incremental
    /// per-sub-range handoff.
    pub migration_mode: MigrationMode,
    /// Upper bound on the window tuples moved per incremental handoff
    /// quiesce (the stall bound). `0` selects an automatic budget. Ignored
    /// in epoch mode.
    pub handoff_budget: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            repartition: false,
            window: 4096,
            imbalance_trigger: 1.5,
            cost_gate: 0.9,
            check_interval: 0,
            migration_mode: MigrationMode::Epoch,
            handoff_budget: 0,
        }
    }
}

impl DriftConfig {
    /// Enables or disables live repartition adoption.
    pub fn with_repartition(mut self, on: bool) -> Self {
        self.repartition = on;
        self
    }

    /// Sets the drift observation window (tuples).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the imbalance trigger.
    pub fn with_imbalance_trigger(mut self, trigger: f64) -> Self {
        self.imbalance_trigger = trigger;
        self
    }

    /// Sets the moved-fraction cost gate.
    pub fn with_cost_gate(mut self, gate: f64) -> Self {
        self.cost_gate = gate;
        self
    }

    /// Sets the observations between drift checks (0 = automatic).
    pub fn with_check_interval(mut self, interval: usize) -> Self {
        self.check_interval = interval;
        self
    }

    /// Sets the migration mode.
    pub fn with_migration_mode(mut self, mode: MigrationMode) -> Self {
        self.migration_mode = mode;
        self
    }

    /// Sets the per-quiesce handoff move budget (0 = automatic).
    pub fn with_handoff_budget(mut self, budget: usize) -> Self {
        self.handoff_budget = budget;
        self
    }

    /// The effective number of observations between drift checks.
    pub fn effective_check_interval(&self) -> usize {
        if self.check_interval > 0 {
            self.check_interval
        } else {
            (self.window / 8).max(64)
        }
    }

    /// The effective per-quiesce handoff move budget. The automatic budget
    /// matches the drift window: large enough to finish a handoff in a
    /// handful of steps, small enough that each quiesce touches a bounded
    /// slice of the resident state.
    pub fn effective_handoff_budget(&self) -> usize {
        if self.handoff_budget > 0 {
            self.handoff_budget
        } else {
            self.window.max(1)
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(Error::InvalidConfig("drift window must be positive".into()));
        }
        if self.window > 1 << 24 {
            return Err(Error::InvalidConfig(format!(
                "drift window {} exceeds the 2^24-observation ceiling",
                self.window
            )));
        }
        if self.imbalance_trigger.is_nan() || self.imbalance_trigger < 1.0 {
            return Err(Error::InvalidConfig(format!(
                "imbalance trigger must be at least 1.0, got {}",
                self.imbalance_trigger
            )));
        }
        if !(self.cost_gate > 0.0 && self.cost_gate <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "cost gate must be in (0, 1], got {}",
                self.cost_gate
            )));
        }
        if self.check_interval > 1 << 24 {
            return Err(Error::InvalidConfig(format!(
                "check interval {} is unreasonably large (max 2^24)",
                self.check_interval
            )));
        }
        if self.handoff_budget > 1 << 24 {
            return Err(Error::InvalidConfig(format!(
                "handoff budget {} is unreasonably large (max 2^24)",
                self.handoff_budget
            )));
        }
        Ok(())
    }
}

/// Configuration of the engine flight recorder (see `pimtree-telemetry`).
///
/// The mode selects how much the engine records about itself while running:
/// `off` costs one relaxed counter increment per instrumentation point,
/// `counters` accumulates per-worker per-phase time/count cells, and `full`
/// additionally keeps per-worker phase histograms and per-cause stall
/// histograms. The sample interval paces the gauge sampler thread that the
/// engine spawns when an export path is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Recording mode (`off` | `counters` | `full`).
    pub mode: TelemetryMode,
    /// Milliseconds between gauge samples when live export is enabled.
    pub sample_interval_ms: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            mode: TelemetryMode::Off,
            sample_interval_ms: 50,
        }
    }
}

impl TelemetryConfig {
    /// Sets the recording mode.
    pub fn with_mode(mut self, mode: TelemetryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the gauge sampling interval in milliseconds.
    pub fn with_sample_interval_ms(mut self, ms: u64) -> Self {
        self.sample_interval_ms = ms;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.sample_interval_ms == 0 {
            return Err(Error::InvalidConfig(
                "telemetry sample interval must be positive".into(),
            ));
        }
        if self.sample_interval_ms > 3_600_000 {
            return Err(Error::InvalidConfig(format!(
                "telemetry sample interval {} ms is unreasonably large (max 1h)",
                self.sample_interval_ms
            )));
        }
        Ok(())
    }
}

/// Tuning of the batched CSS-Tree group probe used during result generation.
///
/// The hot path of both join engines probes the immutable component of the
/// PIM-Tree once per tuple. With batching enabled, a task's worth of probe
/// keys is sorted, deduplicated and descended through the CSS-Tree level by
/// level as one group, issuing software prefetches for the next level's nodes
/// before the descent reaches them (see `pimtree-cssbtree`). Disabling
/// batching restores the scalar one-key-at-a-time probe path unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Whether to use the batched group probe (`true`) or the scalar
    /// per-tuple probe (`false`).
    pub batch: bool,
    /// Prefetch distance: how many keys ahead of the descent cursor the
    /// next node's key block is prefetched, within each level of the group
    /// descent. `0` disables prefetching while keeping the batch descent.
    pub prefetch_dist: usize,
    /// Number of in-flight descents per worker for the AMAC-style
    /// interleaved CSS-Tree descent (see `pimtree-cssbtree`): a ring of
    /// `interleave` independent root-to-leaf descents is advanced
    /// round-robin, one node visit at a time, so each descent's cache miss
    /// overlaps the other descents' compares. `0` (and `1`) disable
    /// interleaving and keep the level-wise group descent (batched path) or
    /// the plain per-key descent (scalar path).
    pub interleave: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            batch: true,
            prefetch_dist: 4,
            interleave: 0,
        }
    }
}

impl ProbeConfig {
    /// A configuration with the scalar probe path (no batching).
    pub fn scalar() -> Self {
        ProbeConfig {
            batch: false,
            ..Default::default()
        }
    }

    /// Enables or disables the batched group probe.
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the prefetch distance (keys of lookahead per level; 0 = no
    /// prefetching).
    pub fn with_prefetch_dist(mut self, dist: usize) -> Self {
        self.prefetch_dist = dist;
        self
    }

    /// Sets the number of interleaved in-flight descents (0 = off).
    pub fn with_interleave(mut self, interleave: usize) -> Self {
        self.interleave = interleave;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.prefetch_dist > 1024 {
            return Err(Error::InvalidConfig(format!(
                "prefetch_dist {} is unreasonably large (max 1024): batches \
                 never exceed the task size",
                self.prefetch_dist
            )));
        }
        if self.interleave > 64 {
            return Err(Error::InvalidConfig(format!(
                "interleave {} is unreasonably large (max 64): the in-flight \
                 descent ring should stay within the L1 miss-queue depth",
                self.interleave
            )));
        }
        Ok(())
    }
}

/// Configuration of a join operator run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinConfig {
    /// Sliding-window size of stream `R` (tuples).
    pub window_r: usize,
    /// Sliding-window size of stream `S` (tuples).
    pub window_s: usize,
    /// Which index to maintain on each sliding window.
    pub index: IndexKind,
    /// Number of worker threads for parallel operators (ignored by the
    /// single-threaded ones).
    pub threads: usize,
    /// Task size: tuples handed to a worker per task-acquisition round.
    pub task_size: usize,
    /// Chain length `L` for the chained-index variants.
    pub chain_length: usize,
    /// Index tuning shared by IM-Tree / PIM-Tree.
    pub pim: PimConfig,
    /// Task-ring and idle back-off tuning for the parallel engine.
    pub ring: RingConfig,
    /// Batched-probe tuning for the result-generation path.
    pub probe: ProbeConfig,
    /// Sharded-ring tuning (shard count, work-stealing shape).
    pub shard: ShardConfig,
    /// Drift-driven live repartitioning of the parallel engine.
    pub drift: DriftConfig,
    /// Engine flight-recorder (telemetry) settings.
    pub telemetry: TelemetryConfig,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            window_r: 1 << 16,
            window_s: 1 << 16,
            index: IndexKind::PimTree,
            threads: 1,
            task_size: 8,
            chain_length: 2,
            pim: PimConfig::for_window(1 << 16),
            ring: RingConfig::default(),
            probe: ProbeConfig::default(),
            shard: ShardConfig::default(),
            drift: DriftConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl JoinConfig {
    /// Creates a symmetric configuration where both windows hold `w` tuples.
    pub fn symmetric(w: usize, index: IndexKind) -> Self {
        JoinConfig {
            window_r: w,
            window_s: w,
            index,
            pim: PimConfig::for_window(w),
            ..Default::default()
        }
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the task size (paper default after Figure 10c/10d: 8).
    pub fn with_task_size(mut self, task_size: usize) -> Self {
        self.task_size = task_size;
        self
    }

    /// Sets the chained-index chain length `L`.
    pub fn with_chain_length(mut self, chain_length: usize) -> Self {
        self.chain_length = chain_length;
        self
    }

    /// Overrides the PIM/IM-Tree tuning.
    pub fn with_pim(mut self, pim: PimConfig) -> Self {
        self.pim = pim;
        self
    }

    /// Overrides the parallel engine's ring / back-off tuning.
    pub fn with_ring(mut self, ring: RingConfig) -> Self {
        self.ring = ring;
        self
    }

    /// Overrides the batched-probe tuning.
    pub fn with_probe(mut self, probe: ProbeConfig) -> Self {
        self.probe = probe;
        self
    }

    /// Overrides the sharded-ring tuning.
    pub fn with_shard(mut self, shard: ShardConfig) -> Self {
        self.shard = shard;
        self
    }

    /// Overrides the drift / live-repartition tuning.
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = drift;
        self
    }

    /// Overrides the flight-recorder (telemetry) settings.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Largest of the two window sizes.
    pub fn max_window(&self) -> usize {
        self.window_r.max(self.window_s)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.window_r == 0 || self.window_s == 0 {
            return Err(Error::InvalidConfig("window sizes must be positive".into()));
        }
        if self.threads == 0 {
            return Err(Error::InvalidConfig("thread count must be positive".into()));
        }
        if self.task_size == 0 {
            return Err(Error::InvalidConfig("task size must be positive".into()));
        }
        if matches!(self.index, IndexKind::BChain | IndexKind::IbChain) && self.chain_length < 2 {
            return Err(Error::InvalidConfig(
                "chained index requires chain_length >= 2".into(),
            ));
        }
        self.ring.validate()?;
        self.probe.validate()?;
        self.shard.validate()?;
        self.drift.validate()?;
        self.telemetry.validate()?;
        self.pim.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        PimConfig::default().validate().unwrap();
        JoinConfig::default().validate().unwrap();
    }

    #[test]
    fn merge_threshold_rounds_and_clamps() {
        let c = PimConfig::for_window(1000).with_merge_ratio(0.25);
        assert_eq!(c.merge_threshold(), 250);
        let c = PimConfig::for_window(3).with_merge_ratio(0.01);
        assert_eq!(c.merge_threshold(), 1, "threshold never drops to zero");
        let c = PimConfig::for_window(1 << 20).with_merge_ratio(1.0);
        assert_eq!(c.merge_threshold(), 1 << 20);
    }

    #[test]
    fn invalid_merge_ratio_rejected() {
        assert!(PimConfig::for_window(16)
            .with_merge_ratio(0.0)
            .validate()
            .is_err());
        assert!(PimConfig::for_window(16)
            .with_merge_ratio(1.5)
            .validate()
            .is_err());
        assert!(PimConfig::for_window(16)
            .with_merge_ratio(-0.5)
            .validate()
            .is_err());
    }

    #[test]
    fn invalid_window_and_fanout_rejected() {
        let mut c = PimConfig::for_window(0);
        assert!(c.validate().is_err());
        c = PimConfig::for_window(16);
        c.css_fanout = 1;
        assert!(c.validate().is_err());
        c = PimConfig::for_window(16);
        c.btree_fanout = 2;
        assert!(c.validate().is_err());
        c = PimConfig::for_window(16);
        c.css_leaf_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn join_config_builder_chains() {
        let c = JoinConfig::symmetric(1 << 12, IndexKind::PimTree)
            .with_threads(8)
            .with_task_size(4)
            .with_chain_length(3);
        assert_eq!(c.window_r, 1 << 12);
        assert_eq!(c.window_s, 1 << 12);
        assert_eq!(c.threads, 8);
        assert_eq!(c.task_size, 4);
        assert_eq!(c.chain_length, 3);
        assert_eq!(c.max_window(), 1 << 12);
        c.validate().unwrap();
    }

    #[test]
    fn join_config_rejects_bad_values() {
        let mut c = JoinConfig::symmetric(16, IndexKind::BTree);
        c.threads = 0;
        assert!(c.validate().is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::BTree);
        c.task_size = 0;
        assert!(c.validate().is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::BChain);
        c.chain_length = 1;
        assert!(c.validate().is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::BTree);
        c.window_s = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ring_config_defaults_validate_and_builders_chain() {
        let r = RingConfig::default();
        r.validate().unwrap();
        let r = RingConfig::default()
            .with_capacity(256)
            .with_ingest_target(64)
            .with_backoff(8, 4, 100);
        assert_eq!(r.capacity, 256);
        assert_eq!(r.ingest_target, 64);
        assert_eq!((r.spin_limit, r.yield_limit, r.park_micros), (8, 4, 100));
        r.validate().unwrap();
        let c = JoinConfig::symmetric(64, IndexKind::PimTree).with_ring(r);
        assert_eq!(c.ring, r);
        c.validate().unwrap();
    }

    #[test]
    fn ring_config_rejects_bad_values() {
        assert!(RingConfig::default().with_capacity(2).validate().is_err());
        assert!(RingConfig::default()
            .with_capacity(1 << 29)
            .validate()
            .is_err());
        assert!(RingConfig::default()
            .with_backoff(1 << 17, 0, 0)
            .validate()
            .is_err());
        assert!(RingConfig::default()
            .with_backoff(0, u32::MAX, 0)
            .validate()
            .is_err());
        assert!(RingConfig::default()
            .with_backoff(0, 0, 2_000_000)
            .validate()
            .is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::PimTree);
        c.ring.capacity = 3;
        assert!(
            c.validate().is_err(),
            "JoinConfig::validate covers the ring"
        );
    }

    #[test]
    fn probe_config_defaults_validate_and_builders_chain() {
        let p = ProbeConfig::default();
        assert!(p.batch, "batched probe is the default");
        p.validate().unwrap();
        let p = ProbeConfig::default()
            .with_batch(false)
            .with_prefetch_dist(0);
        assert_eq!(p, ProbeConfig::scalar().with_prefetch_dist(0));
        p.validate().unwrap();
        let c = JoinConfig::symmetric(64, IndexKind::PimTree).with_probe(p);
        assert_eq!(c.probe, p);
        c.validate().unwrap();
    }

    #[test]
    fn probe_config_rejects_bad_values() {
        assert!(ProbeConfig::default()
            .with_prefetch_dist(2048)
            .validate()
            .is_err());
        assert!(ProbeConfig::default().with_interleave(8).validate().is_ok());
        assert!(ProbeConfig::default()
            .with_interleave(65)
            .validate()
            .is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::PimTree);
        c.probe.prefetch_dist = 4096;
        assert!(
            c.validate().is_err(),
            "JoinConfig::validate covers the probe config"
        );
    }

    #[test]
    fn shard_config_defaults_validate_and_builders_chain() {
        let s = ShardConfig::default();
        assert_eq!(s.shards, 1, "sharding is off by default");
        assert!(!s.partition_index, "the partitioned store is opt-in");
        s.validate().unwrap();
        let s = ShardConfig::default()
            .with_shards(4)
            .with_steal_batch(16)
            .with_steal_threshold(8)
            .with_partition_index(true);
        assert_eq!((s.shards, s.steal_batch, s.steal_threshold), (4, 16, 8));
        assert!(s.partition_index);
        s.validate().unwrap();
        let c = JoinConfig::symmetric(64, IndexKind::PimTree).with_shard(s);
        assert_eq!(c.shard, s);
        c.validate().unwrap();
    }

    #[test]
    fn shard_config_rejects_bad_values() {
        assert!(ShardConfig::default().with_shards(0).validate().is_err());
        assert!(ShardConfig::default().with_shards(65).validate().is_err());
        assert!(ShardConfig::default()
            .with_steal_batch(5000)
            .validate()
            .is_err());
        assert!(ShardConfig::default()
            .with_steal_threshold((1 << 20) + 1)
            .validate()
            .is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::PimTree);
        c.shard.shards = 0;
        assert!(
            c.validate().is_err(),
            "JoinConfig::validate covers the shard config"
        );
    }

    #[test]
    fn drift_config_defaults_validate_and_builders_chain() {
        let d = DriftConfig::default();
        assert!(!d.repartition, "live repartitioning is opt-in");
        assert_eq!(d.migration_mode, MigrationMode::Epoch);
        d.validate().unwrap();
        assert_eq!(d.effective_check_interval(), 4096 / 8);
        assert_eq!(
            d.effective_handoff_budget(),
            d.window,
            "automatic handoff budget matches the drift window"
        );
        let d = DriftConfig::default()
            .with_repartition(true)
            .with_window(512)
            .with_imbalance_trigger(2.0)
            .with_cost_gate(0.5)
            .with_check_interval(10)
            .with_migration_mode(MigrationMode::Incremental)
            .with_handoff_budget(128);
        assert!(d.repartition);
        assert_eq!((d.window, d.check_interval), (512, 10));
        assert_eq!(d.effective_check_interval(), 10);
        assert_eq!(d.migration_mode, MigrationMode::Incremental);
        assert_eq!(d.effective_handoff_budget(), 128);
        d.validate().unwrap();
        assert_eq!(MigrationMode::Epoch.to_string(), "epoch");
        assert_eq!(MigrationMode::Incremental.to_string(), "incremental");
        // Tiny windows floor the automatic check interval at 64.
        assert_eq!(
            DriftConfig::default()
                .with_window(100)
                .effective_check_interval(),
            64
        );
        let c = JoinConfig::symmetric(64, IndexKind::PimTree).with_drift(d);
        assert_eq!(c.drift, d);
        c.validate().unwrap();
    }

    #[test]
    fn drift_config_rejects_bad_values() {
        assert!(DriftConfig::default().with_window(0).validate().is_err());
        assert!(DriftConfig::default()
            .with_window((1 << 24) + 1)
            .validate()
            .is_err());
        assert!(DriftConfig::default()
            .with_imbalance_trigger(0.5)
            .validate()
            .is_err());
        assert!(DriftConfig::default()
            .with_imbalance_trigger(f64::NAN)
            .validate()
            .is_err());
        assert!(DriftConfig::default()
            .with_cost_gate(0.0)
            .validate()
            .is_err());
        assert!(DriftConfig::default()
            .with_cost_gate(1.5)
            .validate()
            .is_err());
        assert!(DriftConfig::default()
            .with_check_interval((1 << 24) + 1)
            .validate()
            .is_err());
        assert!(DriftConfig::default()
            .with_handoff_budget((1 << 24) + 1)
            .validate()
            .is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::PimTree);
        c.drift.window = 0;
        assert!(
            c.validate().is_err(),
            "JoinConfig::validate covers the drift config"
        );
    }

    #[test]
    fn telemetry_config_defaults_validate_and_builders_chain() {
        let t = TelemetryConfig::default();
        assert_eq!(t.mode, TelemetryMode::Off, "telemetry is opt-in");
        assert_eq!(t.sample_interval_ms, 50);
        t.validate().unwrap();
        let t = TelemetryConfig::default()
            .with_mode(TelemetryMode::Full)
            .with_sample_interval_ms(10);
        assert_eq!(t.mode, TelemetryMode::Full);
        assert_eq!(t.sample_interval_ms, 10);
        t.validate().unwrap();
        let c = JoinConfig::symmetric(64, IndexKind::PimTree).with_telemetry(t);
        assert_eq!(c.telemetry, t);
        c.validate().unwrap();
        assert_eq!(
            JoinConfig::default().telemetry.mode,
            TelemetryMode::Off,
            "JoinConfig defaults to telemetry off"
        );
    }

    #[test]
    fn telemetry_config_rejects_bad_values() {
        assert!(TelemetryConfig::default()
            .with_sample_interval_ms(0)
            .validate()
            .is_err());
        assert!(TelemetryConfig::default()
            .with_sample_interval_ms(4_000_000)
            .validate()
            .is_err());
        let mut c = JoinConfig::symmetric(16, IndexKind::PimTree);
        c.telemetry.sample_interval_ms = 0;
        assert!(
            c.validate().is_err(),
            "JoinConfig::validate covers the telemetry config"
        );
    }

    #[test]
    fn index_kind_display_is_stable() {
        assert_eq!(IndexKind::PimTree.to_string(), "pim-tree");
        assert_eq!(IndexKind::BTree.to_string(), "b+tree");
        assert_eq!(IndexKind::IbChain.to_string(), "ib-chain");
    }
}
