//! Error handling shared by the workspace.

/// Convenient result alias using the workspace [`Error`] type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by index structures and join operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration value is outside its legal domain.
    InvalidConfig(String),
    /// An exact `(key, seq)` entry scheduled for deletion was not found.
    EntryNotFound {
        /// Join-attribute key of the missing entry.
        key: i64,
        /// Window sequence number of the missing entry.
        seq: u64,
    },
    /// The sliding window ring buffer ran out of capacity. This indicates the
    /// over-provisioning factor is too small for the number of in-flight tasks.
    WindowFull {
        /// Configured slot capacity of the window ring buffer.
        capacity: usize,
    },
    /// A worker thread panicked inside a parallel operator.
    WorkerPanicked(String),
    /// The operator was asked to do something unsupported in its current state
    /// (e.g. probing an index mid-merge in a mode that forbids it).
    IllegalState(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::EntryNotFound { key, seq } => {
                write!(f, "entry (key={key}, seq={seq}) not found in index")
            }
            Error::WindowFull { capacity } => {
                write!(f, "sliding window ring buffer full (capacity {capacity})")
            }
            Error::WorkerPanicked(msg) => write!(f, "worker thread panicked: {msg}"),
            Error::IllegalState(msg) => write!(f, "illegal operator state: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidConfig("merge ratio must be in (0, 1]".into());
        assert!(e.to_string().contains("merge ratio"));
        let e = Error::EntryNotFound { key: 42, seq: 7 };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains('7'));
        let e = Error::WindowFull { capacity: 128 };
        assert!(e.to_string().contains("128"));
        let e = Error::WorkerPanicked("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = Error::IllegalState("mid-merge".into());
        assert!(e.to_string().contains("mid-merge"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_: &E) {}
        assert_std_error(&Error::WindowFull { capacity: 1 });
    }
}
