//! Per-task window boundary snapshots.

use pimtree_common::Seq;

/// The boundaries of the *opposite* sliding window recorded when a task is
/// assigned to a worker thread (§4.1 of the paper).
///
/// For a count-based window these have to be captured explicitly because the
/// window keeps sliding while the task is being processed: the join result of
/// the task's tuples must be computed against the window content *as of* task
/// acquisition time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowBounds {
    /// Sequence number of the earliest live tuple (`te`).
    pub earliest: Seq,
    /// Sequence number one past the latest live tuple (`tl + 1`), i.e. an
    /// exclusive upper bound. Using an exclusive bound keeps the empty-window
    /// case (`earliest == latest_exclusive`) representable without `Option`.
    pub latest_exclusive: Seq,
}

impl WindowBounds {
    /// Creates a boundary snapshot.
    pub fn new(earliest: Seq, latest_exclusive: Seq) -> Self {
        debug_assert!(earliest <= latest_exclusive);
        WindowBounds {
            earliest,
            latest_exclusive,
        }
    }

    /// An empty window snapshot.
    pub fn empty() -> Self {
        WindowBounds {
            earliest: 0,
            latest_exclusive: 0,
        }
    }

    /// Number of live tuples covered by the snapshot.
    pub fn len(&self) -> usize {
        (self.latest_exclusive - self.earliest) as usize
    }

    /// Whether the snapshot covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.earliest == self.latest_exclusive
    }

    /// Whether `seq` falls inside the snapshot.
    #[inline]
    pub fn contains(&self, seq: Seq) -> bool {
        self.earliest <= seq && seq < self.latest_exclusive
    }

    /// Upper bound (exclusive) of the *index-covered* part of this snapshot,
    /// given an edge-tuple snapshot of the probed window: everything before
    /// the edge is findable through the index, everything from the edge up to
    /// the snapshot's end must come from the linear scan. An outdated edge
    /// snapshot only lengthens the scan, never loses results (§4.1).
    #[inline]
    pub fn index_horizon(&self, edge: Seq) -> Seq {
        edge.min(self.latest_exclusive)
    }

    /// Lower bound (inclusive) of the linear-scan range for this snapshot,
    /// given an edge-tuple snapshot: the scan starts at the edge but never
    /// before the snapshot's earliest live tuple — when the edge lags behind
    /// the expiry horizon (e.g. while a merge freezes it), everything before
    /// `earliest` is expired for this probe and must not match.
    #[inline]
    pub fn scan_start(&self, edge: Seq) -> Seq {
        edge.max(self.earliest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_bounds() {
        let b = WindowBounds::new(10, 20);
        assert!(!b.contains(9));
        assert!(b.contains(10));
        assert!(b.contains(19));
        assert!(!b.contains(20));
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }

    #[test]
    fn probe_split_helpers_clamp_to_the_snapshot() {
        let b = WindowBounds::new(10, 20);
        // Edge inside the snapshot: index covers [10, 14), scan covers [14, 20).
        assert_eq!(b.index_horizon(14), 14);
        assert_eq!(b.scan_start(14), 14);
        // Edge beyond the snapshot: everything comes from the index.
        assert_eq!(b.index_horizon(25), 20);
        assert_eq!(b.scan_start(25), 25, "scan range [25, 20) is empty");
        // Edge lagging behind expiry: expired prefix is excluded from the scan.
        assert_eq!(b.index_horizon(4), 4);
        assert_eq!(b.scan_start(4), 10);
    }

    #[test]
    fn empty_snapshot() {
        let b = WindowBounds::empty();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(!b.contains(0));
    }
}
