//! The concurrent count-based sliding window.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pimtree_common::{Error, Key, KeyRange, Result, Seq};

use crate::bounds::WindowBounds;

const FLAG_OCCUPIED: u8 = 0b01;
const FLAG_INDEXED: u8 = 0b10;

/// A count-based sliding window backed by a fixed-capacity ring buffer.
///
/// * Appends are performed by a single ingest thread (the join operator's
///   tuple-arrival path).
/// * The *live* window at any instant is the last `window_size` appended
///   tuples; older tuples are *expired* but their slots remain readable until
///   the ring wraps, which is what in-flight tasks of a parallel join rely on.
/// * Each slot carries an *indexed* flag; the *edge tuple* is the earliest
///   appended tuple that has not been indexed yet (§4.1). All tuples before
///   the edge are guaranteed to be present in the window's index.
///
/// Keys and flags are stored in two separate arrays: the linear window scan of
/// the parallel join reads long runs of keys while other workers concurrently
/// flip *indexed* flags, and interleaving the two in one slot struct would put
/// every flag write on a cache line that scanning threads are reading (false
/// sharing that flattens multithreaded scaling).
#[derive(Debug)]
pub struct SlidingWindow {
    keys: Vec<AtomicI64>,
    flags: Vec<AtomicU8>,
    capacity: usize,
    window_size: usize,
    /// Number of tuples ever appended == sequence number of the next tuple.
    head: CachePadded<AtomicU64>,
    /// Sequence number of the earliest non-indexed tuple.
    edge: CachePadded<AtomicU64>,
    /// Serialises edge advancement (the paper uses a test-and-set mutex).
    edge_lock: CachePadded<Mutex<()>>,
}

impl SlidingWindow {
    /// Creates a window of `window_size` live tuples with `slack` extra slots
    /// retained past expiry for in-flight readers.
    pub fn new(window_size: usize, slack: usize) -> Self {
        assert!(window_size > 0, "window size must be positive");
        // Power-of-two capacity so that slot addressing is a mask instead of a
        // division — the linear window scan of the parallel join touches many
        // slots per probe and the modulo would dominate it.
        let capacity = (window_size + slack.max(1)).next_power_of_two();
        let keys = (0..capacity).map(|_| AtomicI64::new(0)).collect();
        let flags = (0..capacity).map(|_| AtomicU8::new(0)).collect();
        SlidingWindow {
            keys,
            flags,
            capacity,
            window_size,
            head: CachePadded::new(AtomicU64::new(0)),
            edge: CachePadded::new(AtomicU64::new(0)),
            edge_lock: CachePadded::new(Mutex::new(())),
        }
    }

    /// Creates a window with the default slack used by the single-threaded
    /// operators (a small constant, since nothing outlives its expiry).
    pub fn with_default_slack(window_size: usize) -> Self {
        Self::new(window_size, 64)
    }

    /// Configured number of live tuples (`w`).
    #[inline]
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Ring-buffer capacity (`w` + slack).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn pos(&self, seq: Seq) -> usize {
        debug_assert!(self.capacity.is_power_of_two());
        (seq as usize) & (self.capacity - 1)
    }

    /// Appends a tuple, returning its sequence number.
    ///
    /// Returns [`Error::WindowFull`] if appending would overwrite a slot that
    /// is still inside the live window *and* not yet readable for reuse —
    /// which can only happen if the configured slack is smaller than the
    /// number of tuples the caller keeps in flight.
    pub fn append(&self, key: Key) -> Result<Seq> {
        let seq = self.head.load(Ordering::Relaxed);
        // The slot being reused belonged to `seq - capacity`; it must be
        // outside the live window by a margin of the slack.
        if seq >= self.capacity as u64 {
            let recycled = seq - self.capacity as u64;
            let earliest_live = seq.saturating_sub(self.window_size as u64);
            if recycled >= earliest_live {
                return Err(Error::WindowFull {
                    capacity: self.capacity,
                });
            }
        }
        let pos = self.pos(seq);
        self.keys[pos].store(key, Ordering::Relaxed);
        self.flags[pos].store(FLAG_OCCUPIED, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
        Ok(seq)
    }

    /// Number of tuples ever appended (== the next sequence number).
    #[inline]
    pub fn head(&self) -> Seq {
        self.head.load(Ordering::Acquire)
    }

    /// Sequence number of the most recently appended tuple, if any.
    pub fn latest(&self) -> Option<Seq> {
        let h = self.head();
        if h == 0 {
            None
        } else {
            Some(h - 1)
        }
    }

    /// Sequence number of the earliest *live* (non-expired) tuple.
    #[inline]
    pub fn earliest_live(&self) -> Seq {
        self.head().saturating_sub(self.window_size as u64)
    }

    /// Whether `seq` has expired from the live window.
    #[inline]
    pub fn is_expired(&self, seq: Seq) -> bool {
        seq < self.earliest_live()
    }

    /// Number of live tuples currently in the window.
    pub fn live_len(&self) -> usize {
        (self.head() - self.earliest_live()) as usize
    }

    /// Boundary snapshot `(te, tl]` of the current live window.
    pub fn bounds(&self) -> WindowBounds {
        let head = self.head();
        WindowBounds::new(head.saturating_sub(self.window_size as u64), head)
    }

    /// Key of the tuple with sequence number `seq`.
    ///
    /// The caller must ensure `seq` has been appended and its slot has not
    /// been recycled (i.e. `head() - seq <= capacity()`).
    #[inline]
    pub fn key_of(&self, seq: Seq) -> Key {
        debug_assert!(seq < self.head());
        debug_assert!((self.head() - seq) as usize <= self.capacity);
        self.keys[self.pos(seq)].load(Ordering::Relaxed)
    }

    /// Marks the tuple `seq` as inserted into the window's index.
    #[inline]
    pub fn mark_indexed(&self, seq: Seq) {
        self.flags[self.pos(seq)].fetch_or(FLAG_INDEXED, Ordering::Release);
    }

    /// Whether tuple `seq` has been marked as indexed.
    #[inline]
    pub fn is_indexed(&self, seq: Seq) -> bool {
        self.flags[self.pos(seq)].load(Ordering::Acquire) & FLAG_INDEXED != 0
    }

    /// Current edge tuple: the earliest appended tuple that is not yet
    /// indexed. Every tuple with a smaller sequence number is guaranteed to be
    /// findable through the index.
    #[inline]
    pub fn edge(&self) -> Seq {
        self.edge.load(Ordering::Acquire)
    }

    /// Length of the non-indexed window suffix (`head - edge`).
    ///
    /// This is the admission-control signal of the parallel engine's task
    /// ring: ingestion stalls while the suffix exceeds its bound, because
    /// every probe's linear scan covers the suffix and would otherwise grow
    /// without limit while a merge defers index updates. The two loads are
    /// not one atomic snapshot; the edge can only trail the head, so the
    /// returned length may be momentarily over-estimated (head advanced
    /// in between), which errs on the side of admitting less — never more.
    #[inline]
    pub fn unindexed_len(&self) -> u64 {
        let head = self.head();
        head.saturating_sub(self.edge.load(Ordering::Acquire))
    }

    /// Attempts to advance the edge tuple past consecutively indexed tuples.
    ///
    /// Mirrors the paper's test-and-set scheme: if another thread currently
    /// holds the edge lock the call returns `false` immediately and the caller
    /// simply moves on — the holder will advance the edge for everyone.
    pub fn try_advance_edge(&self) -> bool {
        let Some(_guard) = self.edge_lock.try_lock() else {
            return false;
        };
        let head = self.head();
        let mut edge = self.edge.load(Ordering::Relaxed);
        while edge < head && self.is_indexed(edge) {
            edge += 1;
        }
        self.edge.store(edge, Ordering::Release);
        true
    }

    /// Forces the edge to `seq` (used by the single-threaded operators, which
    /// index every tuple synchronously).
    pub fn set_edge(&self, seq: Seq) {
        self.edge.store(seq, Ordering::Release);
    }

    /// Linearly scans tuples with sequence numbers in `[from, to)` whose keys
    /// fall into `range`, invoking `f(seq, key)` for each. Returns the number
    /// of slots examined (used for memory-traffic accounting).
    ///
    /// This is the "linear search from the edge tuple" of §4.1.
    pub fn scan_linear<F: FnMut(Seq, Key)>(
        &self,
        from: Seq,
        to: Seq,
        range: KeyRange,
        mut f: F,
    ) -> usize {
        let mut examined = 0;
        let mut seq = from;
        while seq < to {
            let key = self.key_of(seq);
            examined += 1;
            if range.contains(key) {
                f(seq, key);
            }
            seq += 1;
        }
        examined
    }

    /// Returns the keys of all live tuples, oldest first (used by NLWJ and by
    /// the merge step to rebuild `TS` from live tuples only).
    pub fn live_tuples(&self) -> Vec<(Seq, Key)> {
        let b = self.bounds();
        (b.earliest..b.latest_exclusive)
            .map(|seq| (seq, self.key_of(seq)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let w = SlidingWindow::new(4, 16);
        for i in 0..4i64 {
            let seq = w.append(i * 10).unwrap();
            assert_eq!(seq, i as u64);
        }
        assert_eq!(w.head(), 4);
        assert_eq!(w.latest(), Some(3));
        assert_eq!(w.earliest_live(), 0);
        assert_eq!(w.live_len(), 4);
        for i in 0..4u64 {
            assert_eq!(w.key_of(i), i as i64 * 10);
        }
    }

    #[test]
    fn expiry_is_count_based() {
        let w = SlidingWindow::new(4, 16);
        for i in 0..10i64 {
            w.append(i).unwrap();
        }
        assert_eq!(w.earliest_live(), 6);
        assert!(w.is_expired(5));
        assert!(!w.is_expired(6));
        assert_eq!(w.live_len(), 4);
        let live = w.live_tuples();
        assert_eq!(live, vec![(6, 6), (7, 7), (8, 8), (9, 9)]);
    }

    #[test]
    fn empty_window_basics() {
        let w = SlidingWindow::new(8, 8);
        assert_eq!(w.latest(), None);
        assert_eq!(w.live_len(), 0);
        assert!(w.bounds().is_empty());
        assert_eq!(w.edge(), 0);
    }

    #[test]
    fn ring_reuse_respects_slack() {
        let w = SlidingWindow::new(4, 4);
        // capacity = 8; we can append indefinitely as long as the recycled
        // slot is already expired.
        for i in 0..100i64 {
            w.append(i).unwrap();
        }
        assert_eq!(w.live_len(), 4);
        // Keys of live tuples are still correct after many wraps.
        assert_eq!(
            w.live_tuples(),
            vec![(96, 96), (97, 97), (98, 98), (99, 99)]
        );
    }

    #[test]
    fn window_full_when_slack_exhausted() {
        // window_size 4, slack 1 -> capacity 5. Appending the 6th tuple would
        // recycle seq 0... which is expired once head = 5 (earliest_live = 1),
        // so appends keep succeeding; WindowFull only triggers if the recycled
        // slot were still live, which requires capacity < window (prevented by
        // construction) — so exercise the guard through the dedicated check.
        let w = SlidingWindow::new(4, 1);
        for i in 0..50i64 {
            assert!(w.append(i).is_ok(), "append {i}");
        }
    }

    #[test]
    fn indexed_flags_and_edge_advance() {
        let w = SlidingWindow::new(8, 8);
        for i in 0..6i64 {
            w.append(i).unwrap();
        }
        assert_eq!(w.edge(), 0);
        // Index tuples 0, 1 and 3 (out of order, as parallel workers would).
        w.mark_indexed(1);
        w.mark_indexed(3);
        assert!(w.try_advance_edge());
        assert_eq!(w.edge(), 0, "tuple 0 not indexed yet, edge cannot move");
        w.mark_indexed(0);
        assert!(w.try_advance_edge());
        assert_eq!(w.edge(), 2, "edge stops at the first non-indexed tuple");
        w.mark_indexed(2);
        assert!(w.try_advance_edge());
        assert_eq!(w.edge(), 4);
        assert!(w.is_indexed(3));
        assert!(!w.is_indexed(4));
    }

    #[test]
    fn unindexed_len_tracks_head_minus_edge() {
        let w = SlidingWindow::new(8, 8);
        assert_eq!(w.unindexed_len(), 0);
        for i in 0..5i64 {
            w.append(i).unwrap();
        }
        assert_eq!(w.unindexed_len(), 5);
        for seq in 0..3u64 {
            w.mark_indexed(seq);
        }
        assert!(w.try_advance_edge());
        assert_eq!(w.unindexed_len(), 2);
        w.mark_indexed(3);
        w.mark_indexed(4);
        assert!(w.try_advance_edge());
        assert_eq!(w.unindexed_len(), 0);
    }

    #[test]
    fn edge_never_passes_head() {
        let w = SlidingWindow::new(8, 8);
        for i in 0..3i64 {
            let s = w.append(i).unwrap();
            w.mark_indexed(s);
        }
        assert!(w.try_advance_edge());
        assert_eq!(w.edge(), 3);
        assert_eq!(w.head(), 3);
    }

    #[test]
    fn scan_linear_filters_by_key_range() {
        let w = SlidingWindow::new(16, 16);
        for i in 0..10i64 {
            w.append(i * 5).unwrap();
        }
        let mut hits = Vec::new();
        let examined = w.scan_linear(2, 8, KeyRange::new(14, 31), |seq, key| {
            hits.push((seq, key))
        });
        assert_eq!(examined, 6);
        assert_eq!(hits, vec![(3, 15), (4, 20), (5, 25), (6, 30)]);
        // Empty scan range.
        assert_eq!(
            w.scan_linear(5, 5, KeyRange::new(0, 100), |_, _| panic!()),
            0
        );
    }

    #[test]
    fn bounds_snapshot_reflects_live_window() {
        let w = SlidingWindow::new(4, 8);
        for i in 0..7i64 {
            w.append(i).unwrap();
        }
        let b = w.bounds();
        assert_eq!(b.earliest, 3);
        assert_eq!(b.latest_exclusive, 7);
        assert_eq!(b.len(), 4);
        assert!(b.contains(3));
        assert!(!b.contains(7));
    }

    #[test]
    fn concurrent_mark_and_advance() {
        use std::sync::Arc;
        let w = Arc::new(SlidingWindow::new(1024, 1024));
        for i in 0..1024i64 {
            w.append(i).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let w = w.clone();
            handles.push(std::thread::spawn(move || {
                for seq in (t..1024).step_by(8) {
                    w.mark_indexed(seq);
                    w.try_advance_edge();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        w.try_advance_edge();
        assert_eq!(w.edge(), 1024);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_rejected() {
        let _ = SlidingWindow::new(0, 8);
    }
}
