//! A simple time-based sliding window.
//!
//! The paper presents its approach on count-based windows and notes that
//! "there is no technical limitation for applying our approach to time-based
//! sliding windows" (§2.1). This module provides a minimal time-based window
//! so that the examples can demonstrate that claim: tuples carry an event
//! timestamp and expire once the window's watermark moves past
//! `timestamp + duration`.

use pimtree_common::{Key, Seq};

/// A tuple held by the time-based window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedTuple {
    /// Arrival sequence number.
    pub seq: Seq,
    /// Join attribute.
    pub key: Key,
    /// Event timestamp in arbitrary monotone units (e.g. microseconds).
    pub timestamp: u64,
}

/// A time-based sliding window keeping tuples whose timestamps lie within
/// `duration` of the most recent watermark.
#[derive(Debug)]
pub struct TimeWindow {
    duration: u64,
    tuples: std::collections::VecDeque<TimedTuple>,
    next_seq: Seq,
    watermark: u64,
}

impl TimeWindow {
    /// Creates a window retaining tuples for `duration` time units.
    pub fn new(duration: u64) -> Self {
        assert!(duration > 0, "window duration must be positive");
        TimeWindow {
            duration,
            tuples: std::collections::VecDeque::new(),
            next_seq: 0,
            watermark: 0,
        }
    }

    /// Window duration.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Appends a tuple with the given event timestamp, advances the watermark
    /// and evicts expired tuples. Timestamps must be non-decreasing.
    pub fn append(&mut self, key: Key, timestamp: u64) -> Seq {
        assert!(
            timestamp >= self.watermark,
            "timestamps must be non-decreasing (got {timestamp} after {})",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.watermark = timestamp;
        self.tuples.push_back(TimedTuple {
            seq,
            key,
            timestamp,
        });
        self.evict();
        seq
    }

    /// Advances the watermark without appending (e.g. on a punctuation) and
    /// evicts expired tuples.
    pub fn advance_watermark(&mut self, timestamp: u64) {
        assert!(
            timestamp >= self.watermark,
            "watermark cannot move backwards"
        );
        self.watermark = timestamp;
        self.evict();
    }

    fn evict(&mut self) {
        let horizon = self.watermark.saturating_sub(self.duration);
        while let Some(front) = self.tuples.front() {
            if front.timestamp < horizon {
                self.tuples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current number of live tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the live tuples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedTuple> {
        self.tuples.iter()
    }

    /// Current watermark.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_expire_by_time_not_count() {
        let mut w = TimeWindow::new(100);
        w.append(1, 0);
        w.append(2, 50);
        w.append(3, 120);
        // Tuple at t=0 is older than 120 - 100 = 20, so it is gone.
        assert_eq!(w.len(), 2);
        let keys: Vec<Key> = w.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![2, 3]);
    }

    #[test]
    fn watermark_advances_without_appends() {
        let mut w = TimeWindow::new(10);
        w.append(1, 0);
        w.append(2, 5);
        assert_eq!(w.len(), 2);
        w.advance_watermark(50);
        assert!(w.is_empty());
        assert_eq!(w.watermark(), 50);
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut w = TimeWindow::new(10);
        assert_eq!(w.append(1, 1), 0);
        assert_eq!(w.append(2, 2), 1);
        assert_eq!(w.append(3, 3), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_timestamps_rejected() {
        let mut w = TimeWindow::new(10);
        w.append(1, 100);
        w.append(2, 50);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        let _ = TimeWindow::new(0);
    }
}
