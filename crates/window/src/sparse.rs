//! Per-shard sliding-window slices for the partitioned index store.
//!
//! When the parallel engine partitions its index and window state per shard
//! (the `ShardStore` layer of `pimtree-join`), each shard keeps only the
//! tuples whose keys fall into its key range — a *subsequence* of the side's
//! global arrival order. [`SlidingWindow`](crate::SlidingWindow) cannot hold
//! such a slice: its ring addresses slots by the dense global sequence
//! number. [`ShardWindow`] stores explicit `(seq, key)` pairs instead, in
//! local append order (which is ascending in the global sequence number), and
//! re-implements the window protocol over the sparse slice:
//!
//! * **Expiry stays global.** A tuple expires when `w` newer tuples of its
//!   *side* have arrived, regardless of which shard they were routed to, so
//!   every liveness query takes the global sequence horizon as a parameter
//!   instead of deriving it from the local count.
//! * **The edge tuple is per shard.** All local entries before the shard's
//!   edge are guaranteed to be in the *shard's* index, so a probe of this
//!   shard splits at the shard's own edge: index lookups below it, a linear
//!   scan of the local suffix above it. A stale edge only lengthens the scan
//!   (§4.1), exactly as with the shared window.
//! * **Slots stay readable past expiry.** Like the shared window, the ring
//!   retains `slack` extra slots so in-flight tasks can still scan tuples
//!   that expired after their bounds snapshot was taken. The local slice is
//!   never denser than the global stream, so the same slack budget suffices.
//!
//! Appends are serialised by the store's ingest path (single writer); scans,
//! indexed-flag updates and edge advancement run concurrently from any number
//! of worker threads.

use crossbeam::utils::CachePadded;
use pimtree_common::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use pimtree_common::sync::Mutex;
use pimtree_common::{Error, Key, KeyRange, Result, Seq};

const FLAG_INDEXED: u8 = 0b1;

/// One shard's slice of a sliding window: the `(seq, key)` subsequence routed
/// to the shard, with per-entry *indexed* flags, a shard-local edge tuple and
/// an eager-expiry cursor. See the module documentation for the protocol.
#[derive(Debug)]
pub struct ShardWindow {
    seqs: Vec<AtomicU64>,
    keys: Vec<AtomicI64>,
    flags: Vec<AtomicU8>,
    capacity: usize,
    window_size: usize,
    /// Number of local entries ever appended (the local append cursor).
    len: CachePadded<AtomicU64>,
    /// Local index of the earliest local entry not yet marked indexed.
    edge_idx: CachePadded<AtomicU64>,
    /// Serialises edge advancement (the paper's test-and-set scheme).
    edge_lock: CachePadded<Mutex<()>>,
    /// Local index of the next entry the eager-expiry cursor will report.
    expire_cursor: Mutex<u64>,
}

impl ShardWindow {
    /// Creates a shard slice of a window of `window_size` live tuples with
    /// `slack` extra slots retained past expiry for in-flight readers. The
    /// capacity covers the worst case of every key routing to this shard.
    pub fn new(window_size: usize, slack: usize) -> Self {
        assert!(window_size > 0, "window size must be positive");
        let capacity = (window_size + slack.max(1)).next_power_of_two();
        ShardWindow {
            seqs: (0..capacity).map(|_| AtomicU64::new(u64::MAX)).collect(),
            keys: (0..capacity).map(|_| AtomicI64::new(0)).collect(),
            flags: (0..capacity).map(|_| AtomicU8::new(0)).collect(),
            capacity,
            window_size,
            len: CachePadded::new(AtomicU64::new(0)),
            edge_idx: CachePadded::new(AtomicU64::new(0)),
            edge_lock: CachePadded::new(Mutex::new(())),
            expire_cursor: Mutex::new(0),
        }
    }

    /// Configured number of live tuples (`w`) of the *global* window this
    /// shard holds a slice of.
    #[inline]
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Ring-buffer capacity of the local slice.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn pos(&self, local_idx: u64) -> usize {
        debug_assert!(self.capacity.is_power_of_two());
        (local_idx as usize) & (self.capacity - 1)
    }

    #[inline]
    fn seq_at(&self, local_idx: u64) -> Seq {
        self.seqs[self.pos(local_idx)].load(Ordering::Relaxed)
    }

    /// Appends the tuple `(seq, key)` to the local slice. `seq` is the global
    /// sequence number assigned by the side's ingest path and must be larger
    /// than every previously appended one; `earliest_keep` is the side's
    /// current expiry horizon (the oldest live sequence number). Slots below
    /// it stay readable for up to `slack` further appends — in-flight
    /// readers rely on that — so the caller must not pass anything *below*
    /// the horizon to "reclaim" slots early.
    ///
    /// Returns [`Error::WindowFull`] if appending would recycle a slot whose
    /// entry is at or past `earliest_keep` (i.e. still live) — which can
    /// only happen when the configured slack is smaller than the number of
    /// tuples the caller keeps in flight.
    pub fn append(&self, seq: Seq, key: Key, earliest_keep: Seq) -> Result<()> {
        let len = self.len.load(Ordering::Relaxed);
        if len >= self.capacity as u64 {
            let recycled = self.seq_at(len); // == seq_at(len - capacity)
            if recycled >= earliest_keep {
                return Err(Error::WindowFull {
                    capacity: self.capacity,
                });
            }
        }
        debug_assert!(len == 0 || self.seq_at(len - 1) < seq);
        let pos = self.pos(len);
        self.seqs[pos].store(seq, Ordering::Relaxed);
        self.keys[pos].store(key, Ordering::Relaxed);
        self.flags[pos].store(0, Ordering::Release);
        self.len.store(len + 1, Ordering::Release);
        Ok(())
    }

    /// Number of entries ever appended to the local slice.
    #[inline]
    pub fn local_len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Oldest local index whose slot is guaranteed not to have been recycled.
    #[inline]
    fn floor(&self, len: u64) -> u64 {
        len.saturating_sub(self.capacity as u64)
    }

    /// Smallest local index whose entry has `seq >= from`, found by walking
    /// backwards from the append cursor. Walking backwards (instead of a
    /// binary search) is what makes the lookup safe against concurrent slot
    /// recycling: a recycled slot carries a *newer* sequence number, so the
    /// walk can only over-extend downwards, never skip a live entry, and the
    /// forward consumer re-filters by sequence number anyway.
    fn lower_bound(&self, from: Seq, len: u64) -> u64 {
        let floor = self.floor(len);
        let mut idx = len;
        while idx > floor && self.seq_at(idx - 1) >= from {
            idx -= 1;
        }
        idx
    }

    /// Marks the local entry carrying global sequence number `seq` as
    /// inserted into the shard's index. Returns whether the entry was found
    /// (it always is while the engine's slack budget holds).
    pub fn mark_indexed(&self, seq: Seq) -> bool {
        let len = self.len.load(Ordering::Acquire);
        let floor = self.floor(len);
        // Binary search over the local slice; entries are ascending in `seq`
        // except for slots recycled during the search, which carry *newer*
        // sequence numbers. The exact-match validation below catches any
        // position the corruption may have skewed, falling back to the
        // recycle-safe backward walk.
        let (mut lo, mut hi) = (floor, len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.seq_at(mid) < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < len && self.seq_at(lo) == seq {
            self.flags[self.pos(lo)].fetch_or(FLAG_INDEXED, Ordering::Release);
            return true;
        }
        let mut idx = len;
        while idx > floor {
            idx -= 1;
            let s = self.seq_at(idx);
            if s == seq {
                self.flags[self.pos(idx)].fetch_or(FLAG_INDEXED, Ordering::Release);
                return true;
            }
            if s < seq {
                break;
            }
        }
        false
    }

    /// Global sequence number of the shard's edge tuple: every local entry
    /// with a smaller sequence number is guaranteed to be in the shard's
    /// index. [`Seq::MAX`] when every local entry is indexed — for this
    /// shard the index covers the entire probe range.
    pub fn edge_seq(&self) -> Seq {
        let len = self.len.load(Ordering::Acquire);
        let edge = self.edge_idx.load(Ordering::Acquire).min(len);
        if edge >= len {
            Seq::MAX
        } else {
            self.seq_at(edge)
        }
    }

    /// Number of local entries in the non-indexed suffix (`local_len` minus
    /// the edge index) — this shard's contribution to the side's
    /// admission-control bound.
    #[inline]
    pub fn unindexed_len(&self) -> u64 {
        let len = self.len.load(Ordering::Acquire);
        len.saturating_sub(self.edge_idx.load(Ordering::Acquire).min(len))
    }

    /// Attempts to advance the shard's edge past consecutively indexed local
    /// entries; returns `false` immediately when another thread holds the
    /// edge lock (the holder advances for everyone).
    pub fn try_advance_edge(&self) -> bool {
        let Some(_guard) = self.edge_lock.try_lock() else {
            return false;
        };
        let len = self.len.load(Ordering::Acquire);
        let mut edge = self.edge_idx.load(Ordering::Relaxed);
        while edge < len && self.flags[self.pos(edge)].load(Ordering::Acquire) & FLAG_INDEXED != 0 {
            edge += 1;
        }
        self.edge_idx.store(edge, Ordering::Release);
        true
    }

    /// Linearly scans local entries with global sequence numbers in
    /// `[from, to)` whose keys fall into `range`, invoking `f(seq, key)` for
    /// each in ascending sequence order. Returns the number of slots
    /// examined (for memory-traffic accounting).
    pub fn scan_linear<F: FnMut(Seq, Key)>(
        &self,
        from: Seq,
        to: Seq,
        range: KeyRange,
        mut f: F,
    ) -> usize {
        if from >= to {
            return 0;
        }
        let len = self.len.load(Ordering::Acquire);
        let start = self.lower_bound(from, len);
        let mut examined = 0;
        for idx in start..len {
            let seq = self.seq_at(idx);
            examined += 1;
            // Entries past `to` were appended after the task's bounds
            // snapshot; entries below `from` can only appear here when their
            // slot was recycled mid-walk (carrying a newer seq at walk time).
            // Filtering instead of breaking keeps both races harmless.
            if seq < from || seq >= to {
                continue;
            }
            let key = self.keys[self.pos(idx)].load(Ordering::Relaxed);
            if range.contains(key) {
                f(seq, key);
            }
        }
        examined
    }

    /// Advances the eager-expiry cursor: reports `f(key, seq)` once for every
    /// local entry with `seq < upto` not reported before, in ascending
    /// sequence order. Backends with eager expiry deletion (the Bw-Tree)
    /// drive their per-shard deletions through this — each shard retires
    /// exactly its own slice, so a tuple is never deleted from (or left
    /// behind in) another shard's index.
    pub fn expire_eager<F: FnMut(Key, Seq)>(&self, upto: Seq, mut f: F) {
        let mut cursor = self.expire_cursor.lock();
        let len = self.len.load(Ordering::Acquire);
        let floor = self.floor(len);
        if *cursor < floor {
            // Slots recycled before the cursor reached them; their entries
            // expired long ago (the slack budget guarantees it).
            *cursor = floor;
        }
        while *cursor < len {
            let seq = self.seq_at(*cursor);
            if seq >= upto {
                break;
            }
            f(self.keys[self.pos(*cursor)].load(Ordering::Relaxed), seq);
            *cursor += 1;
        }
    }

    /// Collects every resident local entry — `(seq, key, indexed)` ascending
    /// in `seq` — including entries past the expiry horizon that the slack
    /// budget still keeps readable. This is the migration path's view of the
    /// slice: the caller must hold the engine quiescent (no concurrent
    /// appends, scans or flag updates), so the snapshot is exact.
    pub fn snapshot(&self) -> Vec<(Seq, Key, bool)> {
        let len = self.len.load(Ordering::Acquire);
        let floor = self.floor(len);
        (floor..len)
            .map(|idx| {
                let pos = self.pos(idx);
                (
                    self.seqs[pos].load(Ordering::Relaxed),
                    self.keys[pos].load(Ordering::Relaxed),
                    self.flags[pos].load(Ordering::Relaxed) & FLAG_INDEXED != 0,
                )
            })
            .collect()
    }

    /// Builds a fresh shard slice holding `entries` — `(seq, key, indexed)`
    /// strictly ascending in `seq` — the migration path's constructor when a
    /// repartition moves window tuples to a new owner shard. Indexed flags
    /// are preserved, the edge is re-derived (first non-indexed entry), and
    /// the eager-expiry cursor restarts at the oldest entry: a re-reported
    /// already-deleted entry is a harmless no-op removal, whereas skipping a
    /// migrated entry would leak it in an eager-deletion index.
    ///
    /// # Panics
    ///
    /// Panics if the entries do not fit the capacity implied by
    /// `window_size + slack` (the migration keep-horizon guarantees they do)
    /// or are not strictly ascending.
    pub fn from_entries(window_size: usize, slack: usize, entries: &[(Seq, Key, bool)]) -> Self {
        let w = ShardWindow::new(window_size, slack);
        assert!(
            entries.len() <= w.capacity,
            "{} migrated entries exceed the shard window capacity {}",
            entries.len(),
            w.capacity
        );
        for &(seq, key, indexed) in entries {
            w.append(seq, key, 0)
                .expect("capacity was checked; no recycling can occur");
            if indexed {
                let found = w.mark_indexed(seq);
                debug_assert!(found);
            }
        }
        w.try_advance_edge();
        w
    }

    /// Rebuilds the slice in place from `entries` — semantically identical
    /// to replacing the window with [`ShardWindow::from_entries`] of the
    /// same configuration, but reusing the already-allocated slot arrays.
    /// The incremental handoff path rebuilds the source and destination
    /// windows on *every* budgeted step; allocating fresh (slack-dominated)
    /// slot arrays there would cost more than the step's actual data
    /// movement and put an O(capacity) floor under the per-step stall.
    /// Exclusive access (`&mut`) stands in for the quiesce the migration
    /// paths already hold: no reader can observe the intermediate state.
    ///
    /// # Panics
    ///
    /// Panics if the entries exceed the capacity (the migration keep-horizon
    /// guarantees they never do).
    pub fn rebuild_in_place(&mut self, entries: &[(Seq, Key, bool)]) {
        assert!(
            entries.len() <= self.capacity,
            "{} migrated entries exceed the shard window capacity {}",
            entries.len(),
            self.capacity
        );
        for (i, &(seq, key, indexed)) in entries.iter().enumerate() {
            debug_assert!(
                i == 0 || entries[i - 1].0 < seq,
                "entries must ascend in seq"
            );
            *self.seqs[i].get_mut() = seq;
            *self.keys[i].get_mut() = key;
            *self.flags[i].get_mut() = if indexed { FLAG_INDEXED } else { 0 };
        }
        // Same derived state as `from_entries`: the edge sits on the first
        // non-indexed entry and the eager-expiry cursor restarts at the
        // oldest entry (re-reporting an already-deleted entry is a harmless
        // no-op removal; skipping one would leak it).
        let edge = entries
            .iter()
            .position(|&(_, _, indexed)| !indexed)
            .unwrap_or(entries.len()) as u64;
        *self.len.get_mut() = entries.len() as u64;
        *self.edge_idx.get_mut() = edge;
        *self.expire_cursor.get_mut() = 0;
    }

    /// Collects the local entries that are still live under the global expiry
    /// horizon `earliest_live`, oldest first (footprint inspection; not on
    /// the hot path).
    pub fn live_entries(&self, earliest_live: Seq) -> Vec<(Seq, Key)> {
        let len = self.len.load(Ordering::Acquire);
        let start = self.lower_bound(earliest_live, len);
        let mut out = Vec::new();
        for idx in start..len {
            let seq = self.seq_at(idx);
            if seq < earliest_live {
                continue;
            }
            out.push((seq, self.keys[self.pos(idx)].load(Ordering::Relaxed)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(w: usize, slack: usize) -> ShardWindow {
        ShardWindow::new(w, slack)
    }

    #[test]
    fn append_and_scan_sparse_subsequence() {
        let w = window(16, 16);
        // A shard slice: every third global sequence number.
        for i in 0..10u64 {
            w.append(i * 3, (i * 3) as Key, 0).unwrap();
        }
        assert_eq!(w.local_len(), 10);
        let mut hits = Vec::new();
        let examined = w.scan_linear(4, 20, KeyRange::new(0, 100), |seq, key| {
            hits.push((seq, key));
        });
        assert!(examined >= hits.len());
        assert_eq!(hits, vec![(6, 6), (9, 9), (12, 12), (15, 15), (18, 18)]);
        // Key filtering applies on top of the sequence filter.
        let mut filtered = Vec::new();
        w.scan_linear(0, 100, KeyRange::new(9, 12), |seq, key| {
            filtered.push((seq, key));
        });
        assert_eq!(filtered, vec![(9, 9), (12, 12)]);
        // Empty scan ranges examine nothing.
        assert_eq!(
            w.scan_linear(5, 5, KeyRange::new(0, 100), |_, _| panic!()),
            0
        );
    }

    #[test]
    fn edge_tracks_indexed_prefix_of_the_local_slice() {
        let w = window(16, 16);
        for seq in [2u64, 5, 9, 14] {
            w.append(seq, seq as Key, 0).unwrap();
        }
        assert_eq!(w.edge_seq(), 2);
        assert_eq!(w.unindexed_len(), 4);
        // Mark out of order, as parallel workers would.
        assert!(w.mark_indexed(5));
        assert!(w.try_advance_edge());
        assert_eq!(w.edge_seq(), 2, "entry 2 not indexed, edge cannot move");
        assert!(w.mark_indexed(2));
        assert!(w.try_advance_edge());
        assert_eq!(w.edge_seq(), 9);
        assert_eq!(w.unindexed_len(), 2);
        assert!(w.mark_indexed(9));
        assert!(w.mark_indexed(14));
        assert!(w.try_advance_edge());
        assert_eq!(w.edge_seq(), Seq::MAX, "fully indexed slice");
        assert_eq!(w.unindexed_len(), 0);
        // Unknown sequence numbers are reported, not silently marked.
        assert!(!w.mark_indexed(7));
    }

    #[test]
    fn eager_expiry_reports_each_entry_once_in_order() {
        let w = window(8, 8);
        for seq in [1u64, 4, 6, 11, 13] {
            w.append(seq, (seq * 10) as Key, 0).unwrap();
        }
        let mut expired = Vec::new();
        w.expire_eager(6, |key, seq| expired.push((seq, key)));
        assert_eq!(expired, vec![(1, 10), (4, 40)]);
        // A second call with the same horizon reports nothing new.
        w.expire_eager(6, |_, _| panic!("already expired"));
        let mut more = Vec::new();
        w.expire_eager(100, |key, seq| more.push((seq, key)));
        assert_eq!(more, vec![(6, 60), (11, 110), (13, 130)]);
    }

    #[test]
    fn live_entries_honour_the_global_horizon() {
        let w = window(4, 8);
        for seq in [3u64, 7, 8, 12] {
            w.append(seq, seq as Key, 0).unwrap();
        }
        assert_eq!(w.live_entries(0).len(), 4);
        assert_eq!(w.live_entries(8), vec![(8, 8), (12, 12)]);
        assert!(w.live_entries(100).is_empty());
    }

    #[test]
    fn ring_reuse_keeps_recent_entries_readable() {
        let w = window(4, 4); // capacity 8
        for i in 0..100u64 {
            // Recycled entries are far below the keep horizon.
            w.append(i, i as Key, i.saturating_sub(4)).unwrap();
        }
        assert_eq!(
            w.live_entries(96),
            (96..100).map(|s| (s, s as Key)).collect::<Vec<_>>()
        );
        let mut hits = Vec::new();
        w.scan_linear(97, 99, KeyRange::new(0, 1000), |seq, _| hits.push(seq));
        assert_eq!(hits, vec![97, 98]);
    }

    #[test]
    fn append_refuses_to_recycle_kept_entries() {
        let w = window(4, 4); // capacity 8
        for i in 0..8u64 {
            w.append(i, 0, 0).unwrap();
        }
        // Keeping everything from seq 0 on: the ninth append would recycle
        // entry 0, which the caller still wants readable.
        assert!(w.append(8, 0, 0).is_err());
        // Raising the keep horizon past the recycled entry unblocks it.
        w.append(8, 0, 1).unwrap();
    }

    #[test]
    fn snapshot_round_trips_through_from_entries() {
        let w = window(16, 16);
        for seq in [2u64, 5, 9, 14, 21] {
            w.append(seq, (seq * 3) as Key, 0).unwrap();
        }
        w.mark_indexed(2);
        w.mark_indexed(5);
        w.mark_indexed(14); // out-of-order: 9 stays unindexed
        w.try_advance_edge();
        let snap = w.snapshot();
        assert_eq!(
            snap,
            vec![
                (2, 6, true),
                (5, 15, true),
                (9, 27, false),
                (14, 42, true),
                (21, 63, false)
            ]
        );
        let rebuilt = ShardWindow::from_entries(16, 16, &snap);
        assert_eq!(rebuilt.snapshot(), snap, "round trip is lossless");
        assert_eq!(
            rebuilt.edge_seq(),
            9,
            "edge re-derived at first non-indexed"
        );
        assert_eq!(rebuilt.unindexed_len(), 3);
        // Scans over the rebuilt slice behave like the original.
        let mut hits = Vec::new();
        rebuilt.scan_linear(9, 22, KeyRange::new(0, 100), |seq, key| {
            hits.push((seq, key))
        });
        assert_eq!(hits, vec![(9, 27), (14, 42), (21, 63)]);
        // The expiry cursor restarts at the oldest entry.
        let mut expired = Vec::new();
        rebuilt.expire_eager(10, |_, seq| expired.push(seq));
        assert_eq!(expired, vec![2, 5, 9]);
    }

    #[test]
    fn from_entries_accepts_empty_and_full_slices() {
        let empty = ShardWindow::from_entries(8, 8, &[]);
        assert_eq!(empty.local_len(), 0);
        assert_eq!(empty.edge_seq(), Seq::MAX);
        // Exactly capacity entries fit without recycling.
        let cap = ShardWindow::new(4, 4).capacity();
        let entries: Vec<(Seq, Key, bool)> = (0..cap as u64).map(|s| (s, s as Key, true)).collect();
        let full = ShardWindow::from_entries(4, 4, &entries);
        assert_eq!(full.local_len(), cap as u64);
        assert_eq!(full.edge_seq(), Seq::MAX, "all indexed");
        assert_eq!(full.snapshot(), entries);
    }

    #[test]
    fn rebuild_in_place_matches_from_entries() {
        let mut w = window(8, 8);
        // Dirty the slice first: the rebuild must fully supersede it.
        for seq in 0..10u64 {
            w.append(seq, (seq * 2) as Key, 0).unwrap();
            w.mark_indexed(seq);
        }
        w.try_advance_edge();
        let entries: Vec<(Seq, Key, bool)> = vec![(3, 30, true), (7, 70, false), (9, 90, true)];
        w.rebuild_in_place(&entries);
        let fresh = ShardWindow::from_entries(8, 8, &entries);
        assert_eq!(w.snapshot(), fresh.snapshot());
        assert_eq!(w.local_len(), fresh.local_len());
        assert_eq!(w.edge_seq(), fresh.edge_seq());
        // And again down to empty, the other boundary.
        w.rebuild_in_place(&[]);
        assert_eq!(w.local_len(), 0);
        assert_eq!(w.edge_seq(), Seq::MAX);
    }

    #[test]
    #[should_panic(expected = "exceed the shard window capacity")]
    fn from_entries_rejects_oversized_slices() {
        let cap = ShardWindow::new(4, 4).capacity();
        let entries: Vec<(Seq, Key, bool)> = (0..cap as u64 + 1).map(|s| (s, 0, false)).collect();
        let _ = ShardWindow::from_entries(4, 4, &entries);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_rejected() {
        let _ = ShardWindow::new(0, 8);
    }

    #[test]
    fn concurrent_mark_and_advance_on_a_sparse_slice() {
        use std::sync::Arc;
        let w = Arc::new(ShardWindow::new(1024, 1024));
        let seqs: Vec<Seq> = (0..1024u64).map(|i| i * 5 + 2).collect();
        for &seq in &seqs {
            w.append(seq, seq as Key, 0).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..8usize {
            let w = w.clone();
            let seqs = seqs.clone();
            handles.push(std::thread::spawn(move || {
                for seq in seqs.iter().skip(t).step_by(8) {
                    assert!(w.mark_indexed(*seq));
                    w.try_advance_edge();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        w.try_advance_edge();
        assert_eq!(w.edge_seq(), Seq::MAX);
        assert_eq!(w.unindexed_len(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The satellite property: per-shard eager expiry never reports
            /// (and thus never deletes) a tuple that has not expired under
            /// the horizon it was driven with, never reports a tuple twice,
            /// and eventually reports every expired tuple — no matter which
            /// sparse subsequence the shard received or where the horizon
            /// calls land.
            #[test]
            fn per_shard_expiry_never_drops_an_unexpired_tuple(
                gaps in proptest::collection::vec(1u64..6, 1..120),
                cut_percents in proptest::collection::vec(0usize..101, 1..6),
            ) {
                // Build the shard's sparse subsequence from the random gaps.
                let mut seqs = Vec::new();
                let mut seq = 0u64;
                for g in &gaps {
                    seq += g;
                    seqs.push(seq);
                }
                let head = *seqs.last().unwrap() + 1;
                let w = ShardWindow::new(64, seqs.len() + 64);
                let mut reported = Vec::new();
                let mut horizons = Vec::new();
                let mut next = 0usize;
                // Interleave appends with expiry sweeps at increasing
                // horizons (expiry horizons are monotone in a real run
                // because the global head only grows).
                let mut last_upto = 0u64;
                for &pct in &cut_percents {
                    let cut = seqs.len() * pct / 100;
                    while next < cut.max(next) {
                        w.append(seqs[next], seqs[next] as Key, 0).unwrap();
                        next += 1;
                    }
                    let upto = last_upto.max(head * pct as u64 / 100);
                    last_upto = upto;
                    horizons.push(upto);
                    w.expire_eager(upto, |_, s| reported.push((s, upto)));
                }
                while next < seqs.len() {
                    w.append(seqs[next], seqs[next] as Key, 0).unwrap();
                    next += 1;
                }
                w.expire_eager(head, |_, s| reported.push((s, head)));
                // 1. Nothing unexpired was ever reported: each report's seq
                //    is strictly below the horizon that triggered it.
                for &(s, upto) in &reported {
                    prop_assert!(s < upto, "seq {s} reported at horizon {upto}");
                }
                // 2. No tuple was reported twice.
                let mut seen: Vec<Seq> = reported.iter().map(|&(s, _)| s).collect();
                let before = seen.len();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), before, "duplicate expiry reports");
                // 3. Every appended tuple below the final horizon was
                //    eventually reported — expiry drops nothing on the floor.
                prop_assert_eq!(seen, seqs);
            }
        }
    }
}
