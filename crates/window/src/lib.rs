//! Sliding windows over data streams.
//!
//! The paper's join operates on count-based sliding windows (§2.1): the window
//! of stream `R` contains the last `w` tuples that arrived on `R`. During a
//! *parallel* join the window has to keep slightly more than `w` tuples alive,
//! because in-flight tasks of the opposite stream still reference tuples that
//! have logically expired (§4.1). This crate provides:
//!
//! * [`SlidingWindow`] — a concurrent, count-based ring buffer with per-slot
//!   *indexed* flags, an *edge tuple* (the earliest non-indexed tuple) and
//!   linear scanning of the non-indexed suffix;
//! * [`WindowBounds`] — the `(te, tl)` boundary snapshot a worker records when
//!   it acquires a task;
//! * [`ShardWindow`] — one shard's *slice* of a sliding window (the sparse
//!   `(seq, key)` subsequence routed to the shard) for the partitioned index
//!   store, with a shard-local edge tuple and an eager-expiry cursor;
//! * [`TimeWindow`] — a simple time-based window used by the examples to show
//!   that the indexing approach is not tied to count-based semantics.

pub mod bounds;
pub mod count;
pub mod sparse;
pub mod time;

pub use bounds::WindowBounds;
pub use count::SlidingWindow;
pub use sparse::ShardWindow;
pub use time::TimeWindow;
