//! An arena-based, in-memory B+-Tree multimap over `(Key, Seq)` entries.
//!
//! This crate plays two roles in the reproduction of *"Parallel Index-based
//! Stream Join on a Multicore CPU"*:
//!
//! 1. it is the **single-index baseline** of §2.2.1 (the paper uses the STX
//!    B+-Tree); and
//! 2. it is the **mutable component** (`TI`) of the IM-Tree and the sub-index
//!    building block (`B_i`) of the PIM-Tree (§3).
//!
//! Design notes:
//!
//! * Nodes live in a slab ([`tree::BTreeIndex`] owns a `Vec` of nodes addressed
//!   by `u32` ids), so the structure is safe Rust without reference counting
//!   or unsafe pointer juggling, and freed nodes are recycled via a free list.
//! * The tree is a *multimap*: duplicate keys are allowed and entries are
//!   totally ordered by `(key, seq)`, which makes deletion of an exact entry
//!   unambiguous — exactly what sliding-window expiry needs.
//! * Leaves are linked, so range scans and full drains are sequential.
//! * Deletion rebalances (borrow-from-sibling or merge) so long-running
//!   sliding-window workloads do not degrade the tree shape.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bulk;
pub mod entry;
pub mod node;
pub mod stats;
pub mod tree;

pub use entry::Entry;
pub use stats::BTreeStats;
pub use tree::BTreeIndex;

/// Default maximum number of entries/keys per node (the paper's trees use a
/// fan-out of 32).
pub const DEFAULT_FANOUT: usize = 32;
