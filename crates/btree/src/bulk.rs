//! Bottom-up bulk loading of a B+-Tree from sorted entries.
//!
//! Bulk loading is used by the B-chain variant of the chained index (archived
//! sub-indexes can be rebuilt compactly) and by tests that need large trees
//! quickly. The resulting tree satisfies exactly the same invariants as one
//! built by repeated insertion.

use crate::entry::Entry;
use crate::node::{InnerNode, LeafNode, Node, NodeId, NIL};
use crate::tree::BTreeIndex;
use crate::DEFAULT_FANOUT;

/// Builds a tree with the default fan-out from entries that are already sorted
/// by `(key, seq)`.
///
/// # Panics
///
/// Panics if the input is not sorted.
pub fn from_sorted(entries: Vec<Entry>) -> BTreeIndex {
    from_sorted_with_fanout(entries, DEFAULT_FANOUT)
}

/// Builds a tree with the given fan-out from sorted entries.
pub fn from_sorted_with_fanout(entries: Vec<Entry>, fanout: usize) -> BTreeIndex {
    assert!(fanout >= 4, "B+-Tree fan-out must be at least 4");
    debug_assert!(
        entries.windows(2).all(|w| w[0] <= w[1]),
        "bulk-load input must be sorted"
    );
    if entries.is_empty() {
        return BTreeIndex::with_fanout(fanout);
    }
    let len = entries.len();
    let mut nodes: Vec<Node> = Vec::new();
    let alloc = |node: Node, nodes: &mut Vec<Node>| -> NodeId {
        let id = nodes.len() as NodeId;
        nodes.push(node);
        id
    };

    // Split `total` items into chunks of at most `max`, each of size at least
    // `min` (assuming total >= min or there is a single chunk).
    let chunk_sizes = |total: usize, max: usize, min: usize| -> Vec<usize> {
        if total <= max {
            return vec![total];
        }
        let mut sizes = Vec::new();
        let mut remaining = total;
        while remaining > 0 {
            if remaining > max && remaining < max + min {
                // Splitting off a full chunk would leave an underfull tail;
                // split the remainder evenly instead.
                let first = remaining / 2;
                sizes.push(first);
                sizes.push(remaining - first);
                remaining = 0;
            } else {
                let take = remaining.min(max);
                sizes.push(take);
                remaining -= take;
            }
        }
        sizes
    };

    // Level 0: leaves.
    let min_leaf = fanout / 2;
    let sizes = chunk_sizes(len, fanout, min_leaf);
    let mut level: Vec<(NodeId, Entry)> = Vec::with_capacity(sizes.len());
    let mut iter = entries.into_iter();
    let mut prev_leaf: Option<NodeId> = None;
    for size in sizes {
        let chunk: Vec<Entry> = iter.by_ref().take(size).collect();
        let min_entry = chunk[0];
        let id = alloc(Node::Leaf(LeafNode::new(chunk, NIL)), &mut nodes);
        if let Some(prev) = prev_leaf {
            match &mut nodes[prev as usize] {
                Node::Leaf(l) => l.next = id,
                _ => unreachable!(),
            }
        }
        prev_leaf = Some(id);
        level.push((id, min_entry));
    }

    // Upper levels: group children until a single root remains.
    let min_children = fanout / 2 + 1;
    let max_children = fanout + 1;
    while level.len() > 1 {
        let sizes = chunk_sizes(level.len(), max_children, min_children);
        let mut next_level = Vec::with_capacity(sizes.len());
        let mut iter = level.into_iter();
        for size in sizes {
            let group: Vec<(NodeId, Entry)> = iter.by_ref().take(size).collect();
            let min_entry = group[0].1;
            let keys: Vec<Entry> = group[1..].iter().map(|&(_, min)| min).collect();
            let children: Vec<NodeId> = group.iter().map(|&(id, _)| id).collect();
            let id = alloc(Node::Inner(InnerNode::new(keys, children)), &mut nodes);
            next_level.push((id, min_entry));
        }
        level = next_level;
    }

    let root = level[0].0;
    BTreeIndex::install(nodes, root, len, fanout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimtree_common::KeyRange;

    fn sorted_entries(n: usize) -> Vec<Entry> {
        (0..n as i64).map(|i| Entry::new(i, i as u64)).collect()
    }

    #[test]
    fn empty_input_builds_empty_tree() {
        let t = from_sorted(Vec::new());
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn single_entry() {
        let t = from_sorted(vec![Entry::new(7, 3)]);
        assert_eq!(t.len(), 1);
        assert!(t.contains(7, 3));
        t.check_invariants();
    }

    #[test]
    fn exactly_one_full_leaf() {
        let t = from_sorted_with_fanout(sorted_entries(8), 8);
        assert_eq!(t.len(), 8);
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn boundary_sizes_respect_min_occupancy() {
        // Sizes chosen around multiples of the fan-out, which is where a naive
        // chunking would produce underfull tail nodes.
        for n in [
            1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129,
        ] {
            let t = from_sorted_with_fanout(sorted_entries(n), 4);
            assert_eq!(t.len(), n, "n={n}");
            t.check_invariants();
        }
    }

    #[test]
    fn large_bulk_load_matches_incremental_content() {
        let entries = sorted_entries(10_000);
        let bulk = from_sorted_with_fanout(entries.clone(), 16);
        let mut incr = BTreeIndex::with_fanout(16);
        for e in &entries {
            incr.insert_entry(*e);
        }
        bulk.check_invariants();
        assert_eq!(bulk.to_sorted_vec(), incr.to_sorted_vec());
        assert!(
            bulk.height() <= incr.height(),
            "bulk-loaded tree is at least as shallow"
        );
    }

    #[test]
    fn bulk_loaded_tree_supports_further_updates() {
        let mut t = from_sorted_with_fanout(sorted_entries(1000), 8);
        for i in 0..200i64 {
            t.insert(i * 3 + 1_000_000, i as u64);
        }
        for i in 0..500i64 {
            assert!(t.remove(i, i as u64));
        }
        assert_eq!(t.len(), 1000 + 200 - 500);
        t.check_invariants();
    }

    #[test]
    fn bulk_loaded_range_scan() {
        let t = from_sorted_with_fanout(sorted_entries(512), 8);
        let got = t.range_collect(KeyRange::new(100, 149));
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|e| (100..=149).contains(&e.key)));
    }

    #[test]
    fn duplicates_survive_bulk_load() {
        let mut entries: Vec<Entry> = (0..100).map(|s| Entry::new(5, s)).collect();
        entries.extend((0..100).map(|s| Entry::new(9, s)));
        let t = from_sorted_with_fanout(entries, 4);
        assert_eq!(t.len(), 200);
        assert_eq!(t.range_collect(KeyRange::point(5)).len(), 100);
        t.check_invariants();
    }
}
