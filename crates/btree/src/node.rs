//! Node representation of the arena-based B+-Tree.

use crate::entry::Entry;

/// Index of a node inside the tree's arena.
pub type NodeId = u32;

/// Sentinel "no node" id (used for leaf `next` links and the free list tail).
pub const NIL: NodeId = u32::MAX;

/// An inner (routing) node.
///
/// Invariant: `children.len() == keys.len() + 1`, and for every separator
/// `keys[i]`, all entries under `children[j]` with `j <= i` compare strictly
/// less than `keys[i]`, while all entries under `children[j]` with `j > i`
/// compare greater than or equal to `keys[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerNode {
    /// Separator entries.
    pub keys: Vec<Entry>,
    /// Child node ids.
    pub children: Vec<NodeId>,
}

impl InnerNode {
    /// Creates an inner node with the given separators and children.
    pub fn new(keys: Vec<Entry>, children: Vec<NodeId>) -> Self {
        debug_assert_eq!(children.len(), keys.len() + 1);
        InnerNode { keys, children }
    }

    /// Index of the child to descend into when looking for `target`.
    ///
    /// Returns the number of separators that are `<= target`, which by the
    /// node invariant is the unique child whose subtree may contain `target`
    /// (and is the correct child for a lower-bound seek as well).
    #[inline]
    pub fn route(&self, target: Entry) -> usize {
        // Separator counts are small (fan-out <= a few hundred); a branch-free
        // linear scan is faster than binary search for typical fan-outs, but
        // partition_point keeps the code obviously correct.
        self.keys.partition_point(|&k| k <= target)
    }

    /// Bytes of payload held by this node (keys + child ids), used for
    /// footprint reporting.
    pub fn payload_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<Entry>()
            + self.children.len() * std::mem::size_of::<NodeId>()
    }
}

/// A leaf node holding the actual `(key, seq)` entries in sorted order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafNode {
    /// Sorted entries.
    pub entries: Vec<Entry>,
    /// Arena id of the next leaf in key order, or [`NIL`].
    pub next: NodeId,
}

impl LeafNode {
    /// Creates a leaf with the given entries and successor link.
    pub fn new(entries: Vec<Entry>, next: NodeId) -> Self {
        LeafNode { entries, next }
    }

    /// Position of the first entry `>= target` within this leaf.
    #[inline]
    pub fn lower_bound(&self, target: Entry) -> usize {
        self.entries.partition_point(|&e| e < target)
    }

    /// Bytes of payload held by this node.
    pub fn payload_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>()
    }
}

/// A node slot in the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Routing node.
    Inner(InnerNode),
    /// Entry-bearing node.
    Leaf(LeafNode),
    /// Recycled slot; `next_free` chains the free list.
    Free {
        /// Next slot in the free list, or [`NIL`].
        next_free: NodeId,
    },
}

impl Node {
    /// Returns the inner node or panics — internal helper used where the tree
    /// structure guarantees the variant.
    #[inline]
    pub fn as_inner(&self) -> &InnerNode {
        match self {
            Node::Inner(n) => n,
            _ => panic!("expected inner node"),
        }
    }

    /// Mutable variant of [`Node::as_inner`].
    #[inline]
    pub fn as_inner_mut(&mut self) -> &mut InnerNode {
        match self {
            Node::Inner(n) => n,
            _ => panic!("expected inner node"),
        }
    }

    /// Returns the leaf node or panics.
    #[inline]
    pub fn as_leaf(&self) -> &LeafNode {
        match self {
            Node::Leaf(n) => n,
            _ => panic!("expected leaf node"),
        }
    }

    /// Mutable variant of [`Node::as_leaf`].
    #[inline]
    pub fn as_leaf_mut(&mut self) -> &mut LeafNode {
        match self {
            Node::Leaf(n) => n,
            _ => panic!("expected leaf node"),
        }
    }

    /// Whether this slot holds a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: i64) -> Entry {
        Entry::new(k, 0)
    }

    #[test]
    fn inner_route_follows_separator_invariant() {
        let n = InnerNode::new(vec![e(10), e(20), e(30)], vec![0, 1, 2, 3]);
        assert_eq!(n.route(Entry::new(5, 0)), 0);
        assert_eq!(
            n.route(Entry::new(10, 0)),
            1,
            "equal separator routes right"
        );
        assert_eq!(n.route(Entry::new(15, 7)), 1);
        assert_eq!(n.route(Entry::new(20, 0)), 2);
        assert_eq!(n.route(Entry::new(99, 0)), 3);
    }

    #[test]
    fn leaf_lower_bound() {
        let l = LeafNode::new(vec![e(1), e(3), e(3), e(7)], NIL);
        assert_eq!(l.lower_bound(Entry::min_for_key(0)), 0);
        assert_eq!(l.lower_bound(Entry::min_for_key(3)), 1);
        assert_eq!(l.lower_bound(Entry::min_for_key(4)), 3);
        assert_eq!(l.lower_bound(Entry::min_for_key(8)), 4);
    }

    #[test]
    fn payload_bytes_reflect_contents() {
        let l = LeafNode::new(vec![e(1), e(2)], NIL);
        assert_eq!(l.payload_bytes(), 2 * std::mem::size_of::<Entry>());
        let n = InnerNode::new(vec![e(10)], vec![0, 1]);
        assert_eq!(
            n.payload_bytes(),
            std::mem::size_of::<Entry>() + 2 * std::mem::size_of::<NodeId>()
        );
    }

    #[test]
    #[should_panic(expected = "expected inner")]
    fn as_inner_panics_on_leaf() {
        let n = Node::Leaf(LeafNode::new(vec![], NIL));
        let _ = n.as_inner();
    }
}
