//! Structural statistics and memory-footprint reporting for the B+-Tree.
//!
//! These numbers back the memory-footprint comparison of Figure 11a in the
//! paper, which splits the space of each index into inner-node and leaf-node
//! storage.

/// Structural statistics of a [`crate::BTreeIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeStats {
    /// Number of entries stored.
    pub entries: usize,
    /// Number of live inner nodes.
    pub inner_nodes: usize,
    /// Number of live leaf nodes.
    pub leaf_nodes: usize,
    /// Payload bytes held by inner nodes (separators + child ids).
    pub inner_bytes: usize,
    /// Payload bytes held by leaf nodes (entries).
    pub leaf_bytes: usize,
    /// Number of node levels (1 for a lone leaf root).
    pub height: usize,
}

impl BTreeStats {
    /// Total payload bytes across inner and leaf nodes.
    pub fn total_bytes(&self) -> usize {
        self.inner_bytes + self.leaf_bytes
    }

    /// Total number of live nodes.
    pub fn total_nodes(&self) -> usize {
        self.inner_nodes + self.leaf_nodes
    }

    /// Average leaf fill factor in `[0, 1]` given the leaf capacity.
    pub fn leaf_fill_factor(&self, leaf_capacity: usize) -> f64 {
        if self.leaf_nodes == 0 || leaf_capacity == 0 {
            return 0.0;
        }
        self.entries as f64 / (self.leaf_nodes * leaf_capacity) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_sums() {
        let s = BTreeStats {
            entries: 100,
            inner_nodes: 3,
            leaf_nodes: 10,
            inner_bytes: 300,
            leaf_bytes: 1600,
            height: 2,
        };
        assert_eq!(s.total_bytes(), 1900);
        assert_eq!(s.total_nodes(), 13);
    }

    #[test]
    fn fill_factor_handles_edge_cases() {
        let mut s = BTreeStats::default();
        assert_eq!(s.leaf_fill_factor(16), 0.0);
        s.entries = 80;
        s.leaf_nodes = 10;
        assert!((s.leaf_fill_factor(16) - 0.5).abs() < 1e-12);
        assert_eq!(s.leaf_fill_factor(0), 0.0);
    }
}
