//! The `(key, seq)` entry type stored by every index in the workspace.

use pimtree_common::{Key, Seq};

/// One index entry: a join-attribute key plus the sliding-window sequence
/// number of the tuple it refers to.
///
/// Entries are totally ordered by `(key, seq)`. The sequence number breaks
/// ties between duplicate keys so that deleting an expired tuple removes
/// exactly one entry.
///
/// The `repr(C)` layout guarantee (`key` at offset 0, `seq` at offset 8) is
/// relied upon by the CSS-Tree's SIMD intra-node search, which reinterprets
/// sorted entry blocks as `[i64; 2]` pairs to compare keys at stride 16.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Entry {
    /// Join attribute.
    pub key: Key,
    /// Window reference (arrival sequence number).
    pub seq: Seq,
}

impl Entry {
    /// Creates an entry.
    #[inline]
    pub fn new(key: Key, seq: Seq) -> Self {
        Entry { key, seq }
    }

    /// The smallest entry with the given key — the seek target for "first
    /// entry with key `>= k`" searches.
    #[inline]
    pub fn min_for_key(key: Key) -> Self {
        Entry { key, seq: 0 }
    }

    /// The largest entry with the given key — the seek target for inclusive
    /// upper bounds.
    #[inline]
    pub fn max_for_key(key: Key) -> Self {
        Entry { key, seq: Seq::MAX }
    }
}

impl From<(Key, Seq)> for Entry {
    fn from((key, seq): (Key, Seq)) -> Self {
        Entry { key, seq }
    }
}

impl From<Entry> for (Key, Seq) {
    fn from(e: Entry) -> Self {
        (e.key, e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_key_then_seq() {
        assert!(Entry::new(1, 99) < Entry::new(2, 0));
        assert!(Entry::new(5, 1) < Entry::new(5, 2));
        assert_eq!(Entry::new(5, 1), Entry::new(5, 1));
    }

    #[test]
    fn min_and_max_bracket_all_entries_for_a_key() {
        let e = Entry::new(7, 12345);
        assert!(Entry::min_for_key(7) <= e);
        assert!(e <= Entry::max_for_key(7));
        assert!(Entry::max_for_key(6) < Entry::min_for_key(7));
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let e: Entry = (3, 4).into();
        assert_eq!(e, Entry::new(3, 4));
        let t: (Key, Seq) = e.into();
        assert_eq!(t, (3, 4));
    }
}
