//! The arena-based B+-Tree multimap.

use pimtree_common::{Key, KeyRange, Seq};

use crate::entry::Entry;
use crate::node::{InnerNode, LeafNode, Node, NodeId, NIL};
use crate::stats::BTreeStats;
use crate::DEFAULT_FANOUT;

/// An in-memory B+-Tree multimap over [`Entry`] values.
///
/// See the crate-level documentation for design notes. All operations are
/// single-threaded; concurrent use is coordinated by the owning structure
/// (e.g. the per-partition locks of the PIM-Tree).
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: NodeId,
    free_head: NodeId,
    len: usize,
    fanout: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// Creates an empty tree with the default fan-out.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty tree whose nodes hold at most `fanout` entries
    /// (leaves) / separator keys (inner nodes). `fanout` must be at least 4.
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4, "B+-Tree fan-out must be at least 4");
        let mut tree = BTreeIndex {
            nodes: Vec::new(),
            root: NIL,
            free_head: NIL,
            len: 0,
            fanout,
        };
        tree.root = tree.alloc(Node::Leaf(LeafNode::new(Vec::new(), NIL)));
        tree
    }

    /// Maximum entries per leaf / keys per inner node.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of entries stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn min_leaf_len(&self) -> usize {
        self.fanout / 2
    }

    #[inline]
    fn min_inner_keys(&self) -> usize {
        self.fanout / 2
    }

    // ---------------------------------------------------------------- arena

    fn alloc(&mut self, node: Node) -> NodeId {
        if self.free_head != NIL {
            let id = self.free_head;
            match self.nodes[id as usize] {
                Node::Free { next_free } => self.free_head = next_free,
                _ => unreachable!("free list points at a live node"),
            }
            self.nodes[id as usize] = node;
            id
        } else {
            let id = self.nodes.len() as NodeId;
            assert!(id != NIL, "B+-Tree arena exhausted");
            self.nodes.push(node);
            id
        }
    }

    fn release(&mut self, id: NodeId) {
        self.nodes[id as usize] = Node::Free {
            next_free: self.free_head,
        };
        self.free_head = id;
    }

    #[inline]
    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    // --------------------------------------------------------------- insert

    /// Inserts an entry. Duplicate `(key, seq)` pairs are stored as given.
    pub fn insert(&mut self, key: Key, seq: Seq) {
        self.insert_entry(Entry::new(key, seq));
    }

    /// Inserts a pre-built entry.
    pub fn insert_entry(&mut self, entry: Entry) {
        if let Some((sep, right)) = self.insert_rec(self.root, entry) {
            let old_root = self.root;
            self.root = self.alloc(Node::Inner(InnerNode::new(
                vec![sep],
                vec![old_root, right],
            )));
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, id: NodeId, entry: Entry) -> Option<(Entry, NodeId)> {
        if self.node(id).is_leaf() {
            let fanout = self.fanout;
            let (needs_split, old_next) = {
                let leaf = self.node_mut(id).as_leaf_mut();
                let pos = leaf.entries.partition_point(|&e| e <= entry);
                leaf.entries.insert(pos, entry);
                (leaf.entries.len() > fanout, leaf.next)
            };
            if !needs_split {
                return None;
            }
            let right_entries = {
                let leaf = self.node_mut(id).as_leaf_mut();
                let mid = leaf.entries.len() / 2;
                leaf.entries.split_off(mid)
            };
            let sep = right_entries[0];
            let right_id = self.alloc(Node::Leaf(LeafNode::new(right_entries, old_next)));
            self.node_mut(id).as_leaf_mut().next = right_id;
            Some((sep, right_id))
        } else {
            let (child_idx, child_id) = {
                let inner = self.node(id).as_inner();
                let i = inner.route(entry);
                (i, inner.children[i])
            };
            let split = self.insert_rec(child_id, entry)?;
            let needs_split = {
                let inner = self.node_mut(id).as_inner_mut();
                inner.keys.insert(child_idx, split.0);
                inner.children.insert(child_idx + 1, split.1);
                inner.keys.len() > self.fanout
            };
            if !needs_split {
                return None;
            }
            let (sep_up, right_keys, right_children) = {
                let inner = self.node_mut(id).as_inner_mut();
                let mid = inner.keys.len() / 2;
                let sep_up = inner.keys[mid];
                let right_keys = inner.keys.split_off(mid + 1);
                inner.keys.truncate(mid);
                let right_children = inner.children.split_off(mid + 1);
                (sep_up, right_keys, right_children)
            };
            let right_id = self.alloc(Node::Inner(InnerNode::new(right_keys, right_children)));
            Some((sep_up, right_id))
        }
    }

    // --------------------------------------------------------------- remove

    /// Removes the exact `(key, seq)` entry, returning whether it was present.
    pub fn remove(&mut self, key: Key, seq: Seq) -> bool {
        let target = Entry::new(key, seq);
        let (removed, _) = self.remove_rec(self.root, target);
        if removed {
            self.len -= 1;
            // Shrink the root when it degenerates to a single child.
            if let Node::Inner(inner) = self.node(self.root) {
                if inner.children.len() == 1 {
                    let child = inner.children[0];
                    let old_root = self.root;
                    self.root = child;
                    self.release(old_root);
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, id: NodeId, target: Entry) -> (bool, bool) {
        if self.node(id).is_leaf() {
            let min_len = self.min_leaf_len();
            let leaf = self.node_mut(id).as_leaf_mut();
            match leaf.entries.binary_search(&target) {
                Ok(pos) => {
                    leaf.entries.remove(pos);
                    let under = leaf.entries.len() < min_len;
                    (true, under)
                }
                Err(_) => (false, false),
            }
        } else {
            let (child_idx, child_id) = {
                let inner = self.node(id).as_inner();
                let i = inner.route(target);
                (i, inner.children[i])
            };
            let (removed, child_under) = self.remove_rec(child_id, target);
            if !removed {
                return (false, false);
            }
            if child_under {
                self.rebalance_child(id, child_idx);
            }
            let under = self.node(id).as_inner().keys.len() < self.min_inner_keys();
            (true, under)
        }
    }

    fn rebalance_child(&mut self, parent_id: NodeId, child_idx: usize) {
        let child_count = self.node(parent_id).as_inner().children.len();
        // Try to borrow from the left sibling.
        if child_idx > 0 {
            let left_id = self.node(parent_id).as_inner().children[child_idx - 1];
            if self.has_spare(left_id) {
                self.borrow_from_left(parent_id, child_idx);
                return;
            }
        }
        // Try to borrow from the right sibling.
        if child_idx + 1 < child_count {
            let right_id = self.node(parent_id).as_inner().children[child_idx + 1];
            if self.has_spare(right_id) {
                self.borrow_from_right(parent_id, child_idx);
                return;
            }
        }
        // Merge with a sibling.
        if child_idx > 0 {
            self.merge_children(parent_id, child_idx - 1);
        } else {
            self.merge_children(parent_id, child_idx);
        }
    }

    fn has_spare(&self, id: NodeId) -> bool {
        match self.node(id) {
            Node::Leaf(l) => l.entries.len() > self.min_leaf_len(),
            Node::Inner(i) => i.keys.len() > self.min_inner_keys(),
            Node::Free { .. } => unreachable!("free node reachable from tree"),
        }
    }

    fn borrow_from_left(&mut self, parent_id: NodeId, child_idx: usize) {
        let (left_id, child_id) = {
            let p = self.node(parent_id).as_inner();
            (p.children[child_idx - 1], p.children[child_idx])
        };
        let sep_idx = child_idx - 1;
        if self.node(child_id).is_leaf() {
            let moved = self
                .node_mut(left_id)
                .as_leaf_mut()
                .entries
                .pop()
                .expect("spare entry");
            self.node_mut(child_id)
                .as_leaf_mut()
                .entries
                .insert(0, moved);
            self.node_mut(parent_id).as_inner_mut().keys[sep_idx] = moved;
        } else {
            let old_sep = self.node(parent_id).as_inner().keys[sep_idx];
            let (moved_child, new_sep) = {
                let left = self.node_mut(left_id).as_inner_mut();
                (
                    left.children.pop().expect("spare child"),
                    left.keys.pop().expect("spare key"),
                )
            };
            {
                let child = self.node_mut(child_id).as_inner_mut();
                child.keys.insert(0, old_sep);
                child.children.insert(0, moved_child);
            }
            self.node_mut(parent_id).as_inner_mut().keys[sep_idx] = new_sep;
        }
    }

    fn borrow_from_right(&mut self, parent_id: NodeId, child_idx: usize) {
        let (child_id, right_id) = {
            let p = self.node(parent_id).as_inner();
            (p.children[child_idx], p.children[child_idx + 1])
        };
        let sep_idx = child_idx;
        if self.node(child_id).is_leaf() {
            let (moved, new_sep) = {
                let right = self.node_mut(right_id).as_leaf_mut();
                let moved = right.entries.remove(0);
                (moved, right.entries[0])
            };
            self.node_mut(child_id).as_leaf_mut().entries.push(moved);
            self.node_mut(parent_id).as_inner_mut().keys[sep_idx] = new_sep;
        } else {
            let old_sep = self.node(parent_id).as_inner().keys[sep_idx];
            let (moved_child, new_sep) = {
                let right = self.node_mut(right_id).as_inner_mut();
                (right.children.remove(0), right.keys.remove(0))
            };
            {
                let child = self.node_mut(child_id).as_inner_mut();
                child.keys.push(old_sep);
                child.children.push(moved_child);
            }
            self.node_mut(parent_id).as_inner_mut().keys[sep_idx] = new_sep;
        }
    }

    fn merge_children(&mut self, parent_id: NodeId, left_idx: usize) {
        let (left_id, right_id, sep) = {
            let p = self.node(parent_id).as_inner();
            (
                p.children[left_idx],
                p.children[left_idx + 1],
                p.keys[left_idx],
            )
        };
        let right = std::mem::replace(self.node_mut(right_id), Node::Free { next_free: NIL });
        match right {
            Node::Leaf(mut r) => {
                let left = self.node_mut(left_id).as_leaf_mut();
                left.entries.append(&mut r.entries);
                left.next = r.next;
            }
            Node::Inner(mut r) => {
                let left = self.node_mut(left_id).as_inner_mut();
                left.keys.push(sep);
                left.keys.append(&mut r.keys);
                left.children.append(&mut r.children);
            }
            Node::Free { .. } => unreachable!("merging a free node"),
        }
        {
            let p = self.node_mut(parent_id).as_inner_mut();
            p.keys.remove(left_idx);
            p.children.remove(left_idx + 1);
        }
        self.release(right_id);
    }

    // --------------------------------------------------------------- lookup

    /// Whether the exact `(key, seq)` entry is present.
    pub fn contains(&self, key: Key, seq: Seq) -> bool {
        let target = Entry::new(key, seq);
        let (leaf_id, pos) = self.seek(target);
        let leaf = self.node(leaf_id).as_leaf();
        leaf.entries.get(pos) == Some(&target)
    }

    /// Descends to the leaf that would hold `target`, returning the leaf id
    /// and the position of the first entry `>= target` inside it (which may be
    /// one past the end).
    fn seek(&self, target: Entry) -> (NodeId, usize) {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Inner(inner) => id = inner.children[inner.route(target)],
                Node::Leaf(leaf) => return (id, leaf.lower_bound(target)),
                Node::Free { .. } => unreachable!("free node reachable from root"),
            }
        }
    }

    /// First entry whose key is `>= key`, if any.
    pub fn first_at_or_after(&self, key: Key) -> Option<Entry> {
        let (mut leaf_id, mut pos) = self.seek(Entry::min_for_key(key));
        loop {
            let leaf = self.node(leaf_id).as_leaf();
            if pos < leaf.entries.len() {
                return Some(leaf.entries[pos]);
            }
            if leaf.next == NIL {
                return None;
            }
            leaf_id = leaf.next;
            pos = 0;
        }
    }

    /// Smallest entry in the tree.
    pub fn min_entry(&self) -> Option<Entry> {
        self.first_at_or_after(Key::MIN)
    }

    /// Largest entry in the tree.
    pub fn max_entry(&self) -> Option<Entry> {
        // Descend along the rightmost spine.
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Inner(inner) => id = *inner.children.last().expect("inner has children"),
                Node::Leaf(leaf) => return leaf.entries.last().copied(),
                Node::Free { .. } => unreachable!("free node reachable from root"),
            }
        }
    }

    /// Calls `f` for every entry whose key lies in `range` (bounds inclusive),
    /// in ascending `(key, seq)` order.
    pub fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, mut f: F) {
        let (mut leaf_id, mut pos) = self.seek(Entry::min_for_key(range.lo));
        loop {
            let leaf = self.node(leaf_id).as_leaf();
            while pos < leaf.entries.len() {
                let e = leaf.entries[pos];
                if e.key > range.hi {
                    return;
                }
                f(e);
                pos += 1;
            }
            if leaf.next == NIL {
                return;
            }
            leaf_id = leaf.next;
            pos = 0;
        }
    }

    /// Collects every entry whose key lies in `range`.
    pub fn range_collect(&self, range: KeyRange) -> Vec<Entry> {
        let mut out = Vec::new();
        self.range_for_each(range, |e| out.push(e));
        out
    }

    /// Calls `f` for every entry in ascending order.
    pub fn for_each<F: FnMut(Entry)>(&self, mut f: F) {
        let mut id = self.leftmost_leaf();
        loop {
            let leaf = self.node(id).as_leaf();
            for &e in &leaf.entries {
                f(e);
            }
            if leaf.next == NIL {
                return;
            }
            id = leaf.next;
        }
    }

    /// Returns all entries in ascending order.
    pub fn to_sorted_vec(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|e| out.push(e));
        out
    }

    /// Removes and returns all entries in ascending order, leaving the tree
    /// empty. Used by the IM-Tree / PIM-Tree merge step.
    pub fn drain_sorted(&mut self) -> Vec<Entry> {
        let out = self.to_sorted_vec();
        self.clear();
        out
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free_head = NIL;
        self.len = 0;
        self.root = self.alloc(Node::Leaf(LeafNode::new(Vec::new(), NIL)));
    }

    fn leftmost_leaf(&self) -> NodeId {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Inner(inner) => id = inner.children[0],
                Node::Leaf(_) => return id,
                Node::Free { .. } => unreachable!("free node reachable from root"),
            }
        }
    }

    // ---------------------------------------------------------------- stats

    /// Height of the tree: number of node levels (a lone leaf root has
    /// height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        while let Node::Inner(inner) = self.node(id) {
            id = inner.children[0];
            h += 1;
        }
        h
    }

    /// Structural statistics (node counts, payload bytes, height).
    pub fn stats(&self) -> BTreeStats {
        let mut stats = BTreeStats {
            entries: self.len,
            height: self.height(),
            ..Default::default()
        };
        for node in &self.nodes {
            match node {
                Node::Inner(i) => {
                    stats.inner_nodes += 1;
                    stats.inner_bytes += i.payload_bytes();
                }
                Node::Leaf(l) => {
                    stats.leaf_nodes += 1;
                    stats.leaf_bytes += l.payload_bytes();
                }
                Node::Free { .. } => {}
            }
        }
        stats
    }

    // ----------------------------------------------------------- validation

    /// Verifies the structural invariants of the tree, panicking with a
    /// description of the first violation. Intended for tests and property
    /// checks.
    pub fn check_invariants(&self) {
        let mut leaf_entries = Vec::new();
        let depth = self.check_node(self.root, None, None, true, &mut leaf_entries);
        let _ = depth;
        assert_eq!(
            leaf_entries.len(),
            self.len,
            "entry count mismatch: counted {} but len() = {}",
            leaf_entries.len(),
            self.len
        );
        let mut sorted = leaf_entries.clone();
        sorted.sort();
        assert_eq!(leaf_entries, sorted, "in-order traversal is not sorted");
        // The leaf chain must visit the same entries in the same order.
        let chained = self.to_sorted_vec();
        assert_eq!(
            chained, leaf_entries,
            "leaf chain disagrees with tree traversal"
        );
    }

    fn check_node(
        &self,
        id: NodeId,
        lo: Option<Entry>,
        hi: Option<Entry>,
        is_root: bool,
        acc: &mut Vec<Entry>,
    ) -> usize {
        match self.node(id) {
            Node::Leaf(leaf) => {
                if !is_root {
                    assert!(
                        leaf.entries.len() >= self.min_leaf_len(),
                        "leaf {id} underfull: {} < {}",
                        leaf.entries.len(),
                        self.min_leaf_len()
                    );
                }
                assert!(leaf.entries.len() <= self.fanout, "leaf {id} overfull");
                for w in leaf.entries.windows(2) {
                    assert!(w[0] <= w[1], "leaf {id} entries out of order");
                }
                for &e in &leaf.entries {
                    if let Some(lo) = lo {
                        assert!(e >= lo, "leaf {id} entry {e:?} below bound {lo:?}");
                    }
                    if let Some(hi) = hi {
                        assert!(e < hi, "leaf {id} entry {e:?} not below bound {hi:?}");
                    }
                    acc.push(e);
                }
                1
            }
            Node::Inner(inner) => {
                assert_eq!(
                    inner.children.len(),
                    inner.keys.len() + 1,
                    "inner {id} arity"
                );
                if !is_root {
                    assert!(
                        inner.keys.len() >= self.min_inner_keys(),
                        "inner {id} underfull: {} < {}",
                        inner.keys.len(),
                        self.min_inner_keys()
                    );
                } else {
                    assert!(!inner.keys.is_empty(), "inner root with no keys");
                }
                assert!(inner.keys.len() <= self.fanout, "inner {id} overfull");
                for w in inner.keys.windows(2) {
                    assert!(w[0] < w[1], "inner {id} separators out of order");
                }
                let mut depth = None;
                for (i, &child) in inner.children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(inner.keys[i - 1]) };
                    let child_hi = if i == inner.keys.len() {
                        hi
                    } else {
                        Some(inner.keys[i])
                    };
                    let d = self.check_node(child, child_lo, child_hi, false, acc);
                    match depth {
                        None => depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "inner {id} children at unequal depths"),
                    }
                }
                depth.expect("inner node has children") + 1
            }
            Node::Free { .. } => panic!("free node {id} reachable from the tree"),
        }
    }

    // ------------------------------------------------------------- internal

    /// (internal, used by the bulk loader) Installs a fully built arena.
    pub(crate) fn install(nodes: Vec<Node>, root: NodeId, len: usize, fanout: usize) -> Self {
        BTreeIndex {
            nodes,
            root,
            free_head: NIL,
            len,
            fanout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(entries: &[(Key, Seq)], fanout: usize) -> BTreeIndex {
        let mut t = BTreeIndex::with_fanout(fanout);
        for &(k, s) in entries {
            t.insert(k, s);
        }
        t
    }

    #[test]
    fn empty_tree_basics() {
        let t = BTreeIndex::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.min_entry(), None);
        assert_eq!(t.max_entry(), None);
        assert_eq!(t.first_at_or_after(0), None);
        assert!(t.range_collect(KeyRange::new(0, 100)).is_empty());
        t.check_invariants();
    }

    #[test]
    fn insert_and_lookup_small() {
        let t = tree_with(&[(5, 0), (1, 1), (9, 2), (3, 3), (7, 4)], 4);
        assert_eq!(t.len(), 5);
        assert!(t.contains(5, 0));
        assert!(t.contains(1, 1));
        assert!(!t.contains(5, 1));
        assert!(!t.contains(2, 0));
        assert_eq!(t.min_entry(), Some(Entry::new(1, 1)));
        assert_eq!(t.max_entry(), Some(Entry::new(9, 2)));
        t.check_invariants();
    }

    #[test]
    fn insert_many_splits_and_stays_sorted() {
        let mut t = BTreeIndex::with_fanout(4);
        for i in 0..1000i64 {
            t.insert((i * 37) % 1000, i as Seq);
        }
        assert_eq!(t.len(), 1000);
        assert!(
            t.height() > 2,
            "1000 entries at fan-out 4 must be a multi-level tree"
        );
        t.check_invariants();
        let all = t.to_sorted_vec();
        assert_eq!(all.len(), 1000);
        for w in all.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn duplicate_keys_are_kept_and_distinguished_by_seq() {
        let mut t = BTreeIndex::with_fanout(4);
        for seq in 0..50 {
            t.insert(42, seq);
        }
        assert_eq!(t.len(), 50);
        t.check_invariants();
        assert!(t.contains(42, 17));
        assert!(t.remove(42, 17));
        assert!(!t.contains(42, 17));
        assert!(t.contains(42, 18));
        assert_eq!(t.len(), 49);
        t.check_invariants();
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = tree_with(&[(1, 0), (2, 0), (3, 0)], 4);
        assert!(!t.remove(4, 0));
        assert!(!t.remove(1, 99));
        assert_eq!(t.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_in_insertion_order() {
        let mut t = BTreeIndex::with_fanout(4);
        let n = 500i64;
        for i in 0..n {
            t.insert((i * 13) % 97, i as Seq);
        }
        t.check_invariants();
        for i in 0..n {
            assert!(
                t.remove((i * 13) % 97, i as Seq),
                "entry {i} must be removable"
            );
            if i % 50 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_in_reverse_order() {
        let mut t = BTreeIndex::with_fanout(6);
        let n = 300i64;
        for i in 0..n {
            t.insert(i, i as Seq);
        }
        for i in (0..n).rev() {
            assert!(t.remove(i, i as Seq));
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn sliding_window_pattern_keeps_tree_balanced() {
        // Mimics the join workload: insert a new random key, remove the one
        // that expired `w` arrivals ago.
        let w = 256usize;
        let mut t = BTreeIndex::with_fanout(8);
        let key_of = |i: i64| (i * 2654435761u32 as i64) % 4096;
        for i in 0..w as i64 {
            t.insert(key_of(i), i as Seq);
        }
        for i in w as i64..(w as i64 * 10) {
            t.insert(key_of(i), i as Seq);
            let expired = i - w as i64;
            assert!(t.remove(key_of(expired), expired as Seq));
            assert_eq!(t.len(), w);
        }
        t.check_invariants();
    }

    #[test]
    fn range_scan_returns_exactly_the_band() {
        let mut t = BTreeIndex::with_fanout(4);
        for i in 0..200i64 {
            t.insert(i, i as Seq);
        }
        let got = t.range_collect(KeyRange::new(50, 59));
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].key, 50);
        assert_eq!(got[9].key, 59);
        // Range wider than contents.
        assert_eq!(t.range_collect(KeyRange::new(-100, 500)).len(), 200);
        // Empty range outside the key domain.
        assert!(t.range_collect(KeyRange::new(1000, 2000)).is_empty());
    }

    #[test]
    fn range_scan_with_duplicates_counts_all() {
        let mut t = BTreeIndex::with_fanout(4);
        for seq in 0..10 {
            t.insert(5, seq);
            t.insert(6, seq + 100);
        }
        assert_eq!(t.range_collect(KeyRange::point(5)).len(), 10);
        assert_eq!(t.range_collect(KeyRange::new(5, 6)).len(), 20);
    }

    #[test]
    fn first_at_or_after_crosses_leaves() {
        let mut t = BTreeIndex::with_fanout(4);
        for i in (0..100i64).map(|i| i * 10) {
            t.insert(i, 0);
        }
        assert_eq!(t.first_at_or_after(0).unwrap().key, 0);
        assert_eq!(t.first_at_or_after(1).unwrap().key, 10);
        assert_eq!(t.first_at_or_after(985).unwrap().key, 990);
        assert_eq!(t.first_at_or_after(990).unwrap().key, 990);
        assert_eq!(t.first_at_or_after(991), None);
    }

    #[test]
    fn drain_sorted_empties_the_tree() {
        let mut t = tree_with(&[(3, 0), (1, 0), (2, 0)], 4);
        let drained = t.drain_sorted();
        assert_eq!(
            drained,
            vec![Entry::new(1, 0), Entry::new(2, 0), Entry::new(3, 0)]
        );
        assert!(t.is_empty());
        t.check_invariants();
        // The tree is reusable afterwards.
        t.insert(9, 9);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn stats_report_node_counts_and_bytes() {
        let mut t = BTreeIndex::with_fanout(4);
        for i in 0..64i64 {
            t.insert(i, 0);
        }
        let s = t.stats();
        assert_eq!(s.entries, 64);
        assert!(
            s.leaf_nodes >= 16,
            "64 entries at fan-out 4 need >= 16 leaves"
        );
        assert!(s.inner_nodes >= 1);
        assert!(s.leaf_bytes >= 64 * std::mem::size_of::<Entry>());
        assert!(s.inner_bytes > 0);
        assert_eq!(s.height, t.height());
        assert!(s.total_bytes() >= s.leaf_bytes);
    }

    #[test]
    fn node_reuse_via_free_list() {
        let mut t = BTreeIndex::with_fanout(4);
        for i in 0..200i64 {
            t.insert(i, 0);
        }
        let nodes_after_insert = t.nodes.len();
        for i in 0..200i64 {
            t.remove(i, 0);
        }
        for i in 0..200i64 {
            t.insert(i, 0);
        }
        assert!(
            t.nodes.len() <= nodes_after_insert + 2,
            "arena should recycle freed nodes ({} vs {})",
            t.nodes.len(),
            nodes_after_insert
        );
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn fanout_below_four_rejected() {
        let _ = BTreeIndex::with_fanout(3);
    }
}
