//! Analytical per-tuple cost model for index-based window joins.
//!
//! Section 2 and 3 of the paper derive the cost of processing one streaming
//! tuple for every studied approach (Equations 1–6), and Appendix A gives the
//! complexity of building the immutable B+-Tree (Equation 7). This crate
//! implements those formulas so that the benchmark harness can put measured
//! numbers next to the model's predictions, and so the relative ordering of
//! the approaches (who wins where, and why) can be reasoned about without
//! running anything.
//!
//! Notation (mirroring the paper):
//!
//! * `w` — sliding-window size;
//! * `σ_s` — match rate (`w · σ`);
//! * `τ_c` — cost of comparing two tuples during a leaf scan;
//! * `λ^s_b`, `λ^i_b`, `λ^d_b` — per-node search/insert/delete cost of the
//!   mutable B+-Tree; `f_b` its fan-out;
//! * `λ^s_ib`, `f_ib` — per-node search cost and fan-out of the immutable
//!   B+-Tree;
//! * `L` — chain length of the chained index; `P` — join cores of the
//!   round-robin partitioned join; `m` — merge ratio; `D_I` — insertion depth.

pub mod cost;
pub mod params;

pub use cost::{
    btree_cost, chained_cost, im_tree_cost, merge_cost, pim_tree_cost, round_robin_cost,
    CostEstimate,
};
pub use params::ModelParams;
