//! Equations 1–7: per-tuple cost of each join approach.

use crate::params::ModelParams;

/// Per-tuple cost estimate broken into the paper's three steps (plus the
/// amortised merge cost for the two-stage trees).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostEstimate {
    /// Step 1: probing the opposite index and scanning matches.
    pub search: f64,
    /// Step 2: removing the expired tuple (or its amortised equivalent).
    pub delete: f64,
    /// Step 3: inserting the new tuple.
    pub insert: f64,
}

impl CostEstimate {
    /// Total per-tuple cost (Equation 1).
    pub fn total(&self) -> f64 {
        self.search + self.delete + self.insert
    }
}

/// Equation 7: cost of building an immutable B+-Tree over `n` entries plus
/// the linear pass that merges and filters the inputs — `O(n)`.
pub fn merge_cost(p: &ModelParams, n: usize) -> f64 {
    p.merge_per_entry * n as f64
}

/// Equation 2: IBWJ over a single B+-Tree per window.
pub fn btree_cost(p: &ModelParams) -> CostEstimate {
    let h_b = p.h_b();
    CostEstimate {
        search: h_b * p.btree_search_node + p.match_rate * p.compare_cost,
        delete: h_b * p.btree_delete_node,
        insert: h_b * p.btree_insert_node,
    }
}

/// Equation 3: IBWJ over a chained index of length `L >= 2`.
pub fn chained_cost(p: &ModelParams, chain_length: usize) -> CostEstimate {
    assert!(chain_length >= 2, "chain length must be at least 2");
    let l = chain_length as f64;
    // Each sub-index holds w / (L - 1) tuples.
    let h_c = ModelParams::tree_height(p.window / (chain_length - 1), p.btree_fanout);
    CostEstimate {
        search: l * h_c * p.btree_search_node
            + p.match_rate * p.compare_cost * (1.0 + 1.0 / (2.0 * (l - 1.0))),
        delete: 0.0,
        insert: h_c * p.btree_insert_node,
    }
}

/// Equation 4: IBWJ over round-robin partitioning with `P` join cores, each
/// holding a local B+-Tree over `w / P` tuples.
pub fn round_robin_cost(p: &ModelParams, cores: usize) -> CostEstimate {
    assert!(cores >= 1, "at least one join core");
    let h_p = ModelParams::tree_height(p.window / cores, p.btree_fanout);
    CostEstimate {
        search: cores as f64 * h_p * p.btree_search_node + p.match_rate * p.compare_cost,
        delete: h_p * p.btree_delete_node,
        insert: h_p * p.btree_insert_node,
    }
}

/// Equation 5: IBWJ over the IM-Tree with merge ratio `m`.
pub fn im_tree_cost(p: &ModelParams, merge_ratio: f64) -> CostEstimate {
    assert!(merge_ratio > 0.0 && merge_ratio <= 1.0);
    let m = merge_ratio;
    let h_s = p.h_s();
    // The mutable component holds on average m·w/2 tuples.
    let avg_ti = ((m * p.window as f64) / 2.0).max(1.0) as usize;
    let h_i = ModelParams::tree_height(avg_ti, p.btree_fanout);
    // One merge moves about (1 + m)·w entries and happens every m·w tuples.
    let amortised_merge =
        merge_cost(p, ((1.0 + m) * p.window as f64) as usize) / (m * p.window as f64);
    CostEstimate {
        search: h_s * p.css_search_node
            + h_i * p.btree_search_node
            + p.match_rate * p.compare_cost * (1.0 + m / 2.0),
        delete: amortised_merge,
        insert: h_i * p.btree_insert_node,
    }
}

/// Equation 6: IBWJ over the PIM-Tree with merge ratio `m` and insertion
/// depth `D_I`.
pub fn pim_tree_cost(p: &ModelParams, merge_ratio: f64, insertion_depth: usize) -> CostEstimate {
    assert!(merge_ratio > 0.0 && merge_ratio <= 1.0);
    let m = merge_ratio;
    let h_s = p.h_s();
    let d_i = (insertion_depth as f64).min(h_s);
    // Number of partitions ≈ f_ib^D_I; the average sub-index holds the
    // mutable component's tuples spread across them.
    let partitions = (p.css_fanout as f64).powf(d_i).max(1.0);
    let avg_sub = ((m * p.window as f64) / (2.0 * partitions)).max(1.0) as usize;
    let h_i = ModelParams::tree_height(avg_sub, p.btree_fanout);
    let amortised_merge =
        merge_cost(p, ((1.0 + m) * p.window as f64) as usize) / (m * p.window as f64);
    CostEstimate {
        search: h_s * p.css_search_node
            + h_i * p.btree_search_node
            + p.match_rate * p.compare_cost * (1.0 + m / 2.0),
        delete: amortised_merge,
        insert: d_i * p.css_search_node + h_i * p.btree_insert_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(w: usize) -> ModelParams {
        ModelParams::for_window(w)
    }

    #[test]
    fn totals_are_sums_of_steps() {
        let c = btree_cost(&p(1 << 20));
        assert!((c.total() - (c.search + c.delete + c.insert)).abs() < 1e-12);
    }

    #[test]
    fn pim_beats_btree_for_large_windows() {
        // The headline analytical claim: for realistic window sizes the
        // two-stage trees process a tuple cheaper than a single B+-Tree.
        for exp in 16..=25 {
            let params = p(1 << exp);
            let b = btree_cost(&params).total();
            let im = im_tree_cost(&params, 1.0 / 8.0).total();
            let pim = pim_tree_cost(&params, 1.0 / 8.0, 3).total();
            assert!(im < b, "IM-Tree {im} vs B+-Tree {b} at w=2^{exp}");
            assert!(
                pim <= im * 1.05,
                "PIM-Tree {pim} vs IM-Tree {im} at w=2^{exp}"
            );
        }
    }

    #[test]
    fn chained_index_search_grows_with_chain_length() {
        let params = p(1 << 20);
        let c2 = chained_cost(&params, 2);
        let c8 = chained_cost(&params, 8);
        assert!(
            c8.search > c2.search,
            "longer chains search more sub-indexes"
        );
        assert!(
            c8.insert <= c2.insert,
            "longer chains have smaller active sub-indexes"
        );
    }

    #[test]
    fn chained_index_update_is_cheaper_than_btree() {
        let params = p(1 << 20);
        let b = btree_cost(&params);
        let c = chained_cost(&params, 2);
        assert!(c.insert + c.delete < b.insert + b.delete);
    }

    #[test]
    fn round_robin_search_overhead_grows_with_cores() {
        let params = p(1 << 20);
        let c1 = round_robin_cost(&params, 1);
        let c8 = round_robin_cost(&params, 8);
        let c16 = round_robin_cost(&params, 16);
        assert!(c8.search > c1.search);
        assert!(c16.search > c8.search);
        // ... while updates get cheaper with smaller local indexes.
        assert!(c16.insert <= c1.insert);
    }

    #[test]
    fn merge_ratio_tradeoff_is_concave() {
        // Very small and very large merge ratios are both worse than a
        // moderate one (Figure 9c/9d).
        let params = p(1 << 20);
        let tiny = im_tree_cost(&params, 1.0 / 512.0).total();
        let moderate = im_tree_cost(&params, 1.0 / 8.0).total();
        let huge = im_tree_cost(&params, 1.0).total();
        assert!(
            moderate < tiny,
            "too-frequent merges dominate: {moderate} vs {tiny}"
        );
        // The penalty for very rare merges (large TI, more expired tuples in
        // scans) is milder in the model than the too-frequent-merge penalty,
        // matching the asymmetric shape of Figure 9c/9d.
        assert!(
            moderate <= huge * 1.1,
            "a moderate merge ratio must be competitive with m = 1: {moderate} vs {huge}"
        );
    }

    #[test]
    fn deeper_insertion_reduces_subindex_insert_cost() {
        let params = p(1 << 22);
        let d1 = pim_tree_cost(&params, 1.0, 1);
        let d3 = pim_tree_cost(&params, 1.0, 3);
        // Deeper insertion point → smaller sub-indexes → cheaper B+-Tree part
        // of the insert, at the price of a longer TS routing walk.
        assert!(d3.search <= d1.search);
        let d1_btree_part = d1.insert - 1.0 * params.css_search_node;
        let d3_btree_part = d3.insert - 3.0 * params.css_search_node;
        assert!(d3_btree_part < d1_btree_part);
    }

    #[test]
    fn merge_cost_is_linear() {
        let params = p(1 << 20);
        let a = merge_cost(&params, 1 << 18);
        let b = merge_cost(&params, 1 << 19);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "chain length")]
    fn chained_cost_rejects_length_one() {
        let _ = chained_cost(&p(1 << 16), 1);
    }
}
