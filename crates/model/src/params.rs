//! Parameters of the analytical cost model.

use serde::{Deserialize, Serialize};

/// Model parameters. Per-node costs are in arbitrary time units; only ratios
/// matter when comparing approaches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Sliding-window size `w`.
    pub window: usize,
    /// Match rate `σ_s = w · σ`.
    pub match_rate: f64,
    /// Cost `τ_c` of one tuple comparison during a leaf scan.
    pub compare_cost: f64,
    /// Per-node search cost of the mutable B+-Tree (`λ^s_b`).
    pub btree_search_node: f64,
    /// Per-node insert cost of the mutable B+-Tree (`λ^i_b`).
    pub btree_insert_node: f64,
    /// Per-node delete cost of the mutable B+-Tree (`λ^d_b`).
    pub btree_delete_node: f64,
    /// Fan-out of the mutable B+-Tree (`f_b`).
    pub btree_fanout: usize,
    /// Per-node search cost of the immutable B+-Tree (`λ^s_ib`).
    pub css_search_node: f64,
    /// Fan-out of the immutable B+-Tree (`f_ib`), higher than `f_b` because
    /// inner nodes carry no child pointers.
    pub css_fanout: usize,
    /// Cost of moving one entry during a merge (sorting + bulk build are
    /// linear, Equation 7).
    pub merge_per_entry: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        // Unit costs loosely calibrated to the relative magnitudes observed in
        // the paper's Figure 9b: immutable-tree node steps are cheaper than
        // mutable-tree node steps, and structural updates cost more than
        // lookups.
        ModelParams {
            window: 1 << 20,
            match_rate: 2.0,
            compare_cost: 1.0,
            btree_search_node: 6.0,
            btree_insert_node: 9.0,
            btree_delete_node: 9.0,
            btree_fanout: 32,
            css_search_node: 4.0,
            css_fanout: 32,
            merge_per_entry: 2.0,
        }
    }
}

impl ModelParams {
    /// Parameters for a window of `w` tuples, everything else at defaults.
    pub fn for_window(w: usize) -> Self {
        ModelParams {
            window: w,
            ..Default::default()
        }
    }

    /// Height (number of levels) of a B+-Tree with fan-out `f` holding `n`
    /// entries — `log_f n`, at least 1.
    pub fn tree_height(n: usize, fanout: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        ((n as f64).ln() / (fanout as f64).ln()).max(1.0)
    }

    /// Height of the mutable B+-Tree over the full window (`H_b`).
    pub fn h_b(&self) -> f64 {
        Self::tree_height(self.window, self.btree_fanout)
    }

    /// Height of the immutable B+-Tree over the full window (`H_S`).
    pub fn h_s(&self) -> f64 {
        Self::tree_height(self.window, self.css_fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_grow_logarithmically() {
        let h14 = ModelParams::tree_height(1 << 14, 32);
        let h20 = ModelParams::tree_height(1 << 20, 32);
        let h25 = ModelParams::tree_height(1 << 25, 32);
        assert!(h14 < h20 && h20 < h25);
        assert!((h20 - 4.0).abs() < 0.1, "log_32(2^20) = 4, got {h20}");
        assert_eq!(ModelParams::tree_height(1, 32), 1.0);
        assert_eq!(ModelParams::tree_height(0, 32), 1.0);
    }

    #[test]
    fn css_tree_is_at_least_as_shallow() {
        let p = ModelParams::for_window(1 << 22);
        assert!(p.h_s() <= p.h_b());
    }
}
