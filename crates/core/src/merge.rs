//! The merge step shared by IM-Tree and PIM-Tree.
//!
//! A merge combines the live tuples of the immutable component `TS` with the
//! (already sorted) contents of the mutable component `TI` into one sorted
//! array and bulk-builds a new `TS` from it. Expired tuples — those whose
//! sequence number lies before the earliest live tuple of the sliding window —
//! are dropped on the way. The cost of this operation is linear in the window
//! size (Figure 14 / Equation 7).

use std::time::Duration;

use pimtree_btree::Entry;
use pimtree_common::{PimConfig, Seq};
use pimtree_css::{CssBuilder, CssTree};

/// Outcome of one merge operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MergeReport {
    /// Wall-clock time of the merge (building the new `TS` included).
    pub duration: Duration,
    /// Live entries carried over from the old `TS`.
    pub kept_from_ts: usize,
    /// Expired entries dropped from the old `TS`.
    pub dropped_expired: usize,
    /// Entries moved in from the mutable component.
    pub from_ti: usize,
    /// Number of entries in the new `TS`.
    pub new_len: usize,
    /// Number of mutable partitions after the merge (1 for the IM-Tree).
    pub partitions: usize,
}

/// Merges the live part of `ts` with the sorted entries `ti` (expired entries
/// in `ti` are dropped as well) and returns the new sorted array together with
/// the bookkeeping counts.
pub fn merge_live(
    ts: &CssTree,
    ti: &[Entry],
    earliest_live: Seq,
) -> (Vec<Entry>, usize, usize, usize) {
    debug_assert!(
        ti.windows(2).all(|w| w[0] <= w[1]),
        "TI drain must be sorted"
    );
    let ts_entries = ts.entries();
    let mut merged = Vec::with_capacity(ts_entries.len() + ti.len());
    let mut kept_from_ts = 0usize;
    let mut dropped = 0usize;
    let mut from_ti = 0usize;

    let mut a = ts_entries.iter().copied().peekable();
    let mut b = ti.iter().copied().peekable();
    loop {
        let take_a = match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => x <= y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_a {
            let e = a.next().expect("peeked");
            if e.seq >= earliest_live {
                merged.push(e);
                kept_from_ts += 1;
            } else {
                dropped += 1;
            }
        } else {
            let e = b.next().expect("peeked");
            if e.seq >= earliest_live {
                merged.push(e);
                from_ti += 1;
            } else {
                dropped += 1;
            }
        }
    }
    (merged, kept_from_ts, dropped, from_ti)
}

/// Builds the immutable component configured by `config` from a sorted entry
/// array.
pub fn build_ts(config: &PimConfig, entries: Vec<Entry>) -> CssTree {
    CssBuilder::new()
        .fanout(config.css_fanout)
        .leaf_size(config.css_leaf_size)
        .build(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn css(entries: Vec<Entry>) -> CssTree {
        CssBuilder::new().fanout(4).leaf_size(4).build(entries)
    }

    #[test]
    fn merge_interleaves_and_stays_sorted() {
        let ts = css((0..50).map(|i| Entry::new(i * 4, i as Seq)).collect());
        let ti: Vec<Entry> = (0..50)
            .map(|i| Entry::new(i * 4 + 2, (100 + i) as Seq))
            .collect();
        let (merged, kept, dropped, from_ti) = merge_live(&ts, &ti, 0);
        assert_eq!(merged.len(), 100);
        assert_eq!(kept, 50);
        assert_eq!(dropped, 0);
        assert_eq!(from_ti, 50);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn expired_entries_are_dropped_from_both_sides() {
        let ts = css((0..20).map(|i| Entry::new(i, i as Seq)).collect());
        let ti: Vec<Entry> = (0..10)
            .map(|i| Entry::new(100 + i, (20 + i) as Seq))
            .collect();
        // Everything with seq < 15 is expired.
        let (merged, kept, dropped, from_ti) = merge_live(&ts, &ti, 15);
        assert_eq!(kept, 5, "TS seqs 15..19 survive");
        assert_eq!(from_ti, 10);
        assert_eq!(dropped, 15);
        assert_eq!(merged.len(), 15);
        assert!(merged.iter().all(|e| e.seq >= 15));
    }

    #[test]
    fn merge_with_empty_sides() {
        let ts = css(Vec::new());
        let ti: Vec<Entry> = (0..5).map(|i| Entry::new(i, i as Seq)).collect();
        let (merged, kept, dropped, from_ti) = merge_live(&ts, &ti, 0);
        assert_eq!(merged.len(), 5);
        assert_eq!((kept, dropped, from_ti), (0, 0, 5));

        let ts = css((0..5).map(|i| Entry::new(i, i as Seq)).collect());
        let (merged, kept, dropped, from_ti) = merge_live(&ts, &[], 0);
        assert_eq!(merged.len(), 5);
        assert_eq!((kept, dropped, from_ti), (5, 0, 0));

        let ts = css(Vec::new());
        let (merged, ..) = merge_live(&ts, &[], 0);
        assert!(merged.is_empty());
    }

    #[test]
    fn duplicate_keys_across_components_are_preserved() {
        let ts = css(vec![Entry::new(7, 1), Entry::new(7, 3)]);
        let ti = vec![Entry::new(7, 2), Entry::new(7, 4)];
        let (merged, ..) = merge_live(&ts, &ti, 0);
        assert_eq!(
            merged,
            vec![
                Entry::new(7, 1),
                Entry::new(7, 2),
                Entry::new(7, 3),
                Entry::new(7, 4)
            ]
        );
    }

    #[test]
    fn build_ts_uses_config_geometry() {
        let cfg = PimConfig::for_window(1 << 12);
        let ts = build_ts(&cfg, (0..1000).map(|i| Entry::new(i, i as Seq)).collect());
        assert_eq!(ts.fanout(), cfg.css_fanout);
        assert_eq!(ts.leaf_size(), cfg.css_leaf_size);
        assert_eq!(ts.len(), 1000);
        ts.check_invariants();
    }
}
