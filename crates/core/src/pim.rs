//! The Partitioned In-memory Merge-Tree (PIM-Tree, §3.3): the paper's
//! concurrent sliding-window index.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use pimtree_btree::{BTreeIndex, Entry};
use pimtree_common::{
    CostBreakdown, Key, KeyRange, PimConfig, ProbeConfig, ProbeCounters, Seq, Step,
};
use pimtree_css::CssTree;

use crate::footprint::PimFootprint;
use crate::merge::{build_ts, merge_live, MergeReport};

/// One mutable partition: a sub-B+-Tree guarded by its own lock, plus an
/// insert counter used by the skew experiments (Figure 13a).
#[derive(Debug)]
struct Partition {
    tree: Mutex<BTreeIndex>,
    inserts: AtomicU64,
}

impl Partition {
    fn new(fanout: usize) -> Self {
        Partition {
            tree: Mutex::new(BTreeIndex::with_fanout(fanout)),
            inserts: AtomicU64::new(0),
        }
    }
}

/// One generation of the two-stage structure: an immutable `TS` plus the
/// mutable partitions attached to its inner nodes at the insertion depth.
/// A merge replaces the whole generation.
#[derive(Debug)]
struct Generation {
    ts: CssTree,
    /// Effective insertion depth (the configured `DI`, clamped to the number
    /// of inner levels actually present in `TS`).
    depth: usize,
    partitions: Vec<Partition>,
    ti_len: AtomicUsize,
}

impl Generation {
    fn new(config: &PimConfig, ts: CssTree) -> Self {
        let depth = config.insertion_depth.min(ts.inner_levels());
        let count = if ts.is_empty() {
            1
        } else {
            ts.nodes_at_depth(depth)
        };
        let partitions = (0..count)
            .map(|_| Partition::new(config.btree_fanout))
            .collect();
        Generation {
            ts,
            depth,
            partitions,
            ti_len: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn route(&self, entry: Entry) -> usize {
        if self.ts.is_empty() {
            0
        } else {
            self.ts.descend_to_depth(entry, self.depth)
        }
    }

    /// Sorted snapshot of the mutable component (partitions are disjoint,
    /// ascending key ranges, so concatenation preserves order).
    fn ti_snapshot(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.ti_len.load(Ordering::Relaxed));
        for p in &self.partitions {
            let tree = p.tree.lock();
            tree.for_each(|e| out.push(e));
        }
        debug_assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "TI snapshot must be sorted"
        );
        out
    }
}

/// Probes one generation for `range`: the immutable component without locks,
/// then the overlapping mutable partitions one lock at a time (Algorithm 2).
/// Shared by the scalar probe and the batch-of-one fast path.
fn probe_generation(gen: &Generation, range: KeyRange, f: &mut dyn FnMut(Entry)) {
    gen.ts.range_for_each(range, &mut *f);
    if gen.ti_len.load(Ordering::Relaxed) == 0 {
        return;
    }
    let p_lo = gen.route(Entry::min_for_key(range.lo));
    let p_hi = gen.route(Entry::max_for_key(range.hi));
    for p in p_lo..=p_hi {
        let tree = gen.partitions[p].tree.lock();
        tree.range_for_each(range, &mut *f);
    }
}

/// Sort/dedup bookkeeping and group-descent cursors of
/// [`PimTree::probe_batch`], kept per thread so the hot path reuses its
/// buffers instead of allocating five vectors per task.
#[derive(Default)]
struct ProbeScratch {
    order: Vec<usize>,
    uniq: Vec<KeyRange>,
    starts: Vec<usize>,
    targets: Vec<Entry>,
    positions: Vec<usize>,
    groups: Vec<usize>,
    ends: Vec<usize>,
    partition_ranges: Vec<(usize, usize)>,
    pairs: Vec<(usize, usize)>,
}

thread_local! {
    static PROBE_SCRATCH: std::cell::RefCell<ProbeScratch> =
        std::cell::RefCell::new(ProbeScratch::default());
}

/// A merge that has been prepared (phase 1 of the non-blocking merge) but not
/// yet installed. Produced by [`PimTree::begin_merge`], consumed by
/// [`PimTree::install_merge`].
#[derive(Debug)]
pub struct PreparedMerge {
    generation: Generation,
    report: MergeReport,
    started: Instant,
}

impl PreparedMerge {
    /// Number of entries the new immutable component will hold.
    pub fn new_len(&self) -> usize {
        self.report.new_len
    }
}

/// The Partitioned In-memory Merge-Tree.
///
/// All operations take `&self`; concurrent inserts and range lookups from any
/// number of threads are coordinated by per-partition locks, while the
/// immutable component is traversed without any synchronisation. Merges are
/// either blocking ([`PimTree::merge`]) or split into the two phases of the
/// paper's non-blocking scheme ([`PimTree::begin_merge`] /
/// [`PimTree::install_merge`]); in the latter case the caller must guarantee
/// that no inserts happen between the two calls (the parallel join engine does
/// so by having workers join *without index updates* during phase 1).
#[derive(Debug)]
pub struct PimTree {
    config: PimConfig,
    current: RwLock<Generation>,
    /// Insert counters of retired generations, folded in at merge time so the
    /// drift experiment can observe a cumulative histogram.
    retired_inserts: Mutex<Vec<u64>>,
}

impl PimTree {
    /// Creates an empty PIM-Tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PimConfig) -> Self {
        config.validate().expect("invalid PIM-Tree configuration");
        let generation = Generation::new(&config, build_ts(&config, Vec::new()));
        PimTree {
            config,
            current: RwLock::new(generation),
            retired_inserts: Mutex::new(Vec::new()),
        }
    }

    /// The configuration this tree was created with.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Entries currently held by the mutable component.
    pub fn ti_len(&self) -> usize {
        self.current.read().ti_len.load(Ordering::Relaxed)
    }

    /// Entries currently held by the immutable component (live and expired).
    pub fn ts_len(&self) -> usize {
        self.current.read().ts.len()
    }

    /// Total indexed entries (live and expired).
    pub fn len(&self) -> usize {
        let gen = self.current.read();
        gen.ts.len() + gen.ti_len.load(Ordering::Relaxed)
    }

    /// Whether no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of mutable partitions in the current generation.
    pub fn partition_count(&self) -> usize {
        self.current.read().partitions.len()
    }

    /// Effective insertion depth of the current generation.
    pub fn effective_depth(&self) -> usize {
        self.current.read().depth
    }

    /// Inserts a newly arrived tuple: route through `TS` to the insertion
    /// depth, then insert into the corresponding partition under its lock
    /// (Algorithm 1).
    pub fn insert(&self, key: Key, seq: Seq) {
        let entry = Entry::new(key, seq);
        let gen = self.current.read();
        let p = gen.route(entry);
        gen.partitions[p].inserts.fetch_add(1, Ordering::Relaxed);
        {
            let mut tree = gen.partitions[p].tree.lock();
            tree.insert_entry(entry);
        }
        gen.ti_len.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts a batch of newly arrived tuples under a single acquisition of
    /// the generation lock.
    ///
    /// The parallel join engine inserts one task's worth of tuples at a time;
    /// batching keeps the per-tuple cost down to the partition routing and the
    /// partition lock instead of adding a generation-lock acquisition and a
    /// shared counter update for every tuple.
    pub fn insert_batch(&self, entries: &[(Key, Seq)]) {
        if entries.is_empty() {
            return;
        }
        let gen = self.current.read();
        for &(key, seq) in entries {
            let entry = Entry::new(key, seq);
            let p = gen.route(entry);
            gen.partitions[p].inserts.fetch_add(1, Ordering::Relaxed);
            let mut tree = gen.partitions[p].tree.lock();
            tree.insert_entry(entry);
        }
        gen.ti_len.fetch_add(entries.len(), Ordering::Relaxed);
    }

    /// Calls `f` for every indexed entry whose key lies in `range`, including
    /// entries of expired tuples (callers filter by sequence number). `TS` is
    /// scanned without locks; only the partitions overlapping the range are
    /// locked, one at a time (Algorithm 2).
    pub fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, mut f: F) {
        let gen = self.current.read();
        probe_generation(&gen, range, &mut f);
    }

    /// Batched range probe: calls `f(i, entry)` for every indexed entry whose
    /// key lies in `ranges[i]`, including entries of expired tuples (callers
    /// filter by sequence number). Per range, entries arrive exactly as the
    /// scalar [`PimTree::range_for_each`] would deliver them: the immutable
    /// component's entries in ascending order, then the overlapping mutable
    /// partitions.
    ///
    /// The batch is sorted and deduplicated (identical ranges share one
    /// descent), then the immutable component is descended level-by-level for
    /// the whole group with software prefetching
    /// (`CssTree::lower_bound_batch_groups`), all under a single acquisition
    /// of the generation lock — one lock round-trip per task instead of one
    /// per tuple. The mutable component is batched too: each range's
    /// overlapping partition interval is derived *arithmetically* from the
    /// group descent's leaf group (the routing node at the insertion depth is
    /// an ancestor of it — no second root-to-leaf walk), and the partitions
    /// are then visited partition-major, so a partition overlapped by many
    /// ranges is locked once per batch instead of once per range.
    /// `probe.prefetch_dist` is the per-level prefetch lookahead (0 = no
    /// prefetching); with `probe.interleave >= 2` the level-wise group
    /// descent is replaced by the AMAC-style interleaved descent ring
    /// (`CssTree::lower_bound_interleaved`), which overlaps each descent's
    /// cache miss with the other in-flight descents' compares instead of
    /// prefetching ahead within a level. `counters` records batch sizes,
    /// dedup hits, nodes prefetched, interleave/SIMD work and the
    /// mutable-side lock grouping. A batch of one degenerates to the scalar
    /// descent (there is nothing to group, dedup or prefetch ahead of),
    /// skipping the batch bookkeeping entirely; the sort/dedup/cursor
    /// buffers of larger batches are reused through a per-thread scratch, so
    /// the steady state allocates nothing.
    pub fn probe_batch<F: FnMut(usize, Entry)>(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut ProbeCounters,
        mut f: F,
    ) {
        let n = ranges.len();
        if n == 0 {
            return;
        }
        counters.batches += 1;
        counters.batched_keys += n as u64;
        counters.max_batch = counters.max_batch.max(n as u64);

        let gen = self.current.read();
        if n == 1 {
            probe_generation(&gen, ranges[0], &mut |e| f(0, e));
            return;
        }
        // Taking the scratch out (instead of borrowing it in place) keeps a
        // re-entrant callback from panicking: an inner call simply starts
        // from an empty default and the outer buffers win the put-back.
        let mut s = PROBE_SCRATCH.with(|cell| cell.take());
        // Sort the batch so equal ranges are adjacent (deduplicated below)
        // and the group descent visits nodes left to right.
        s.order.clear();
        s.order.extend(0..n);
        s.order
            .sort_unstable_by_key(|&i| (ranges[i].lo, ranges[i].hi));
        s.uniq.clear();
        s.starts.clear();
        for (pos, &i) in s.order.iter().enumerate() {
            if s.uniq.last() != Some(&ranges[i]) {
                s.uniq.push(ranges[i]);
                s.starts.push(pos);
            }
        }
        s.starts.push(n);
        counters.dedup_hits += (n - s.uniq.len()) as u64;

        // One level-wise group descent resolves every unique range's start
        // position in the immutable component and records the leaf group the
        // descent landed in — the partition-routing node at the insertion
        // depth is an arithmetic ancestor of that group, so the mutable-side
        // routing below never re-descends from the root.
        s.positions.clear();
        s.groups.clear();
        if !gen.ts.is_empty() {
            s.targets.clear();
            s.targets
                .extend(s.uniq.iter().map(|r| Entry::min_for_key(r.lo)));
            if probe.interleave >= 2 {
                gen.ts.lower_bound_interleaved(
                    &s.targets,
                    probe.interleave,
                    &mut s.positions,
                    Some(&mut s.groups),
                    counters,
                );
            } else {
                gen.ts.lower_bound_batch_groups_counted(
                    &s.targets,
                    probe.prefetch_dist,
                    &mut s.positions,
                    &mut s.groups,
                    counters,
                );
            }
        }
        let ti_populated = gen.ti_len.load(Ordering::Relaxed) > 0;

        // Immutable component first: per unique range, every `TS` entry is
        // emitted before any `TI` entry, exactly like the scalar probe. The
        // scan's end position doubles as the upper routing bound for the
        // mutable side (it lies in, or one short of, the leaf group holding
        // the first entry past the range).
        s.ends.clear();
        for (j, &range) in s.uniq.iter().enumerate() {
            let group = &s.order[s.starts[j]..s.starts[j + 1]];
            let mut pos = if gen.ts.is_empty() { 0 } else { s.positions[j] };
            if !gen.ts.is_empty() {
                while pos < gen.ts.len() {
                    let e = gen.ts.entry_at(pos);
                    if e.key > range.hi {
                        break;
                    }
                    for &i in group {
                        f(i, e);
                    }
                    pos += 1;
                }
            }
            s.ends.push(pos);
        }

        // Mutable component, batched: each unique range's overlapping
        // partition interval is derived arithmetically, then the partitions
        // are visited in ascending order with every overlapping range
        // answered under a single lock acquisition — one lock round-trip per
        // (batch, partition) instead of one per (range, partition).
        if ti_populated {
            s.partition_ranges.clear();
            let leaf_size = gen.ts.leaf_size().max(1);
            let last_group = gen.ts.leaf_groups().saturating_sub(1);
            for (j, &range) in s.uniq.iter().enumerate() {
                let (p_lo, p_hi) = if gen.ts.is_empty() {
                    (0, 0)
                } else {
                    // `p_lo` is exact (the descent group's ancestor); `p_hi`
                    // derived from the scan end is conservative — it can
                    // overshoot the true routing node by at most one leaf
                    // group's ancestor, never undershoot it.
                    let p_lo = gen.ts.ancestor_at_depth(s.groups[j], gen.depth);
                    let end_group = (s.ends[j] / leaf_size).min(last_group);
                    let p_hi = gen.ts.ancestor_at_depth(end_group, gen.depth).max(p_lo);
                    (p_lo, p_hi)
                };
                debug_assert!(p_hi < gen.partitions.len());
                debug_assert_eq!(p_lo, gen.route(Entry::min_for_key(range.lo)));
                debug_assert!(p_hi >= gen.route(Entry::max_for_key(range.hi)));
                s.partition_ranges.push((p_lo, p_hi));
            }
            s.pairs.clear();
            for (j, &(p_lo, p_hi)) in s.partition_ranges.iter().enumerate() {
                for p in p_lo..=p_hi {
                    s.pairs.push((p, j));
                }
            }
            s.pairs.sort_unstable();
            counters.ti_range_visits += s.pairs.len() as u64;
            let mut k = 0;
            while k < s.pairs.len() {
                let p = s.pairs[k].0;
                let tree = gen.partitions[p].tree.lock();
                counters.ti_partition_locks += 1;
                while k < s.pairs.len() && s.pairs[k].0 == p {
                    let j = s.pairs[k].1;
                    let range = s.uniq[j];
                    let group = &s.order[s.starts[j]..s.starts[j + 1]];
                    tree.range_for_each(range, |e| {
                        for &i in group {
                            f(i, e);
                        }
                    });
                    k += 1;
                }
            }
        }
        PROBE_SCRATCH.with(|cell| cell.replace(s));
    }

    /// Scalar batch probe: answers `ranges` with one scalar descent per range
    /// — no sorting, deduplication or cross-range prefetching — while still
    /// *batching the mutable-side partition routing* the way
    /// [`PimTree::probe_batch`] does. Each range's overlapping partition
    /// interval is computed up front and the partitions are then visited
    /// partition-major, so a partition overlapped by several of the task's
    /// ranges is locked once per call instead of once per range
    /// (`counters.ti_partition_locks` / `counters.ti_range_visits`; the
    /// group-descent counters stay untouched, so runs through this path
    /// remain distinguishable from the batched probe).
    ///
    /// Per range, entries arrive exactly as the scalar
    /// [`PimTree::range_for_each`] would deliver them: the immutable
    /// component's entries in ascending order, then the overlapping mutable
    /// partitions in ascending partition order. A batch of one degenerates to
    /// the scalar probe (there is nothing to group).
    ///
    /// With `probe.interleave >= 2` the per-range root-to-leaf descents are
    /// replaced by one pass of the AMAC-style interleaved descent ring
    /// (`CssTree::lower_bound_interleaved`) — ranges stay unsorted and
    /// undeduplicated (this is still the scalar path), but their start
    /// positions resolve with overlapped cache misses; emission order per
    /// range is unchanged.
    pub fn probe_ranges_scalar<F: FnMut(usize, Entry)>(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut ProbeCounters,
        mut f: F,
    ) {
        let n = ranges.len();
        if n == 0 {
            return;
        }
        let gen = self.current.read();
        if n == 1 {
            probe_generation(&gen, ranges[0], &mut |e| f(0, e));
            return;
        }
        // Immutable component first, per range, exactly like the scalar
        // probe delivers it (one scalar descent per range, by design —
        // unless interleaving resolves the range starts as a ring).
        if probe.interleave >= 2 && !gen.ts.is_empty() {
            let mut s = PROBE_SCRATCH.with(|cell| cell.take());
            s.targets.clear();
            s.targets
                .extend(ranges.iter().map(|r| Entry::min_for_key(r.lo)));
            gen.ts.lower_bound_interleaved(
                &s.targets,
                probe.interleave,
                &mut s.positions,
                None,
                counters,
            );
            for (j, &range) in ranges.iter().enumerate() {
                let mut pos = s.positions[j];
                while pos < gen.ts.len() {
                    let e = gen.ts.entry_at(pos);
                    if e.key > range.hi {
                        break;
                    }
                    f(j, e);
                    pos += 1;
                }
            }
            PROBE_SCRATCH.with(|cell| cell.replace(s));
        } else {
            for (j, &range) in ranges.iter().enumerate() {
                gen.ts.range_for_each(range, &mut |e| f(j, e));
            }
        }
        if gen.ti_len.load(Ordering::Relaxed) == 0 {
            return;
        }
        // Mutable component, partition-major: route every range to its
        // partition interval, then lock each overlapped partition once and
        // answer all of its ranges under that one acquisition.
        let mut s = PROBE_SCRATCH.with(|cell| cell.take());
        s.pairs.clear();
        for (j, &range) in ranges.iter().enumerate() {
            let p_lo = gen.route(Entry::min_for_key(range.lo));
            let p_hi = gen.route(Entry::max_for_key(range.hi));
            for p in p_lo..=p_hi {
                s.pairs.push((p, j));
            }
        }
        counters.ti_range_visits += s.pairs.len() as u64;
        s.pairs.sort_unstable();
        let mut k = 0;
        while k < s.pairs.len() {
            let p = s.pairs[k].0;
            let tree = gen.partitions[p].tree.lock();
            counters.ti_partition_locks += 1;
            while k < s.pairs.len() && s.pairs[k].0 == p {
                let j = s.pairs[k].1;
                tree.range_for_each(ranges[j], |e| f(j, e));
                k += 1;
            }
        }
        PROBE_SCRATCH.with(|cell| cell.replace(s));
    }

    /// Calls `f` for every *live* entry (sequence number at or after
    /// `earliest_live`) whose key lies in `range`.
    pub fn range_live<F: FnMut(Entry)>(&self, range: KeyRange, earliest_live: Seq, mut f: F) {
        self.range_for_each(range, |e| {
            if e.seq >= earliest_live {
                f(e);
            }
        });
    }

    /// Collects every live entry whose key lies in `range`.
    pub fn range_collect_live(&self, range: KeyRange, earliest_live: Seq) -> Vec<Entry> {
        let mut out = Vec::new();
        self.range_live(range, earliest_live, |e| out.push(e));
        out
    }

    /// Instrumented probe separating index traversal ("search") from leaf
    /// scanning ("scan"), used by the Figure 9b experiment.
    pub fn probe_with_breakdown(
        &self,
        range: KeyRange,
        earliest_live: Seq,
        breakdown: &mut CostBreakdown,
    ) -> Vec<Entry> {
        let gen = self.current.read();

        let search_start = Instant::now();
        let ts_pos = gen.ts.lower_bound_key(range.lo);
        let p_lo = gen.route(Entry::min_for_key(range.lo));
        let p_hi = gen.route(Entry::max_for_key(range.hi));
        breakdown.record(Step::Search, search_start.elapsed());

        let scan_start = Instant::now();
        let mut out = Vec::new();
        let mut pos = ts_pos;
        while pos < gen.ts.len() {
            let e = gen.ts.entry_at(pos);
            if e.key > range.hi {
                break;
            }
            if e.seq >= earliest_live {
                out.push(e);
            }
            pos += 1;
        }
        if gen.ti_len.load(Ordering::Relaxed) > 0 {
            for p in p_lo..=p_hi {
                let tree = gen.partitions[p].tree.lock();
                tree.range_for_each(range, |e| {
                    if e.seq >= earliest_live {
                        out.push(e);
                    }
                });
            }
        }
        breakdown.record(Step::Scan, scan_start.elapsed());
        out
    }

    /// Whether the mutable component has reached the merge threshold `m · w`.
    pub fn needs_merge(&self) -> bool {
        self.ti_len() >= self.config.merge_threshold()
    }

    /// Blocking merge: waits for in-flight operations, then rebuilds `TS`
    /// from the live entries of both components and resets the partitions.
    pub fn merge(&self, earliest_live: Seq) -> MergeReport {
        let started = Instant::now();
        let mut guard = self.current.write();
        let ti = guard.ti_snapshot();
        let (merged, kept_from_ts, dropped_expired, from_ti) =
            merge_live(&guard.ts, &ti, earliest_live);
        let new_len = merged.len();
        let new_gen = Generation::new(&self.config, build_ts(&self.config, merged));
        let partitions = new_gen.partitions.len();
        let old = std::mem::replace(&mut *guard, new_gen);
        drop(guard);
        self.fold_retired_counters(&old);
        MergeReport {
            duration: started.elapsed(),
            kept_from_ts,
            dropped_expired,
            from_ti,
            new_len,
            partitions,
        }
    }

    /// Phase 1 of the non-blocking merge (§4.2): build the next generation
    /// from a snapshot of the current one, without modifying it. Lookups may
    /// proceed concurrently; the caller must ensure no inserts happen until
    /// [`PimTree::install_merge`] has returned.
    pub fn begin_merge(&self, earliest_live: Seq) -> PreparedMerge {
        let started = Instant::now();
        let gen = self.current.read();
        let ti = gen.ti_snapshot();
        let (merged, kept_from_ts, dropped_expired, from_ti) =
            merge_live(&gen.ts, &ti, earliest_live);
        let new_len = merged.len();
        drop(gen);
        let generation = Generation::new(&self.config, build_ts(&self.config, merged));
        let partitions = generation.partitions.len();
        PreparedMerge {
            generation,
            report: MergeReport {
                duration: started.elapsed(),
                kept_from_ts,
                dropped_expired,
                from_ti,
                new_len,
                partitions,
            },
            started,
        }
    }

    /// Phase 2 of the non-blocking merge: atomically swap in the prepared
    /// generation. Pending tuples buffered during phase 1 are re-inserted by
    /// the caller afterwards (they become ordinary inserts into the fresh
    /// partitions).
    pub fn install_merge(&self, prepared: PreparedMerge) -> MergeReport {
        let PreparedMerge {
            generation,
            mut report,
            started,
        } = prepared;
        let mut guard = self.current.write();
        let old = std::mem::replace(&mut *guard, generation);
        drop(guard);
        self.fold_retired_counters(&old);
        report.duration = started.elapsed();
        report
    }

    fn fold_retired_counters(&self, old: &Generation) {
        let mut retired = self.retired_inserts.lock();
        if retired.len() < old.partitions.len() {
            retired.resize(old.partitions.len(), 0);
        }
        for (i, p) in old.partitions.iter().enumerate() {
            retired[i] += p.inserts.load(Ordering::Relaxed);
        }
    }

    /// Cumulative per-partition insert counts (current generation plus all
    /// retired ones), used by the drift experiment of Figure 13a.
    pub fn insert_histogram(&self) -> Vec<u64> {
        let gen = self.current.read();
        let retired = self.retired_inserts.lock();
        let len = retired.len().max(gen.partitions.len());
        let mut hist = vec![0u64; len];
        for (i, &c) in retired.iter().enumerate() {
            hist[i] += c;
        }
        for (i, p) in gen.partitions.iter().enumerate() {
            hist[i] += p.inserts.load(Ordering::Relaxed);
        }
        hist
    }

    /// Clears the cumulative insert histogram (current generation counters
    /// included).
    pub fn reset_insert_histogram(&self) {
        self.retired_inserts.lock().clear();
        let gen = self.current.read();
        for p in &gen.partitions {
            p.inserts.store(0, Ordering::Relaxed);
        }
    }

    /// Memory footprint broken down by component (Figure 11a). The merge
    /// buffer is sized for the worst case: the sorted array built while the
    /// next `TS` is being constructed.
    pub fn footprint(&self) -> PimFootprint {
        let gen = self.current.read();
        let ts = gen.ts.stats();
        let mut ti_bytes = 0usize;
        let mut ti_entries = 0usize;
        for p in &gen.partitions {
            let tree = p.tree.lock();
            let s = tree.stats();
            ti_bytes += s.total_bytes();
            ti_entries += s.entries;
        }
        let entry = std::mem::size_of::<Entry>();
        PimFootprint {
            ts_leaf_bytes: ts.leaf_bytes,
            ts_inner_bytes: ts.inner_bytes,
            ti_bytes,
            merge_buffer_bytes: (ts.entries + ti_entries) * entry,
            entries: gen.ts.len() + ti_entries,
            partitions: gen.partitions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn config(w: usize, m: f64, di: usize) -> PimConfig {
        let mut c = PimConfig::for_window(w)
            .with_merge_ratio(m)
            .with_insertion_depth(di);
        c.css_fanout = 8;
        c.css_leaf_size = 8;
        c.btree_fanout = 8;
        c
    }

    #[test]
    fn empty_tree_has_one_partition() {
        let t = PimTree::new(config(64, 1.0, 3));
        assert!(t.is_empty());
        assert_eq!(t.partition_count(), 1);
        assert_eq!(t.effective_depth(), 0);
        assert!(t.range_collect_live(KeyRange::new(0, 100), 0).is_empty());
    }

    #[test]
    fn inserts_accumulate_in_ti_and_merge_builds_partitions() {
        let t = PimTree::new(config(256, 1.0, 2));
        for i in 0..256i64 {
            t.insert(i * 10, i as Seq);
        }
        assert_eq!(t.ti_len(), 256);
        assert_eq!(t.ts_len(), 0);
        assert!(t.needs_merge());
        let report = t.merge(0);
        assert_eq!(report.from_ti, 256);
        assert_eq!(report.new_len, 256);
        assert_eq!(t.ti_len(), 0);
        assert_eq!(t.ts_len(), 256);
        assert!(
            t.partition_count() > 1,
            "a populated TS yields multiple partitions"
        );
        assert_eq!(report.partitions, t.partition_count());
    }

    #[test]
    fn lookups_see_both_components() {
        let t = PimTree::new(config(128, 1.0, 2));
        for i in 0..128i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        for i in 128..160i64 {
            t.insert(i, i as Seq);
        }
        let got = t.range_collect_live(KeyRange::new(100, 140), 0);
        assert_eq!(got.len(), 41);
        // Filtering by expiry removes old ones.
        let live = t.range_collect_live(KeyRange::new(100, 140), 120);
        assert!(live.iter().all(|e| e.seq >= 120));
        assert_eq!(live.len(), 41 - 20);
    }

    #[test]
    fn routing_spans_partitions_for_wide_ranges() {
        let t = PimTree::new(config(1024, 1.0, 3));
        for i in 0..1024i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        // New inserts are routed across many partitions.
        for i in 0..1024i64 {
            t.insert(i, (1024 + i) as Seq);
        }
        assert!(t.partition_count() >= 8);
        let all = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), 0);
        assert_eq!(all.len(), 2048);
        // A narrow range returns exactly the matching entries from both
        // components.
        let narrow = t.range_collect_live(KeyRange::new(500, 509), 0);
        assert_eq!(narrow.len(), 20, "10 keys × 2 copies (TS + TI)");
    }

    #[test]
    fn merge_drops_expired_and_keeps_live() {
        let w = 128usize;
        let t = PimTree::new(config(w, 0.5, 2));
        let key_of = |i: i64| (i * 37) % 500;
        let n = 1024i64;
        for i in 0..n {
            t.insert(key_of(i), i as Seq);
            if t.needs_merge() {
                let earliest = (i as Seq + 1).saturating_sub(w as Seq);
                t.merge(earliest);
            }
        }
        let earliest = n as Seq - w as Seq;
        let live = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), earliest);
        assert_eq!(live.len(), w);
        let mut seqs: Vec<Seq> = live.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (earliest..n as Seq).collect::<Vec<_>>());
        for e in &live {
            assert_eq!(e.key, key_of(e.seq as i64));
        }
    }

    #[test]
    fn nonblocking_merge_phases_preserve_content() {
        let t = PimTree::new(config(256, 1.0, 2));
        for i in 0..256i64 {
            t.insert(i, i as Seq);
        }
        let before = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), 0);
        // Phase 1: prepare. Lookups still work against the old generation.
        let prepared = t.begin_merge(0);
        assert_eq!(prepared.new_len(), 256);
        let during = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), 0);
        assert_eq!(during.len(), before.len());
        assert_eq!(t.ts_len(), 0, "old generation still installed");
        // Phase 2: install.
        let report = t.install_merge(prepared);
        assert_eq!(report.new_len, 256);
        assert_eq!(t.ts_len(), 256);
        assert_eq!(t.ti_len(), 0);
        let after = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), 0);
        let mut b = before;
        let mut a = after;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn pending_inserts_after_install_are_visible() {
        let t = PimTree::new(config(64, 1.0, 2));
        for i in 0..64i64 {
            t.insert(i, i as Seq);
        }
        let prepared = t.begin_merge(0);
        // These two tuples arrive during phase 1; the engine buffers them and
        // re-applies them after installation.
        t.install_merge(prepared);
        t.insert(1000, 64);
        t.insert(1001, 65);
        let got = t.range_collect_live(KeyRange::new(1000, 1001), 0);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn insert_histogram_tracks_partition_skew() {
        let t = PimTree::new(config(512, 1.0, 3));
        for i in 0..512i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        t.reset_insert_histogram();
        // Insert only small keys: the histogram must be heavily skewed toward
        // the first partitions.
        for i in 0..200i64 {
            t.insert(i % 10, (512 + i) as Seq);
        }
        let hist = t.insert_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 200);
        assert!(hist[0] > 0);
        assert_eq!(
            *hist.last().unwrap(),
            0,
            "no inserts routed to the last partition"
        );
        // Histogram survives a merge (folded into the cumulative counters).
        t.merge(0);
        let hist_after = t.insert_histogram();
        assert_eq!(hist_after.iter().sum::<u64>(), 200);
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let t = Arc::new(PimTree::new(config(1 << 14, 1.0, 3)));
        // Pre-populate and merge so that several partitions exist.
        for i in 0..(1 << 14) as i64 {
            t.insert(i * 64, i as Seq);
        }
        t.merge(0);
        let threads = 8;
        let per_thread = 4000i64;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = ((tid * per_thread + i) * 97) % (64 << 14);
                    t.insert(key, (1 << 14) + (tid * per_thread + i) as Seq);
                    if i % 13 == 0 {
                        let _ = t.range_collect_live(KeyRange::new(key - 100, key + 100), 0);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.ti_len(), (threads * per_thread) as usize);
        let all = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), 0);
        assert_eq!(all.len(), (1 << 14) + (threads * per_thread) as usize);
    }

    #[test]
    fn batched_probe_matches_scalar_on_both_components() {
        let t = PimTree::new(config(512, 1.0, 2));
        // TS from the merge, TI from post-merge inserts, duplicates in both.
        for i in 0..512i64 {
            t.insert((i * 3) % 700, i as Seq);
        }
        t.merge(0);
        for i in 512..700i64 {
            t.insert((i * 3) % 700, i as Seq);
        }
        let ranges = [
            KeyRange::new(100, 160),
            KeyRange::new(100, 160),   // duplicate of the first
            KeyRange::new(-50, -1),    // below the domain
            KeyRange::new(5000, 6000), // above the domain
            KeyRange::new(0, 2000),    // everything
            KeyRange::point(300),
        ];
        let mut counters = ProbeCounters::default();
        let mut batched: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
        for dist in [0usize, 1, 4, 64] {
            for v in batched.iter_mut() {
                v.clear();
            }
            let probe = ProbeConfig::default().with_prefetch_dist(dist);
            t.probe_batch(&ranges, &probe, &mut counters, |i, e| batched[i].push(e));
            for (range, got) in ranges.iter().zip(&batched) {
                let mut scalar = Vec::new();
                t.range_for_each(*range, |e| scalar.push(e));
                assert_eq!(got, &scalar, "range {range:?}, prefetch_dist {dist}");
            }
        }
        assert_eq!(counters.batches, 4);
        assert_eq!(counters.batched_keys, 4 * ranges.len() as u64);
        assert_eq!(counters.max_batch, ranges.len() as u64);
        assert_eq!(counters.dedup_hits, 4, "one duplicate range per call");
        assert!(
            counters.nodes_prefetched > 0,
            "distances > 0 must prefetch nodes of the populated TS"
        );
        assert_eq!(
            counters.interleaved_batches, 0,
            "interleave 0 never takes the ring"
        );
        // Interleaved descents answer the same batch identically on both
        // components, and record their work.
        for interleave in [2usize, 4, 8] {
            let mut counters = ProbeCounters::default();
            for v in batched.iter_mut() {
                v.clear();
            }
            let probe = ProbeConfig::default().with_interleave(interleave);
            t.probe_batch(&ranges, &probe, &mut counters, |i, e| batched[i].push(e));
            for (range, got) in ranges.iter().zip(&batched) {
                let mut scalar = Vec::new();
                t.range_for_each(*range, |e| scalar.push(e));
                assert_eq!(got, &scalar, "range {range:?}, interleave {interleave}");
            }
            assert_eq!(counters.interleaved_batches, 1);
            assert_eq!(
                counters.interleaved_descents,
                ranges.len() as u64 - 1,
                "the duplicate range shares one descent"
            );
            assert!(counters.interleave_steps >= counters.interleaved_descents);
            assert_eq!(
                counters.simd_node_searches + counters.scalar_node_searches,
                counters.interleave_steps,
                "each ring step performs exactly one node search"
            );
        }
    }

    #[test]
    fn batched_ti_probe_locks_each_partition_once_per_batch() {
        // A populated TS (many partitions) plus a populated TI, probed with
        // several wide, overlapping ranges: the partition-major TI path must
        // lock every partition at most once per batch while producing the
        // exact scalar result per range.
        let t = PimTree::new(config(2048, 1.0, 3));
        for i in 0..2048i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        assert!(t.partition_count() > 4);
        for i in 2048..2560i64 {
            t.insert(i - 2048, i as Seq);
        }
        let ranges = [
            KeyRange::new(0, 600),
            KeyRange::new(100, 700), // overlaps the first range's partitions
            KeyRange::new(100, 700), // duplicate: shares the first's descent
            KeyRange::new(1500, 2047), // disjoint partition interval
            KeyRange::point(650),
        ];
        let mut counters = ProbeCounters::default();
        let mut batched: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
        t.probe_batch(&ranges, &ProbeConfig::default(), &mut counters, |i, e| {
            batched[i].push(e)
        });
        for (range, got) in ranges.iter().zip(&batched) {
            let mut scalar = Vec::new();
            t.range_for_each(*range, |e| scalar.push(e));
            assert_eq!(got, &scalar, "range {range:?}");
        }
        assert!(counters.ti_range_visits > 0);
        assert!(
            counters.ti_partition_locks <= t.partition_count() as u64,
            "each partition is locked at most once per batch: {} locks, {} partitions",
            counters.ti_partition_locks,
            t.partition_count()
        );
        assert!(
            counters.ti_partition_locks < counters.ti_range_visits,
            "overlapping ranges must share partition locks ({} locks / {} visits)",
            counters.ti_partition_locks,
            counters.ti_range_visits
        );
    }

    #[test]
    fn scalar_ranges_probe_matches_scalar_and_batches_partition_locks() {
        // Mirror of `batched_ti_probe_locks_each_partition_once_per_batch`
        // for the scalar path: per-range descents, but the TI partitions are
        // still locked once per call.
        let t = PimTree::new(config(2048, 1.0, 3));
        for i in 0..2048i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        assert!(t.partition_count() > 4);
        for i in 2048..2560i64 {
            t.insert(i - 2048, i as Seq);
        }
        let ranges = [
            KeyRange::new(0, 600),
            KeyRange::new(100, 700),
            KeyRange::new(100, 700),   // duplicate: no dedup on this path
            KeyRange::new(1500, 2047), // disjoint partition interval
            KeyRange::new(-50, -1),    // below the domain
            KeyRange::point(650),
        ];
        let mut counters = ProbeCounters::default();
        let mut got: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
        t.probe_ranges_scalar(&ranges, &ProbeConfig::scalar(), &mut counters, |i, e| {
            got[i].push(e)
        });
        for (range, entries) in ranges.iter().zip(&got) {
            let mut scalar = Vec::new();
            t.range_for_each(*range, |e| scalar.push(e));
            assert_eq!(entries, &scalar, "range {range:?}");
        }
        // Interleaved start resolution answers the scalar path identically,
        // range for range, in the same emission order.
        for interleave in [2usize, 8] {
            let mut il_counters = ProbeCounters::default();
            let mut il: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
            let probe = ProbeConfig::scalar().with_interleave(interleave);
            t.probe_ranges_scalar(&ranges, &probe, &mut il_counters, |i, e| il[i].push(e));
            assert_eq!(il, got, "interleave {interleave}");
            assert_eq!(il_counters.interleaved_batches, 1);
            assert_eq!(il_counters.interleaved_descents, ranges.len() as u64);
        }
        assert!(
            counters.ti_partition_locks <= t.partition_count() as u64,
            "each partition locked at most once per call"
        );
        assert!(
            counters.ti_partition_locks < counters.ti_range_visits,
            "overlapping ranges must share partition locks ({} locks / {} visits)",
            counters.ti_partition_locks,
            counters.ti_range_visits
        );
        assert_eq!(counters.batches, 0, "the scalar path never group-descends");
        assert_eq!(counters.dedup_hits, 0);
        assert_eq!(counters.nodes_prefetched, 0);
    }

    #[test]
    fn scalar_ranges_probe_degenerate_batches() {
        let t = PimTree::new(config(256, 1.0, 2));
        for i in 0..100i64 {
            t.insert(i, i as Seq);
        }
        let mut counters = ProbeCounters::default();
        t.probe_ranges_scalar(&[], &ProbeConfig::scalar(), &mut counters, |_, _| {
            panic!("empty batch must not call back")
        });
        // A batch of one takes the plain scalar probe (nothing to batch).
        let mut single = Vec::new();
        t.probe_ranges_scalar(
            &[KeyRange::new(10, 20)],
            &ProbeConfig::scalar(),
            &mut counters,
            |i, e| {
                assert_eq!(i, 0);
                single.push(e);
            },
        );
        assert_eq!(single.len(), 11);
        assert_eq!(counters.ti_partition_locks, 0, "batch of one is unbatched");
    }

    #[test]
    fn batched_probe_on_empty_tree_and_empty_batch() {
        let t = PimTree::new(config(64, 1.0, 2));
        let mut counters = ProbeCounters::default();
        t.probe_batch(&[], &ProbeConfig::default(), &mut counters, |_, _| {
            panic!("empty batch must not call back")
        });
        assert_eq!(counters.batches, 0, "empty batches are not counted");
        t.probe_batch(
            &[KeyRange::new(0, 100)],
            &ProbeConfig::default(),
            &mut counters,
            |_, _| panic!("empty tree must not call back"),
        );
        assert_eq!(counters.batches, 1);
        assert_eq!(counters.nodes_prefetched, 0);
    }

    #[test]
    fn batched_probe_before_first_merge_sees_only_ti() {
        // Everything still lives in the mutable component (TS is empty).
        let t = PimTree::new(config(256, 1.0, 2));
        for i in 0..100i64 {
            t.insert(i, i as Seq);
        }
        let ranges = [KeyRange::new(10, 20), KeyRange::new(95, 200)];
        let mut counters = ProbeCounters::default();
        let mut got: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
        t.probe_batch(&ranges, &ProbeConfig::default(), &mut counters, |i, e| {
            got[i].push(e)
        });
        assert_eq!(got[0].len(), 11);
        assert_eq!(got[1].len(), 5);
        for (range, entries) in ranges.iter().zip(&got) {
            let mut scalar = Vec::new();
            t.range_for_each(*range, |e| scalar.push(e));
            assert_eq!(entries, &scalar);
        }
    }

    #[test]
    fn probe_with_breakdown_matches_plain_probe() {
        let t = PimTree::new(config(256, 1.0, 2));
        for i in 0..256i64 {
            t.insert(i * 3, i as Seq);
        }
        t.merge(0);
        for i in 256..300i64 {
            t.insert(i * 3, i as Seq);
        }
        let range = KeyRange::new(100, 800);
        let mut breakdown = CostBreakdown::new();
        let mut a = t.probe_with_breakdown(range, 10, &mut breakdown);
        let mut b = t.range_collect_live(range, 10);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(breakdown.count(Step::Search) == 1 && breakdown.count(Step::Scan) == 1);
    }

    #[test]
    fn footprint_reports_all_components() {
        let t = PimTree::new(config(4096, 1.0, 3));
        for i in 0..4096i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        for i in 0..512i64 {
            t.insert(i, (4096 + i) as Seq);
        }
        let f = t.footprint();
        assert!(f.ts_leaf_bytes > 0);
        assert!(f.ts_inner_bytes > 0);
        assert!(f.ti_bytes > 0);
        assert_eq!(f.entries, 4096 + 512);
        assert_eq!(f.partitions, t.partition_count());
        assert!(f.total_bytes() > f.ts_bytes());
    }

    #[test]
    fn higher_insertion_depth_yields_more_partitions() {
        let make = |di: usize| {
            let t = PimTree::new(config(4096, 1.0, di));
            for i in 0..4096i64 {
                t.insert(i, i as Seq);
            }
            t.merge(0);
            t.partition_count()
        };
        let p1 = make(1);
        let p2 = make(2);
        let p3 = make(3);
        assert!(p1 < p2 && p2 <= p3, "partitions: {p1}, {p2}, {p3}");
    }

    #[test]
    #[should_panic(expected = "invalid PIM-Tree configuration")]
    fn invalid_config_rejected() {
        let _ = PimTree::new(PimConfig::for_window(16).with_merge_ratio(0.0));
    }
}
