//! IM-Tree and PIM-Tree: the paper's two-stage sliding-window indexes.
//!
//! Both structures combine
//!
//! * a **mutable component** `TI` (one or more classic B+-Trees) that absorbs
//!   every newly arrived tuple, and
//! * an **immutable component** `TS` (a CSS-Tree) that holds the bulk of the
//!   window and is only ever rebuilt wholesale,
//!
//! with a periodic **merge**: when `TI` reaches `m · w` tuples (merge ratio
//! `m`, window size `w`), the live tuples of `TS` and `TI` are combined into a
//! fresh `TS` and the mutable component is reset. Expired tuples are never
//! deleted individually — they are filtered during lookups and dropped in bulk
//! by the merge, which is the coarse-grained disposal that gives the design
//! its update efficiency (§3.2).
//!
//! The [`PimTree`] extends the [`ImTree`] by splitting `TI` into one
//! sub-B+-Tree per inner node of `TS` at the *insertion depth* `DI`. Each
//! partition has its own lock, `TS` is immutable and therefore read without
//! any synchronisation, and the partition ranges adapt to the data
//! distribution at every merge (§3.3).
//!
//! Merge execution comes in two flavours (§4.2): a simple blocking merge, and
//! a two-phase non-blocking merge whose building blocks
//! ([`PimTree::begin_merge`] / [`PimTree::install_merge`]) are driven by the
//! parallel join engine in the `pimtree-join` crate.

pub mod footprint;
pub mod im;
pub mod merge;
pub mod pim;

pub use footprint::PimFootprint;
pub use im::ImTree;
pub use merge::MergeReport;
pub use pim::{PimTree, PreparedMerge};
