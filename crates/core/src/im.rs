//! The In-memory Merge-Tree (IM-Tree, §3.2): the unpartitioned, single-
//! threaded two-stage index.

use std::time::Instant;

use pimtree_btree::{BTreeIndex, Entry};
use pimtree_common::{CostBreakdown, Key, KeyRange, PimConfig, Seq, Step};
use pimtree_css::CssTree;

use crate::footprint::PimFootprint;
use crate::merge::{build_ts, merge_live, MergeReport};

/// The In-memory Merge-Tree: a mutable B+-Tree `TI` for new tuples plus an
/// immutable CSS-Tree `TS` for the bulk of the window, merged whenever `TI`
/// reaches `m · w` entries.
#[derive(Debug)]
pub struct ImTree {
    config: PimConfig,
    ti: BTreeIndex,
    ts: CssTree,
}

impl ImTree {
    /// Creates an empty IM-Tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PimConfig) -> Self {
        config.validate().expect("invalid IM-Tree configuration");
        ImTree {
            ti: BTreeIndex::with_fanout(config.btree_fanout),
            ts: build_ts(&config, Vec::new()),
            config,
        }
    }

    /// The configuration this tree was created with.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Entries currently held by the mutable component.
    pub fn ti_len(&self) -> usize {
        self.ti.len()
    }

    /// Entries currently held by the immutable component (live and expired).
    pub fn ts_len(&self) -> usize {
        self.ts.len()
    }

    /// Total indexed entries (live and expired).
    pub fn len(&self) -> usize {
        self.ti_len() + self.ts_len()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a newly arrived tuple into the mutable component.
    pub fn insert(&mut self, key: Key, seq: Seq) {
        self.ti.insert(key, seq);
    }

    /// Whether the mutable component has reached the merge threshold `m · w`.
    pub fn needs_merge(&self) -> bool {
        self.ti.len() >= self.config.merge_threshold()
    }

    /// Merges `TI` into `TS`, dropping entries whose sequence number lies
    /// before `earliest_live`.
    pub fn merge(&mut self, earliest_live: Seq) -> MergeReport {
        let start = Instant::now();
        let ti_entries = self.ti.drain_sorted();
        let (merged, kept_from_ts, dropped_expired, from_ti) =
            merge_live(&self.ts, &ti_entries, earliest_live);
        let new_len = merged.len();
        self.ts = build_ts(&self.config, merged);
        MergeReport {
            duration: start.elapsed(),
            kept_from_ts,
            dropped_expired,
            from_ti,
            new_len,
            partitions: 1,
        }
    }

    /// Convenience: insert and merge if the threshold has been reached.
    /// Returns the merge report if a merge happened.
    pub fn insert_and_maintain(
        &mut self,
        key: Key,
        seq: Seq,
        earliest_live: Seq,
    ) -> Option<MergeReport> {
        self.insert(key, seq);
        if self.needs_merge() {
            Some(self.merge(earliest_live))
        } else {
            None
        }
    }

    /// Calls `f` for every indexed entry whose key lies in `range`, including
    /// entries of expired tuples (the caller filters by sequence number, as
    /// the join operator has to do anyway).
    pub fn range_for_each<F: FnMut(Entry)>(&self, range: KeyRange, mut f: F) {
        self.ts.range_for_each(range, &mut f);
        self.ti.range_for_each(range, &mut f);
    }

    /// Calls `f` for every *live* entry (sequence number at or after
    /// `earliest_live`) whose key lies in `range`.
    pub fn range_live<F: FnMut(Entry)>(&self, range: KeyRange, earliest_live: Seq, mut f: F) {
        self.range_for_each(range, |e| {
            if e.seq >= earliest_live {
                f(e);
            }
        });
    }

    /// Collects every live entry whose key lies in `range`.
    pub fn range_collect_live(&self, range: KeyRange, earliest_live: Seq) -> Vec<Entry> {
        let mut out = Vec::new();
        self.range_live(range, earliest_live, |e| out.push(e));
        out
    }

    /// Instrumented probe used by the per-step cost experiment (Figure 9b):
    /// separates index traversal ("search") from leaf scanning ("scan").
    pub fn probe_with_breakdown(
        &self,
        range: KeyRange,
        earliest_live: Seq,
        breakdown: &mut CostBreakdown,
    ) -> Vec<Entry> {
        let search_start = Instant::now();
        let ts_pos = self.ts.lower_bound_key(range.lo);
        let ti_first = self.ti.first_at_or_after(range.lo);
        breakdown.record(Step::Search, search_start.elapsed());

        let scan_start = Instant::now();
        let mut out = Vec::new();
        let mut pos = ts_pos;
        while pos < self.ts.len() {
            let e = self.ts.entry_at(pos);
            if e.key > range.hi {
                break;
            }
            if e.seq >= earliest_live {
                out.push(e);
            }
            pos += 1;
        }
        if ti_first.is_some() {
            self.ti.range_for_each(range, |e| {
                if e.seq >= earliest_live {
                    out.push(e);
                }
            });
        }
        breakdown.record(Step::Scan, scan_start.elapsed());
        out
    }

    /// Memory footprint broken down by component (Figure 11a). The merge
    /// buffer is sized for the worst case: a full rebuild of `TS` plus `TI`.
    pub fn footprint(&self) -> PimFootprint {
        let ts = self.ts.stats();
        let ti = self.ti.stats();
        let entry = std::mem::size_of::<Entry>();
        PimFootprint {
            ts_leaf_bytes: ts.leaf_bytes,
            ts_inner_bytes: ts.inner_bytes,
            ti_bytes: ti.total_bytes(),
            merge_buffer_bytes: (ts.entries + ti.entries) * entry,
            entries: self.len(),
            partitions: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(w: usize, m: f64) -> PimConfig {
        PimConfig::for_window(w).with_merge_ratio(m)
    }

    #[test]
    fn inserts_go_to_ti_until_merge() {
        let mut t = ImTree::new(config(100, 0.25));
        for i in 0..24i64 {
            t.insert(i, i as Seq);
        }
        assert_eq!(t.ti_len(), 24);
        assert_eq!(t.ts_len(), 0);
        assert!(!t.needs_merge());
        t.insert(24, 24);
        assert!(t.needs_merge());
        let report = t.merge(0);
        assert_eq!(report.from_ti, 25);
        assert_eq!(report.new_len, 25);
        assert_eq!(t.ti_len(), 0);
        assert_eq!(t.ts_len(), 25);
    }

    #[test]
    fn merge_drops_expired() {
        let mut t = ImTree::new(config(10, 1.0));
        for i in 0..10i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        for i in 10..20i64 {
            t.insert(i, i as Seq);
        }
        // Window of 10: live seqs are 10..20.
        let report = t.merge(10);
        assert_eq!(report.dropped_expired, 10);
        assert_eq!(report.kept_from_ts, 0);
        assert_eq!(report.from_ti, 10);
        assert_eq!(t.ts_len(), 10);
    }

    #[test]
    fn lookups_see_both_components_and_filter_expired() {
        let mut t = ImTree::new(config(8, 0.5));
        // Old tuples (will expire), merged into TS.
        for i in 0..4i64 {
            t.insert(100 + i, i as Seq);
        }
        t.merge(0);
        // New tuples stay in TI.
        for i in 4..8i64 {
            t.insert(100 + i, i as Seq);
        }
        let all = t.range_collect_live(KeyRange::new(100, 107), 0);
        assert_eq!(all.len(), 8);
        // Declare the first 2 tuples expired.
        let live = t.range_collect_live(KeyRange::new(100, 107), 2);
        assert_eq!(live.len(), 6);
        assert!(live.iter().all(|e| e.seq >= 2));
    }

    #[test]
    fn insert_and_maintain_merges_at_threshold() {
        let mut t = ImTree::new(config(16, 0.25));
        let mut merges = 0;
        for i in 0..64i64 {
            if t.insert_and_maintain(i, i as Seq, (i as Seq).saturating_sub(16))
                .is_some()
            {
                merges += 1;
            }
        }
        assert_eq!(merges, 16, "64 inserts at threshold 4 trigger 16 merges");
        // The index never holds more than w live + m*w recent-expired entries.
        assert!(t.len() <= 16 + 4 + 4);
    }

    #[test]
    fn sliding_window_contents_are_exact_after_each_merge() {
        let w = 64usize;
        let mut t = ImTree::new(config(w, 0.5));
        let key_of = |i: i64| (i * 37) % 1000;
        let n = 1000i64;
        for i in 0..n {
            let earliest = (i as Seq + 1).saturating_sub(w as Seq);
            t.insert_and_maintain(key_of(i), i as Seq, earliest);
        }
        let earliest = n as Seq - w as Seq;
        let live = t.range_collect_live(KeyRange::new(i64::MIN, i64::MAX), earliest);
        assert_eq!(
            live.len(),
            w,
            "exactly one window of live tuples is visible"
        );
        let mut seqs: Vec<Seq> = live.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, ((n as Seq - w as Seq)..n as Seq).collect::<Vec<_>>());
        for e in &live {
            assert_eq!(e.key, key_of(e.seq as i64));
        }
    }

    #[test]
    fn probe_with_breakdown_returns_same_results() {
        let mut t = ImTree::new(config(32, 0.5));
        for i in 0..32i64 {
            t.insert(i * 3, i as Seq);
        }
        t.merge(0);
        for i in 32..48i64 {
            t.insert(i * 3, i as Seq);
        }
        let range = KeyRange::new(30, 90);
        let mut breakdown = CostBreakdown::new();
        let a = t.probe_with_breakdown(range, 5, &mut breakdown);
        let b = t.range_collect_live(range, 5);
        let mut a_sorted = a.clone();
        a_sorted.sort();
        let mut b_sorted = b.clone();
        b_sorted.sort();
        assert_eq!(a_sorted, b_sorted);
        assert_eq!(breakdown.count(Step::Search), 1);
        assert_eq!(breakdown.count(Step::Scan), 1);
    }

    #[test]
    fn footprint_accounts_for_all_components() {
        let mut t = ImTree::new(config(1 << 12, 1.0));
        for i in 0..(1 << 12) as i64 {
            t.insert(i, i as Seq);
        }
        t.merge(0);
        for i in 0..100i64 {
            t.insert(i, (4096 + i) as Seq);
        }
        let f = t.footprint();
        assert!(f.ts_leaf_bytes > 0);
        assert!(f.ts_inner_bytes > 0);
        assert!(f.ti_bytes > 0);
        assert!(f.merge_buffer_bytes >= f.ts_leaf_bytes);
        assert_eq!(f.entries, t.len());
        assert_eq!(f.partitions, 1);
    }

    #[test]
    #[should_panic(expected = "invalid IM-Tree configuration")]
    fn invalid_config_rejected() {
        let _ = ImTree::new(PimConfig::for_window(0));
    }
}
