//! Memory-footprint reporting for the two-stage trees (Figure 11a).

/// Breakdown of the memory required by an IM-Tree / PIM-Tree instance.
///
/// The paper's Figure 11a splits the PIM-Tree footprint into the
/// search-efficient component `TS`, the insert-efficient component `TI` and
/// the buffer needed while a non-blocking merge builds the next `TS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PimFootprint {
    /// Payload bytes of the immutable component's leaf array.
    pub ts_leaf_bytes: usize,
    /// Payload bytes of the immutable component's inner key array.
    pub ts_inner_bytes: usize,
    /// Payload bytes of the mutable component (all partitions).
    pub ti_bytes: usize,
    /// Bytes of the merge buffer: while a (non-blocking) merge is running, a
    /// second sorted array of up to `(1 + m) · w` entries coexists with the
    /// live tree.
    pub merge_buffer_bytes: usize,
    /// Number of entries currently indexed.
    pub entries: usize,
    /// Number of mutable partitions.
    pub partitions: usize,
}

impl PimFootprint {
    /// Total bytes across all components.
    pub fn total_bytes(&self) -> usize {
        self.ts_leaf_bytes + self.ts_inner_bytes + self.ti_bytes + self.merge_buffer_bytes
    }

    /// Bytes of the immutable component only.
    pub fn ts_bytes(&self) -> usize {
        self.ts_leaf_bytes + self.ts_inner_bytes
    }

    /// Total bytes in mebibytes, the unit used by Figure 11a.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_sums() {
        let f = PimFootprint {
            ts_leaf_bytes: 1000,
            ts_inner_bytes: 100,
            ti_bytes: 500,
            merge_buffer_bytes: 1600,
            entries: 100,
            partitions: 8,
        };
        assert_eq!(f.ts_bytes(), 1100);
        assert_eq!(f.total_bytes(), 3200);
        assert!((f.total_mib() - 3200.0 / 1048576.0).abs() < 1e-12);
    }
}
