//! The simulated NUMA topology and access accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Whether a memory access hit the accessing node's local memory or a remote
/// node's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The touched data is homed on the accessing node.
    Local,
    /// The touched data is homed on another node (interconnect traversal).
    Remote,
}

/// A simulated NUMA machine: `nodes` memory nodes with uniform local access
/// cost and a higher remote access cost (in abstract cost units, typically
/// read as nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaTopology {
    /// Number of memory nodes (sockets).
    pub nodes: usize,
    /// Cost charged per access to node-local memory.
    pub local_cost: u64,
    /// Cost charged per access to a remote node's memory.
    pub remote_cost: u64,
}

impl NumaTopology {
    /// A typical two-socket server: remote accesses cost about 1.7x local.
    pub fn two_socket() -> Self {
        NumaTopology {
            nodes: 2,
            local_cost: 90,
            remote_cost: 150,
        }
    }

    /// A four-socket server with a relatively more expensive interconnect.
    pub fn four_socket() -> Self {
        NumaTopology {
            nodes: 4,
            local_cost: 90,
            remote_cost: 200,
        }
    }

    /// Creates a custom topology.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the remote cost is smaller than the local
    /// cost.
    pub fn new(nodes: usize, local_cost: u64, remote_cost: u64) -> Self {
        assert!(nodes > 0, "a NUMA topology needs at least one node");
        assert!(
            remote_cost >= local_cost,
            "remote accesses cannot be cheaper than local ones"
        );
        NumaTopology {
            nodes,
            local_cost,
            remote_cost,
        }
    }

    /// Cost of one access of the given kind.
    pub fn cost(&self, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Local => self.local_cost,
            AccessKind::Remote => self.remote_cost,
        }
    }
}

/// Thread-safe counters of simulated local and remote memory accesses.
#[derive(Debug, Default)]
pub struct TrafficAccount {
    local: AtomicU64,
    remote: AtomicU64,
}

impl TrafficAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` accesses from `from_node` to data homed on `home_node`.
    /// Returns the kind that was charged.
    pub fn record(&self, from_node: usize, home_node: usize, count: u64) -> AccessKind {
        if from_node == home_node {
            self.local.fetch_add(count, Ordering::Relaxed);
            AccessKind::Local
        } else {
            self.remote.fetch_add(count, Ordering::Relaxed);
            AccessKind::Remote
        }
    }

    /// Number of local accesses recorded.
    pub fn local(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Number of remote accesses recorded.
    pub fn remote(&self) -> u64 {
        self.remote.load(Ordering::Relaxed)
    }

    /// Fraction of accesses that crossed the interconnect (0 when nothing was
    /// recorded).
    pub fn remote_fraction(&self) -> f64 {
        let l = self.local() as f64;
        let r = self.remote() as f64;
        if l + r == 0.0 {
            0.0
        } else {
            r / (l + r)
        }
    }

    /// Total simulated access cost under `topology`.
    pub fn total_cost(&self, topology: &NumaTopology) -> u64 {
        self.local() * topology.local_cost + self.remote() * topology.remote_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_topologies_are_sane() {
        let two = NumaTopology::two_socket();
        assert_eq!(two.nodes, 2);
        assert!(two.remote_cost > two.local_cost);
        let four = NumaTopology::four_socket();
        assert_eq!(four.nodes, 4);
        assert!(four.cost(AccessKind::Remote) > four.cost(AccessKind::Local));
    }

    #[test]
    fn accounting_distinguishes_local_and_remote() {
        let account = TrafficAccount::new();
        assert_eq!(account.record(0, 0, 10), AccessKind::Local);
        assert_eq!(account.record(0, 1, 5), AccessKind::Remote);
        assert_eq!(account.record(1, 1, 5), AccessKind::Local);
        assert_eq!(account.local(), 15);
        assert_eq!(account.remote(), 5);
        assert!((account.remote_fraction() - 0.25).abs() < 1e-12);
        let topo = NumaTopology::new(2, 100, 200);
        assert_eq!(account.total_cost(&topo), 15 * 100 + 5 * 200);
    }

    #[test]
    fn empty_account_has_zero_remote_fraction() {
        let account = TrafficAccount::new();
        assert_eq!(account.remote_fraction(), 0.0);
        assert_eq!(account.total_cost(&NumaTopology::two_socket()), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_topology_rejected() {
        let _ = NumaTopology::new(0, 10, 20);
    }

    #[test]
    #[should_panic(expected = "cannot be cheaper")]
    fn cheaper_remote_rejected() {
        let _ = NumaTopology::new(2, 100, 50);
    }
}
