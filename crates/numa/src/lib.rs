//! Simulated NUMA substrate for PIM-Tree stream joins.
//!
//! The paper's conclusion names a parallel IBWJ for non-uniform memory access
//! (NUMA) architectures as future work and calls out two missing pieces:
//! a range-partitioning technique that balances the workload across memory
//! nodes by considering *both* input and output tuples, and a repartitioning
//! scheme that limits the data transferred between nodes when the value
//! distribution drifts.
//!
//! Real NUMA placement needs `libnuma`/`numactl` and a multi-socket host,
//! neither of which is available (or allowed as a dependency) here, so this
//! crate follows the substitution rule: it models a NUMA machine in software.
//! Each simulated node owns a contiguous key range with its own PIM-Tree, and
//! every index access is charged a local or remote cost depending on whether
//! the accessing node owns the touched range. The partitioning and
//! repartitioning algorithms — the actual research questions — are real; only
//! the memory-latency feedback is simulated.
//!
//! * [`topology`] — the simulated topology and local/remote access accounting;
//! * [`partition`] — workload-aware range partitioning over key samples and
//!   the drift-driven repartitioning scheme;
//! * [`join`] — a NUMA-partitioned window band join built from one PIM-Tree
//!   per node, validated against the brute-force reference.

pub mod join;
pub mod partition;
pub mod topology;

pub use join::{reference_band_join, NumaPartitionedJoin, PlacementStrategy};
pub use partition::{
    handoff_steps, DriftMonitor, HandoffStep, PartitionLoad, RangePartitioner, RepartitionPlan,
};
pub use topology::{AccessKind, NumaTopology, TrafficAccount};
