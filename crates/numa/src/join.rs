//! A NUMA-partitioned window band join over simulated memory nodes.
//!
//! Every node owns one contiguous key interval per stream, with its own
//! PIM-Tree and window segment homed in that node's memory. An arriving tuple
//! is handled by its home node (the node owning its key): the insert is a
//! local access, while the probe touches every node whose interval overlaps
//! the band `[key - diff, key + diff]` — usually one node, two when the band
//! straddles a boundary — and is charged local or remote cost accordingly.
//!
//! The operator exists to evaluate *placement policies*, not to parallelise
//! the join itself (the shared-memory parallel engine lives in
//! `pimtree-join`): it compares the paper's proposed workload-aware range
//! partitioning against context-insensitive (round-robin) placement and
//! quantifies the interconnect traffic each incurs.

use pimtree_common::{BandPredicate, JoinResult, PimConfig, Tuple};
use pimtree_core::PimTree;

use crate::partition::RangePartitioner;
use crate::topology::{NumaTopology, TrafficAccount};

/// How tuples are assigned to memory nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// The paper's proposal: contiguous key ranges per node, so a band probe
    /// touches at most two nodes.
    RangePartitioned,
    /// Context-insensitive placement in arrival order; every probe must visit
    /// every node (the NUMA analogue of round-robin window partitioning,
    /// §2.2.3).
    RoundRobin,
}

/// Per-node, per-stream state.
#[derive(Debug)]
struct NodeState {
    indexes: [PimTree; 2],
    inserts: u64,
    outputs: u64,
}

/// The NUMA-partitioned band join.
#[derive(Debug)]
pub struct NumaPartitionedJoin {
    topology: NumaTopology,
    strategy: PlacementStrategy,
    partitioner: RangePartitioner,
    window_size: usize,
    predicate: BandPredicate,
    nodes: Vec<NodeState>,
    traffic: TrafficAccount,
    /// Tuples appended so far per stream (drives count-based expiry).
    arrived: [u64; 2],
    results: u64,
    round_robin_cursor: usize,
}

impl NumaPartitionedJoin {
    /// Creates the operator.
    ///
    /// `partitioner` decides key ownership when the strategy is
    /// [`PlacementStrategy::RangePartitioned`]; it is ignored for round-robin
    /// placement. `w` is the per-stream count-based window length.
    ///
    /// # Panics
    ///
    /// Panics if the partitioner's node count does not match the topology, or
    /// if `w` is zero.
    pub fn new(
        topology: NumaTopology,
        strategy: PlacementStrategy,
        partitioner: RangePartitioner,
        w: usize,
        predicate: BandPredicate,
    ) -> Self {
        Self::with_pim_config(
            topology,
            strategy,
            partitioner,
            w,
            predicate,
            PimConfig::for_window(w),
        )
    }

    /// Creates the operator with an explicit per-node PIM-Tree configuration.
    pub fn with_pim_config(
        topology: NumaTopology,
        strategy: PlacementStrategy,
        partitioner: RangePartitioner,
        w: usize,
        predicate: BandPredicate,
        pim: PimConfig,
    ) -> Self {
        assert!(w > 0, "window size must be positive");
        assert_eq!(
            partitioner.nodes(),
            topology.nodes,
            "partitioner and topology disagree on the node count"
        );
        let nodes = (0..topology.nodes)
            .map(|_| NodeState {
                indexes: [PimTree::new(pim), PimTree::new(pim)],
                inserts: 0,
                outputs: 0,
            })
            .collect();
        NumaPartitionedJoin {
            topology,
            strategy,
            partitioner,
            window_size: w,
            predicate,
            nodes,
            traffic: TrafficAccount::new(),
            arrived: [0, 0],
            results: 0,
            round_robin_cursor: 0,
        }
    }

    /// The simulated interconnect traffic accumulated so far.
    pub fn traffic(&self) -> &TrafficAccount {
        &self.traffic
    }

    /// Total simulated memory-access cost so far.
    pub fn total_cost(&self) -> u64 {
        self.traffic.total_cost(&self.topology)
    }

    /// Number of result pairs produced so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Observed per-node load `(inserts, outputs)` — the input of the
    /// repartitioning scheme.
    pub fn node_loads(&self) -> Vec<(u64, u64)> {
        self.nodes.iter().map(|n| (n.inserts, n.outputs)).collect()
    }

    /// Relative load imbalance across nodes (1.0 = perfectly balanced), where
    /// load counts inserts plus produced results, as the paper prescribes.
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> = self.nodes.iter().map(|n| n.inserts + n.outputs).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / loads.len() as f64;
        loads.iter().map(|&l| l as f64 / ideal).fold(0.0, f64::max)
    }

    /// Adopts a new range partitioning (the output of
    /// [`RangePartitioner::repartition`]). Existing indexed tuples stay where
    /// they are — like the paper's own partition adaptation, ownership changes
    /// only affect newly arriving tuples — so no bulk migration is simulated
    /// here beyond the moved-fraction estimate the plan already carries.
    pub fn adopt_partitioner(&mut self, partitioner: RangePartitioner) {
        assert_eq!(partitioner.nodes(), self.topology.nodes);
        self.partitioner = partitioner;
    }

    fn home_node(&mut self, tuple: Tuple) -> usize {
        match self.strategy {
            PlacementStrategy::RangePartitioned => self.partitioner.node_of(tuple.key),
            PlacementStrategy::RoundRobin => {
                let node = self.round_robin_cursor;
                self.round_robin_cursor = (self.round_robin_cursor + 1) % self.topology.nodes;
                node
            }
        }
    }

    /// Processes one arriving tuple, appending its results (ordered by the
    /// matched tuple's arrival) to `out`.
    pub fn process(&mut self, tuple: Tuple, out: &mut Vec<JoinResult>) {
        let own = tuple.side.index();
        let other = tuple.side.opposite().index();
        let home = self.home_node(tuple);
        let range = self.predicate.probe_range(tuple.key);
        let earliest_live = self.arrived[other].saturating_sub(self.window_size as u64);

        // Probe every node whose interval can hold matches.
        let (first, last) = match self.strategy {
            PlacementStrategy::RangePartitioned => {
                self.partitioner.nodes_overlapping(range.lo, range.hi)
            }
            PlacementStrategy::RoundRobin => (0, self.topology.nodes - 1),
        };
        let before = out.len();
        let matched_side = tuple.side.opposite();
        for node in first..=last {
            let mut touched = 0u64;
            self.nodes[node].indexes[other].range_live(range, earliest_live, |e| {
                touched += 1;
                out.push(JoinResult::new(
                    tuple,
                    Tuple::new(matched_side, e.seq, e.key),
                ));
            });
            // Charge the index descent plus the touched matches.
            self.traffic.record(home, node, 1 + touched);
            self.nodes[node].outputs += touched;
        }
        out[before..].sort_by_key(|r| r.matched.seq);
        self.results += (out.len() - before) as u64;

        // Insert into the home node's index for the own stream; expired
        // tuples are dropped lazily at merge time.
        self.arrived[own] += 1;
        let node = &mut self.nodes[home];
        node.indexes[own].insert(tuple.key, tuple.seq);
        node.inserts += 1;
        self.traffic.record(home, home, 1);
        if node.indexes[own].needs_merge() {
            let earliest_own = self.arrived[own].saturating_sub(self.window_size as u64);
            node.indexes[own].merge(earliest_own);
        }
    }

    /// Runs the operator over a tuple sequence and returns all results.
    pub fn run(&mut self, tuples: &[Tuple]) -> Vec<JoinResult> {
        let mut out = Vec::new();
        for &t in tuples {
            self.process(t, &mut out);
        }
        out
    }
}

/// Brute-force two-way band join used to validate the NUMA operator.
pub fn reference_band_join(
    tuples: &[Tuple],
    predicate: BandPredicate,
    w: usize,
) -> Vec<JoinResult> {
    let mut windows: [Vec<Tuple>; 2] = [Vec::new(), Vec::new()];
    let mut out = Vec::new();
    for &t in tuples {
        let other = t.side.opposite().index();
        let live_from = windows[other].len().saturating_sub(w);
        for &m in &windows[other][live_from..] {
            if predicate.matches(t.key, m.key) {
                out.push(JoinResult::new(t, m));
            }
        }
        windows[t.side.index()].push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimtree_common::{Seq, StreamSide};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config(window: usize) -> PimConfig {
        let mut c = PimConfig::for_window(window)
            .with_merge_ratio(0.5)
            .with_insertion_depth(2);
        c.css_fanout = 8;
        c.css_leaf_size = 8;
        c.btree_fanout = 8;
        c
    }

    fn canonical(results: &[JoinResult]) -> Vec<(u8, Seq, u8, Seq)> {
        let mut v: Vec<(u8, Seq, u8, Seq)> = results
            .iter()
            .map(|r| {
                (
                    r.probe.side.index() as u8,
                    r.probe.seq,
                    r.matched.side.index() as u8,
                    r.matched.seq,
                )
            })
            .collect();
        v.sort_unstable();
        v
    }

    fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64; 2];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, rng.gen_range(0..domain))
            })
            .collect()
    }

    fn build(
        strategy: PlacementStrategy,
        nodes: usize,
        w: usize,
        predicate: BandPredicate,
        sample: &[i64],
    ) -> NumaPartitionedJoin {
        let topo = NumaTopology::new(nodes, 90, 180);
        let partitioner = RangePartitioner::from_key_sample(nodes, sample);
        NumaPartitionedJoin::with_pim_config(
            topo,
            strategy,
            partitioner,
            w,
            predicate,
            small_config(w),
        )
    }

    #[test]
    fn range_partitioned_join_matches_reference() {
        for seed in [1, 2] {
            let tuples = random_tuples(3000, 500, seed);
            let predicate = BandPredicate::new(2);
            let w = 128;
            let expected = canonical(&reference_band_join(&tuples, predicate, w));
            assert!(!expected.is_empty());
            let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();
            let mut op = build(
                PlacementStrategy::RangePartitioned,
                4,
                w,
                predicate,
                &sample,
            );
            let got = op.run(&tuples);
            assert_eq!(canonical(&got), expected, "seed {seed}");
        }
    }

    #[test]
    fn round_robin_join_matches_reference() {
        let tuples = random_tuples(2500, 400, 5);
        let predicate = BandPredicate::new(1);
        let w = 64;
        let expected = canonical(&reference_band_join(&tuples, predicate, w));
        let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();
        let mut op = build(PlacementStrategy::RoundRobin, 4, w, predicate, &sample);
        assert_eq!(canonical(&op.run(&tuples)), expected);
    }

    #[test]
    fn range_partitioning_produces_far_less_remote_traffic_than_round_robin() {
        let tuples = random_tuples(4000, 2000, 9);
        let predicate = BandPredicate::new(2);
        let w = 256;
        let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();

        let mut range = build(
            PlacementStrategy::RangePartitioned,
            4,
            w,
            predicate,
            &sample,
        );
        range.run(&tuples);
        let mut rr = build(PlacementStrategy::RoundRobin, 4, w, predicate, &sample);
        rr.run(&tuples);

        assert!(
            range.traffic().remote_fraction() < 0.2,
            "range partitioning should keep most accesses local, got {}",
            range.traffic().remote_fraction()
        );
        assert!(
            rr.traffic().remote_fraction() > 0.5,
            "round-robin placement forces cross-node probes, got {}",
            rr.traffic().remote_fraction()
        );
        assert!(range.total_cost() < rr.total_cost());
    }

    #[test]
    fn workload_aware_partitioning_balances_load_under_skew() {
        // 80 % of the keys concentrate in a hot range, which also produces
        // most of the join output.
        let mut rng = StdRng::seed_from_u64(13);
        let mut seqs = [0u64; 2];
        let tuples: Vec<Tuple> = (0..6000)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                let key = if rng.gen_bool(0.8) {
                    rng.gen_range(0..100)
                } else {
                    rng.gen_range(100..100_000)
                };
                Tuple::new(side, seq, key)
            })
            .collect();
        let predicate = BandPredicate::new(1);
        let w = 256;
        let sample: Vec<i64> = tuples.iter().map(|t| t.key).collect();
        let mut op = build(
            PlacementStrategy::RangePartitioned,
            4,
            w,
            predicate,
            &sample,
        );
        op.run(&tuples);
        assert!(
            op.load_imbalance() < 1.6,
            "key-sample partitioning keeps node load roughly even, got {}",
            op.load_imbalance()
        );
    }

    #[test]
    fn repartitioning_after_drift_restores_local_access() {
        let predicate = BandPredicate::new(1);
        let w = 128;
        // The partitioner was built for keys 0..1000 ...
        let initial_sample: Vec<i64> = (0..1000).collect();
        let mut op = build(
            PlacementStrategy::RangePartitioned,
            4,
            w,
            predicate,
            &initial_sample,
        );
        // ... but the stream has drifted to 50_000..51_000: almost everything
        // lands on the last node.
        let drifted = {
            let mut rng = StdRng::seed_from_u64(21);
            let mut seqs = [0u64; 2];
            (0..3000)
                .map(|_| {
                    let side = if rng.gen::<bool>() {
                        StreamSide::R
                    } else {
                        StreamSide::S
                    };
                    let seq = seqs[side.index()];
                    seqs[side.index()] += 1;
                    Tuple::new(side, seq, rng.gen_range(50_000..51_000))
                })
                .collect::<Vec<Tuple>>()
        };
        op.run(&drifted);
        assert!(op.load_imbalance() > 2.0, "drift should overload one node");

        // Repartition from the observed keys and replay a comparable stream.
        let observed: Vec<(i64, u64)> = drifted.iter().map(|t| (t.key, 0)).collect();
        let plan = RangePartitioner::from_key_sample(4, &initial_sample).repartition(&observed);
        let mut fresh = NumaPartitionedJoin::with_pim_config(
            NumaTopology::new(4, 90, 180),
            PlacementStrategy::RangePartitioned,
            plan.new_partitioner,
            w,
            predicate,
            small_config(w),
        );
        fresh.run(&drifted);
        assert!(
            fresh.load_imbalance() < 1.5,
            "repartitioning should rebalance, got {}",
            fresh.load_imbalance()
        );
        assert!(plan.moved_fraction > 0.5);
    }

    #[test]
    fn self_and_empty_inputs_are_safe() {
        let predicate = BandPredicate::new(1);
        let mut op = build(
            PlacementStrategy::RangePartitioned,
            2,
            16,
            predicate,
            &[1, 2, 3],
        );
        assert!(op.run(&[]).is_empty());
        assert_eq!(op.results(), 0);
        assert_eq!(op.traffic().local() + op.traffic().remote(), 0);
        let single = op.run(&[Tuple::r(0, 5)]);
        assert!(single.is_empty());
    }

    #[test]
    #[should_panic(expected = "disagree on the node count")]
    fn mismatched_partitioner_rejected() {
        let topo = NumaTopology::two_socket();
        let partitioner = RangePartitioner::from_key_sample(4, &[1, 2, 3]);
        let _ = NumaPartitionedJoin::new(
            topo,
            PlacementStrategy::RangePartitioned,
            partitioner,
            16,
            BandPredicate::new(1),
        );
    }
}
