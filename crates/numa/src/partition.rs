//! Workload-aware range partitioning across NUMA nodes.
//!
//! The paper's NUMA discussion asks for a partitioning that balances the load
//! "considering the numbers of both input and output tuples of each interval":
//! an interval that receives few inserts but produces many join results (a hot
//! band) is as expensive as one that receives many inserts. The partitioner
//! therefore weighs every sampled key by `1 + output_weight`, where the output
//! weight estimates how many matches a tuple with that key produces.

use pimtree_common::Key;

/// Observed (or estimated) load of one key interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionLoad {
    /// Tuples inserted into the interval.
    pub inserts: u64,
    /// Join results produced by probes landing in the interval.
    pub outputs: u64,
}

impl PartitionLoad {
    /// Combined weight of the interval (the quantity the partitioner
    /// balances).
    pub fn weight(&self) -> u64 {
        self.inserts + self.outputs
    }
}

/// A range partitioning of the key domain into one contiguous interval per
/// NUMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    /// Upper boundaries (exclusive) of every node's interval except the last,
    /// ascending. Node `i` owns `[boundaries[i-1], boundaries[i])` with the
    /// conventional open ends at the extremes.
    boundaries: Vec<Key>,
    nodes: usize,
}

impl RangePartitioner {
    /// Builds a partitioning for `nodes` nodes from a sample of
    /// `(key, output_weight)` observations, balancing `1 + output_weight` per
    /// sample across nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn from_weighted_sample(nodes: usize, sample: &[(Key, u64)]) -> Self {
        assert!(nodes > 0, "need at least one node");
        if nodes == 1 || sample.is_empty() {
            return RangePartitioner {
                boundaries: vec![Key::MAX; nodes.saturating_sub(1)],
                nodes,
            };
        }
        let mut weighted: Vec<(Key, u64)> = sample.iter().map(|&(k, w)| (k, 1 + w)).collect();
        weighted.sort_unstable_by_key(|&(k, _)| k);
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let per_node = total.div_ceil(nodes as u64).max(1);
        let mut boundaries = Vec::with_capacity(nodes - 1);
        let mut acc = 0u64;
        let mut target = per_node;
        for &(key, w) in &weighted {
            if boundaries.len() == nodes - 1 {
                break;
            }
            acc += w;
            if acc >= target {
                boundaries.push(key);
                target += per_node;
            }
        }
        while boundaries.len() < nodes - 1 {
            boundaries.push(Key::MAX);
        }
        RangePartitioner { boundaries, nodes }
    }

    /// Builds an unweighted partitioning (inserts only) from a key sample.
    pub fn from_key_sample(nodes: usize, keys: &[Key]) -> Self {
        let sample: Vec<(Key, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        Self::from_weighted_sample(nodes, &sample)
    }

    /// Number of nodes the partitioning covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node that owns `key`.
    pub fn node_of(&self, key: Key) -> usize {
        self.boundaries.partition_point(|&b| b < key)
    }

    /// The partition boundaries (exclusive upper bounds of all but the last
    /// node).
    pub fn boundaries(&self) -> &[Key] {
        &self.boundaries
    }

    /// The nodes whose intervals overlap `[lo, hi]` (a band-join probe range),
    /// as an inclusive node-index range.
    pub fn nodes_overlapping(&self, lo: Key, hi: Key) -> (usize, usize) {
        (self.node_of(lo), self.node_of(hi))
    }

    /// The shards whose key intervals overlap the *inclusive* range
    /// `[lo, hi]`, as a half-open shard-index range — the probe fan-out
    /// query of the partitioned index store.
    ///
    /// A degenerate range (`lo > hi`) covers no shard and returns the empty
    /// range `0..0`; a point range (`lo == hi`) covers exactly the shard
    /// owning that key. Boundary keys follow [`node_of`](Self::node_of): the
    /// boundary itself belongs to the lower shard, so `[b, b + 1]` covers two
    /// shards while `[b - 1, b]` covers one (unless `b - 1` crosses an
    /// earlier boundary).
    pub fn covering_shards(&self, lo: Key, hi: Key) -> std::ops::Range<usize> {
        if lo > hi {
            return 0..0;
        }
        let (first, last) = self.nodes_overlapping(lo, hi);
        first..last + 1
    }

    /// Computes a repartitioning from freshly observed per-node loads: new
    /// boundaries that re-balance the observed weight, together with the
    /// fraction of observed weight whose home node changes (the data-transfer
    /// cost the paper worries about).
    pub fn repartition(&self, observed: &[(Key, u64)]) -> RepartitionPlan {
        let new = Self::from_weighted_sample(self.nodes, observed);
        let total: u64 = observed.iter().map(|&(_, w)| 1 + w).sum();
        let moved: u64 = observed
            .iter()
            .filter(|&&(k, _)| self.node_of(k) != new.node_of(k))
            .map(|&(_, w)| 1 + w)
            .sum();
        RepartitionPlan {
            new_partitioner: new,
            moved_fraction: if total == 0 {
                0.0
            } else {
                moved as f64 / total as f64
            },
        }
    }

    /// Relative imbalance of observed per-node weights: maximum node weight
    /// divided by the ideal (uniform) weight. 1.0 is perfectly balanced.
    pub fn imbalance(&self, observed: &[(Key, u64)]) -> f64 {
        let mut per_node = vec![0u64; self.nodes];
        for &(k, w) in observed {
            per_node[self.node_of(k)] += 1 + w;
        }
        let total: u64 = per_node.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.nodes as f64;
        per_node
            .iter()
            .map(|&w| w as f64 / ideal)
            .fold(0.0, f64::max)
    }
}

/// Drift-driven repartition hook: accumulates a sliding sample of
/// `(key, output_weight)` observations and decides when the observed load
/// has drifted far enough from a partitioning to justify the data transfer a
/// repartition costs.
///
/// The monitor is deliberately decoupled from any operator: the sharded join
/// engine (or the simulated NUMA join) feeds it ingested keys between runs,
/// asks [`should_repartition`](Self::should_repartition), and adopts
/// [`plan`](Self::plan)'s partitioner when the answer is yes. Observations
/// are kept in a fixed-capacity ring so the monitor's footprint — and the
/// sample a repartition is computed from — stays bounded under unbounded
/// streams.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    sample: Vec<(Key, u64)>,
    capacity: usize,
    cursor: usize,
    imbalance_trigger: f64,
}

impl DriftMonitor {
    /// Creates a monitor keeping the most recent `capacity` observations and
    /// recommending a repartition once the observed imbalance exceeds
    /// `imbalance_trigger` (1.0 = perfectly balanced; a typical trigger is
    /// 1.5–2.0).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the trigger is below 1.0.
    pub fn new(capacity: usize, imbalance_trigger: f64) -> Self {
        assert!(capacity > 0, "drift monitor needs a positive capacity");
        assert!(
            imbalance_trigger >= 1.0,
            "an imbalance below 1.0 is unreachable"
        );
        DriftMonitor {
            sample: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            cursor: 0,
            imbalance_trigger,
        }
    }

    /// Records one observation, evicting the oldest once at capacity.
    pub fn observe(&mut self, key: Key, output_weight: u64) {
        if self.sample.len() < self.capacity {
            self.sample.push((key, output_weight));
        } else {
            self.sample[self.cursor] = (key, output_weight);
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// The current observation window (unspecified order).
    pub fn sample(&self) -> &[(Key, u64)] {
        &self.sample
    }

    /// Observed load imbalance under `partitioner` (1.0 when no observations
    /// were recorded).
    pub fn imbalance(&self, partitioner: &RangePartitioner) -> f64 {
        partitioner.imbalance(&self.sample)
    }

    /// Whether the observed drift exceeds the trigger. A sample smaller than
    /// half the capacity never triggers — early observations are too noisy
    /// to justify moving data.
    pub fn should_repartition(&self, partitioner: &RangePartitioner) -> bool {
        self.sample.len() * 2 >= self.capacity
            && self.imbalance(partitioner) > self.imbalance_trigger
    }

    /// Computes the repartition plan for the observed window.
    pub fn plan(&self, partitioner: &RangePartitioner) -> RepartitionPlan {
        partitioner.repartition(&self.sample)
    }

    /// Discards all observations (after a plan has been adopted).
    pub fn clear(&mut self) {
        self.sample.clear();
        self.cursor = 0;
    }
}

/// Outcome of a repartitioning decision.
#[derive(Debug, Clone)]
pub struct RepartitionPlan {
    /// The rebalanced partitioning.
    pub new_partitioner: RangePartitioner,
    /// Fraction of the observed weight whose home node changes when the plan
    /// is adopted — a proxy for the inter-node data transfer the migration
    /// costs.
    pub moved_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_sample_splits_evenly() {
        let keys: Vec<Key> = (0..10_000).collect();
        let p = RangePartitioner::from_key_sample(4, &keys);
        let mut counts = [0usize; 4];
        for &k in &keys {
            counts[p.node_of(k)] += 1;
        }
        for &c in &counts {
            assert!((2000..=3000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_sample_still_balances() {
        // 90 % of keys in a narrow hot range.
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<Key> = (0..20_000)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    rng.gen_range(0..100)
                } else {
                    rng.gen_range(100..1_000_000)
                }
            })
            .collect();
        let p = RangePartitioner::from_key_sample(4, &keys);
        let observed: Vec<(Key, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        assert!(
            p.imbalance(&observed) < 1.3,
            "imbalance {}",
            p.imbalance(&observed)
        );
    }

    #[test]
    fn output_weight_shifts_boundaries_toward_hot_ranges() {
        // Uniform inserts, but keys below 1000 produce 20 results each.
        let sample: Vec<(Key, u64)> = (0..10_000)
            .map(|k| (k as Key, if k < 1000 { 20 } else { 0 }))
            .collect();
        let weighted = RangePartitioner::from_weighted_sample(4, &sample);
        let unweighted = RangePartitioner::from_key_sample(4, &(0..10_000).collect::<Vec<Key>>());
        // The hot prefix must be split across more nodes in the weighted
        // partitioning: its first boundary falls inside the hot range.
        assert!(weighted.boundaries()[0] < unweighted.boundaries()[0]);
        assert!(weighted.boundaries()[0] < 1000);
        // And the weighted partitioning balances the weighted load better.
        assert!(weighted.imbalance(&sample) < unweighted.imbalance(&sample));
    }

    #[test]
    fn node_of_respects_boundaries() {
        let p = RangePartitioner::from_key_sample(2, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let b = p.boundaries()[0];
        assert_eq!(p.node_of(b), 0, "boundary key belongs to the lower node");
        assert_eq!(p.node_of(b + 1), 1);
        let (lo, hi) = p.nodes_overlapping(b - 1, b + 1);
        assert_eq!((lo, hi), (0, 1));
    }

    #[test]
    fn covering_shards_handles_boundaries_and_degenerate_ranges() {
        let p = RangePartitioner::from_key_sample(4, &(0..4000).collect::<Vec<Key>>());
        assert_eq!(p.nodes(), 4);
        let b = p.boundaries()[0];
        // Boundary key belongs to the lower shard; one key past it crosses.
        assert_eq!(p.covering_shards(b, b), p.node_of(b)..p.node_of(b) + 1);
        assert_eq!(p.covering_shards(b, b + 1), 0..2);
        assert_eq!(p.covering_shards(b - 1, b), 0..1);
        // Point ranges cover exactly the owning shard.
        for key in [Key::MIN, 0, b, b + 1, Key::MAX] {
            let covered = p.covering_shards(key, key);
            assert_eq!(covered.len(), 1, "point range at {key}");
            assert_eq!(covered.start, p.node_of(key));
        }
        // Degenerate (empty) ranges cover nothing.
        assert_eq!(p.covering_shards(10, 9), 0..0);
        assert_eq!(p.covering_shards(Key::MAX, Key::MIN), 0..0);
        // The full domain covers every shard.
        assert_eq!(p.covering_shards(Key::MIN, Key::MAX), 0..4);
        // Every key of the sample lands inside its covering range.
        for k in (0..4000).step_by(97) {
            let covered = p.covering_shards(k - 3, k + 3);
            assert!(covered.contains(&p.node_of(k)), "key {k}");
        }
    }

    #[test]
    fn covering_shards_on_single_node_and_empty_sample() {
        let one = RangePartitioner::from_key_sample(1, &[5, 6, 7]);
        assert_eq!(one.covering_shards(Key::MIN, Key::MAX), 0..1);
        assert_eq!(one.covering_shards(3, 3), 0..1);
        // Without a sample every key is owned by shard 0, so any
        // non-degenerate range covers exactly shard 0.
        let unsampled = RangePartitioner::from_key_sample(4, &[]);
        assert_eq!(unsampled.covering_shards(-100, 100), 0..1);
        assert_eq!(unsampled.covering_shards(100, -100), 0..0);
    }

    #[test]
    fn single_node_owns_everything() {
        let p = RangePartitioner::from_key_sample(1, &[1, 2, 3]);
        assert_eq!(p.node_of(Key::MIN), 0);
        assert_eq!(p.node_of(Key::MAX), 0);
    }

    #[test]
    fn empty_sample_degenerates_gracefully() {
        let p = RangePartitioner::from_key_sample(4, &[]);
        assert_eq!(p.nodes(), 4);
        assert_eq!(
            p.node_of(12345),
            0,
            "all keys land on node 0 without a sample"
        );
    }

    #[test]
    fn drift_monitor_triggers_only_after_real_drift() {
        let initial: Vec<Key> = (0..1000).collect();
        let p = RangePartitioner::from_key_sample(4, &initial);
        let mut monitor = DriftMonitor::new(400, 1.5);
        assert!(monitor.is_empty());
        // A balanced stream (spread over the whole key domain) never
        // triggers.
        for k in 0..400 {
            monitor.observe((k * 5) % 1000, 0);
        }
        assert_eq!(monitor.len(), 400);
        assert!(
            !monitor.should_repartition(&p),
            "balanced load must not trigger"
        );
        // Drifted keys overwrite the window (ring eviction) and trigger.
        for k in 0..400 {
            monitor.observe(5000 + k, 0);
        }
        assert_eq!(monitor.len(), 400, "window stays bounded");
        assert!(monitor.imbalance(&p) > 1.5);
        assert!(monitor.should_repartition(&p));
        let plan = monitor.plan(&p);
        assert!(plan.new_partitioner.imbalance(monitor.sample()) < 1.3);
        assert!(plan.moved_fraction > 0.5);
        monitor.clear();
        assert!(monitor.is_empty());
        assert!(
            !monitor.should_repartition(&p),
            "a cleared (undersized) sample must not trigger"
        );
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn drift_monitor_rejects_zero_capacity() {
        let _ = DriftMonitor::new(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn drift_monitor_rejects_sub_one_trigger() {
        let _ = DriftMonitor::new(16, 0.5);
    }

    #[test]
    fn repartitioning_restores_balance_after_drift() {
        // Initial distribution around 0..1000.
        let initial: Vec<Key> = (0..1000).collect();
        let p = RangePartitioner::from_key_sample(4, &initial);
        // The distribution drifts to 5000..6000: the old partitioning sends
        // everything to the last node.
        let drifted: Vec<(Key, u64)> = (5000..6000).map(|k| (k as Key, 0)).collect();
        assert!(p.imbalance(&drifted) > 3.0);
        let plan = p.repartition(&drifted);
        assert!(plan.new_partitioner.imbalance(&drifted) < 1.3);
        // Rebalancing a fully drifted distribution must move a large share of
        // the data.
        assert!(plan.moved_fraction > 0.5);
        // Repartitioning an unchanged distribution moves (almost) nothing.
        let stable: Vec<(Key, u64)> = initial.iter().map(|&k| (k, 0)).collect();
        let noop = p.repartition(&stable);
        assert!(noop.moved_fraction < 0.05, "moved {}", noop.moved_fraction);
    }

    proptest! {
        #[test]
        fn every_key_is_owned_by_exactly_one_node(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            probe in any::<i64>(),
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            let node = p.node_of(probe);
            prop_assert!(node < nodes);
        }

        #[test]
        fn covering_shards_agrees_with_node_of(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            a in -1000i64..1000,
            b in -1000i64..1000,
            probe in -1000i64..1000,
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let covered = p.covering_shards(lo, hi);
            prop_assert!(covered.end <= nodes);
            prop_assert!(!covered.is_empty());
            // A shard is covered iff it owns at least one key of [lo, hi]:
            // node_of is monotone, so membership of the probe key decides it.
            if (lo..=hi).contains(&probe) {
                prop_assert!(covered.contains(&p.node_of(probe)));
            }
            prop_assert!(p.covering_shards(hi, lo).is_empty() || lo == hi);
        }

        #[test]
        fn node_of_is_monotone_in_the_key(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            a in any::<i64>(),
            b in any::<i64>(),
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.node_of(lo) <= p.node_of(hi));
        }
    }
}
