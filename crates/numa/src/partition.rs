//! Workload-aware range partitioning across NUMA nodes.
//!
//! The paper's NUMA discussion asks for a partitioning that balances the load
//! "considering the numbers of both input and output tuples of each interval":
//! an interval that receives few inserts but produces many join results (a hot
//! band) is as expensive as one that receives many inserts. The partitioner
//! therefore weighs every sampled key by `1 + output_weight`, where the output
//! weight estimates how many matches a tuple with that key produces.

use pimtree_common::Key;

/// Observed (or estimated) load of one key interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionLoad {
    /// Tuples inserted into the interval.
    pub inserts: u64,
    /// Join results produced by probes landing in the interval.
    pub outputs: u64,
}

impl PartitionLoad {
    /// Combined weight of the interval (the quantity the partitioner
    /// balances).
    pub fn weight(&self) -> u64 {
        self.inserts + self.outputs
    }
}

/// A range partitioning of the key domain into one contiguous interval per
/// NUMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    /// Upper boundaries (exclusive) of every node's interval except the last,
    /// ascending. Node `i` owns `[boundaries[i-1], boundaries[i])` with the
    /// conventional open ends at the extremes.
    boundaries: Vec<Key>,
    nodes: usize,
}

impl RangePartitioner {
    /// Builds a partitioning for `nodes` nodes from a sample of
    /// `(key, output_weight)` observations, balancing `1 + output_weight` per
    /// sample across nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn from_weighted_sample(nodes: usize, sample: &[(Key, u64)]) -> Self {
        assert!(nodes > 0, "need at least one node");
        if nodes == 1 || sample.is_empty() {
            return RangePartitioner {
                boundaries: vec![Key::MAX; nodes.saturating_sub(1)],
                nodes,
            };
        }
        let mut weighted: Vec<(Key, u64)> = sample.iter().map(|&(k, w)| (k, 1 + w)).collect();
        weighted.sort_unstable_by_key(|&(k, _)| k);
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let per_node = total.div_ceil(nodes as u64).max(1);
        let mut boundaries = Vec::with_capacity(nodes - 1);
        let mut acc = 0u64;
        let mut target = per_node;
        for &(key, w) in &weighted {
            if boundaries.len() == nodes - 1 {
                break;
            }
            acc += w;
            if acc >= target {
                // A near-constant sample can hit several targets on the same
                // key; duplicate boundaries would make `covering_shards`
                // report fan-out onto shards that `node_of` can never route
                // to (their interval is empty). Keep each boundary once —
                // the skipped shards become trailing `Key::MAX` intervals,
                // the same convention the empty-sample path uses.
                if boundaries.last() != Some(&key) {
                    boundaries.push(key);
                }
                target += per_node;
            }
        }
        while boundaries.len() < nodes - 1 {
            boundaries.push(Key::MAX);
        }
        RangePartitioner { boundaries, nodes }
    }

    /// Builds an unweighted partitioning (inserts only) from a key sample.
    pub fn from_key_sample(nodes: usize, keys: &[Key]) -> Self {
        let sample: Vec<(Key, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        Self::from_weighted_sample(nodes, &sample)
    }

    /// Number of nodes the partitioning covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node that owns `key`.
    pub fn node_of(&self, key: Key) -> usize {
        self.boundaries.partition_point(|&b| b < key)
    }

    /// The partition boundaries (exclusive upper bounds of all but the last
    /// node).
    pub fn boundaries(&self) -> &[Key] {
        &self.boundaries
    }

    /// The inclusive key interval shard `shard` owns, or `None` when the
    /// interval is empty (a shard behind a duplicate or `Key::MAX` boundary
    /// that [`node_of`](Self::node_of) can never route a key to).
    ///
    /// The lower end is `boundaries[shard - 1] + 1`, computed with *checked*
    /// arithmetic: at the `Key::MAX` domain edge the increment would wrap to
    /// `Key::MIN` and silently claim the whole domain for an empty shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_interval(&self, shard: usize) -> Option<(Key, Key)> {
        assert!(
            shard < self.nodes,
            "shard {shard} out of {} nodes",
            self.nodes
        );
        let lo = if shard == 0 {
            Key::MIN
        } else {
            // A boundary at Key::MAX leaves nothing above it: checked, not
            // wrapping, so the empty shard reports `None` instead of the
            // full domain.
            self.boundaries[shard - 1].checked_add(1)?
        };
        let hi = if shard == self.nodes - 1 {
            Key::MAX
        } else {
            self.boundaries[shard]
        };
        (lo <= hi).then_some((lo, hi))
    }

    /// The nodes whose intervals overlap `[lo, hi]` (a band-join probe range),
    /// as an inclusive node-index range.
    pub fn nodes_overlapping(&self, lo: Key, hi: Key) -> (usize, usize) {
        (self.node_of(lo), self.node_of(hi))
    }

    /// The shards whose key intervals overlap the *inclusive* range
    /// `[lo, hi]`, as a half-open shard-index range — the probe fan-out
    /// query of the partitioned index store.
    ///
    /// A degenerate range (`lo > hi`) covers no shard and returns the empty
    /// range `0..0`; a point range (`lo == hi`) covers exactly the shard
    /// owning that key. Boundary keys follow [`node_of`](Self::node_of): the
    /// boundary itself belongs to the lower shard, so `[b, b + 1]` covers two
    /// shards while `[b - 1, b]` covers one (unless `b - 1` crosses an
    /// earlier boundary).
    pub fn covering_shards(&self, lo: Key, hi: Key) -> std::ops::Range<usize> {
        if lo > hi {
            return 0..0;
        }
        let (first, last) = self.nodes_overlapping(lo, hi);
        first..last + 1
    }

    /// Computes a repartitioning from freshly observed per-node loads: new
    /// boundaries that re-balance the observed weight, together with the
    /// fraction of observed weight whose home node changes (the data-transfer
    /// cost the paper worries about).
    pub fn repartition(&self, observed: &[(Key, u64)]) -> RepartitionPlan {
        let new = Self::from_weighted_sample(self.nodes, observed);
        let total: u64 = observed.iter().map(|&(_, w)| 1 + w).sum();
        let moved: u64 = observed
            .iter()
            .filter(|&&(k, _)| self.node_of(k) != new.node_of(k))
            .map(|&(_, w)| 1 + w)
            .sum();
        RepartitionPlan {
            new_partitioner: new,
            moved_fraction: if total == 0 {
                0.0
            } else {
                moved as f64 / total as f64
            },
        }
    }

    /// Relative imbalance of observed per-node weights: maximum node weight
    /// divided by the ideal (uniform) weight. 1.0 is perfectly balanced.
    pub fn imbalance(&self, observed: &[(Key, u64)]) -> f64 {
        let mut per_node = vec![0u64; self.nodes];
        for &(k, w) in observed {
            per_node[self.node_of(k)] += 1 + w;
        }
        let total: u64 = per_node.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.nodes as f64;
        per_node
            .iter()
            .map(|&w| w as f64 / ideal)
            .fold(0.0, f64::max)
    }
}

/// Drift-driven repartition hook: accumulates a sliding sample of
/// `(key, output_weight)` observations and decides when the observed load
/// has drifted far enough from a partitioning to justify the data transfer a
/// repartition costs.
///
/// The monitor is deliberately decoupled from any operator: the sharded join
/// engine (or the simulated NUMA join) feeds it ingested keys between runs,
/// asks [`should_repartition`](Self::should_repartition), and adopts
/// [`plan`](Self::plan)'s partitioner when the answer is yes. Observations
/// are kept in a fixed-capacity ring so the monitor's footprint — and the
/// sample a repartition is computed from — stays bounded under unbounded
/// streams.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    sample: Vec<(Key, u64)>,
    capacity: usize,
    cursor: usize,
    imbalance_trigger: f64,
    /// Observations remaining before the monitor may trigger again after a
    /// plan decision. Without it, the stale pre-migration sample would
    /// immediately re-trigger [`should_repartition`](Self::should_repartition)
    /// against the freshly adopted partitioner and the system would
    /// oscillate between partitionings.
    cooldown: usize,
}

impl DriftMonitor {
    /// Creates a monitor keeping the most recent `capacity` observations and
    /// recommending a repartition once the observed imbalance exceeds
    /// `imbalance_trigger` (1.0 = perfectly balanced; a typical trigger is
    /// 1.5–2.0).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the trigger is below 1.0.
    pub fn new(capacity: usize, imbalance_trigger: f64) -> Self {
        assert!(capacity > 0, "drift monitor needs a positive capacity");
        assert!(
            imbalance_trigger >= 1.0,
            "an imbalance below 1.0 is unreachable"
        );
        DriftMonitor {
            sample: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            cursor: 0,
            imbalance_trigger,
            cooldown: 0,
        }
    }

    /// Records one observation, evicting the oldest once at capacity.
    pub fn observe(&mut self, key: Key, output_weight: u64) {
        self.cooldown = self.cooldown.saturating_sub(1);
        if self.sample.len() < self.capacity {
            self.sample.push((key, output_weight));
        } else {
            self.sample[self.cursor] = (key, output_weight);
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// The current observation window (unspecified order).
    pub fn sample(&self) -> &[(Key, u64)] {
        &self.sample
    }

    /// Observed load imbalance under `partitioner` (1.0 when no observations
    /// were recorded).
    pub fn imbalance(&self, partitioner: &RangePartitioner) -> f64 {
        partitioner.imbalance(&self.sample)
    }

    /// Whether the observed drift exceeds the trigger. A sample smaller than
    /// half the capacity never triggers — early observations are too noisy
    /// to justify moving data — and neither does a monitor still cooling
    /// down after a plan decision (see
    /// [`note_adoption`](Self::note_adoption)).
    pub fn should_repartition(&self, partitioner: &RangePartitioner) -> bool {
        self.cooldown == 0
            && self.sample.len() * 2 >= self.capacity
            && self.imbalance(partitioner) > self.imbalance_trigger
    }

    /// Observations still to go before the monitor may trigger again.
    pub fn cooldown(&self) -> usize {
        self.cooldown
    }

    /// Records that a plan was decided on (adopted or rejected by a cost
    /// gate): discards the sliding sample — it was observed under the *old*
    /// partitioner and would otherwise immediately re-trigger against the
    /// new one — and arms a cooldown of `capacity` observations so the next
    /// decision is made from an entirely fresh window.
    pub fn note_adoption(&mut self) {
        self.clear();
        self.cooldown = self.capacity;
    }

    /// Computes the repartition plan for the observed window.
    pub fn plan(&self, partitioner: &RangePartitioner) -> RepartitionPlan {
        partitioner.repartition(&self.sample)
    }

    /// Discards all observations (after a plan has been adopted).
    pub fn clear(&mut self) {
        self.sample.clear();
        self.cursor = 0;
    }
}

/// Outcome of a repartitioning decision.
#[derive(Debug, Clone)]
pub struct RepartitionPlan {
    /// The rebalanced partitioning.
    pub new_partitioner: RangePartitioner,
    /// Fraction of the observed weight whose home node changes when the plan
    /// is adopted — a proxy for the inter-node data transfer the migration
    /// costs.
    pub moved_fraction: f64,
}

/// One sub-range move of an incremental migration: every key in the
/// *inclusive* interval `[lo, hi]` changes owner from shard `src` (under the
/// outgoing partitioner) to shard `dst` (under the incoming one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffStep {
    /// Inclusive lower end of the moving key interval.
    pub lo: Key,
    /// Inclusive upper end of the moving key interval.
    pub hi: Key,
    /// Owner of the interval under the outgoing partitioner.
    pub src: usize,
    /// Owner of the interval under the incoming partitioner.
    pub dst: usize,
}

/// Decomposes the migration from `old` to `new` into per-sub-range handoff
/// steps, sorted ascending and pairwise disjoint. Merging both partitioners'
/// boundary sets cuts the key domain into maximal intervals with a constant
/// owner under each partitioner; every interval whose owner changes becomes
/// one step. Keys not covered by any step keep their owner, so executing the
/// steps in any order — or resuming after an interruption — converges on
/// `new` without touching stable ranges.
///
/// # Panics
///
/// Panics if the two partitioners cover different node counts.
pub fn handoff_steps(old: &RangePartitioner, new: &RangePartitioner) -> Vec<HandoffStep> {
    assert_eq!(
        old.nodes(),
        new.nodes(),
        "handoff requires equal shard counts"
    );
    let mut cuts: Vec<Key> = old
        .boundaries
        .iter()
        .chain(new.boundaries.iter())
        .copied()
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut steps = Vec::new();
    let emit = |steps: &mut Vec<HandoffStep>, lo: Key, hi: Key| {
        let (src, dst) = (old.node_of(lo), new.node_of(lo));
        debug_assert_eq!(src, old.node_of(hi), "cut interval spans an old boundary");
        debug_assert_eq!(dst, new.node_of(hi), "cut interval spans a new boundary");
        if src != dst {
            steps.push(HandoffStep { lo, hi, src, dst });
        }
    };
    let mut lo = Key::MIN;
    for &cut in &cuts {
        emit(&mut steps, lo, cut);
        // A boundary at the domain edge leaves nothing above it: checked, not
        // wrapping, exactly as in `shard_interval`.
        match cut.checked_add(1) {
            Some(next) => lo = next,
            None => return steps,
        }
    }
    emit(&mut steps, lo, Key::MAX);
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_sample_splits_evenly() {
        let keys: Vec<Key> = (0..10_000).collect();
        let p = RangePartitioner::from_key_sample(4, &keys);
        let mut counts = [0usize; 4];
        for &k in &keys {
            counts[p.node_of(k)] += 1;
        }
        for &c in &counts {
            assert!((2000..=3000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_sample_still_balances() {
        // 90 % of keys in a narrow hot range.
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<Key> = (0..20_000)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    rng.gen_range(0..100)
                } else {
                    rng.gen_range(100..1_000_000)
                }
            })
            .collect();
        let p = RangePartitioner::from_key_sample(4, &keys);
        let observed: Vec<(Key, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        assert!(
            p.imbalance(&observed) < 1.3,
            "imbalance {}",
            p.imbalance(&observed)
        );
    }

    #[test]
    fn output_weight_shifts_boundaries_toward_hot_ranges() {
        // Uniform inserts, but keys below 1000 produce 20 results each.
        let sample: Vec<(Key, u64)> = (0..10_000)
            .map(|k| (k as Key, if k < 1000 { 20 } else { 0 }))
            .collect();
        let weighted = RangePartitioner::from_weighted_sample(4, &sample);
        let unweighted = RangePartitioner::from_key_sample(4, &(0..10_000).collect::<Vec<Key>>());
        // The hot prefix must be split across more nodes in the weighted
        // partitioning: its first boundary falls inside the hot range.
        assert!(weighted.boundaries()[0] < unweighted.boundaries()[0]);
        assert!(weighted.boundaries()[0] < 1000);
        // And the weighted partitioning balances the weighted load better.
        assert!(weighted.imbalance(&sample) < unweighted.imbalance(&sample));
    }

    #[test]
    fn node_of_respects_boundaries() {
        let p = RangePartitioner::from_key_sample(2, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let b = p.boundaries()[0];
        assert_eq!(p.node_of(b), 0, "boundary key belongs to the lower node");
        assert_eq!(p.node_of(b + 1), 1);
        let (lo, hi) = p.nodes_overlapping(b - 1, b + 1);
        assert_eq!((lo, hi), (0, 1));
    }

    #[test]
    fn covering_shards_handles_boundaries_and_degenerate_ranges() {
        let p = RangePartitioner::from_key_sample(4, &(0..4000).collect::<Vec<Key>>());
        assert_eq!(p.nodes(), 4);
        let b = p.boundaries()[0];
        // Boundary key belongs to the lower shard; one key past it crosses.
        assert_eq!(p.covering_shards(b, b), p.node_of(b)..p.node_of(b) + 1);
        assert_eq!(p.covering_shards(b, b + 1), 0..2);
        assert_eq!(p.covering_shards(b - 1, b), 0..1);
        // Point ranges cover exactly the owning shard.
        for key in [Key::MIN, 0, b, b + 1, Key::MAX] {
            let covered = p.covering_shards(key, key);
            assert_eq!(covered.len(), 1, "point range at {key}");
            assert_eq!(covered.start, p.node_of(key));
        }
        // Degenerate (empty) ranges cover nothing.
        assert_eq!(p.covering_shards(10, 9), 0..0);
        assert_eq!(p.covering_shards(Key::MAX, Key::MIN), 0..0);
        // The full domain covers every shard.
        assert_eq!(p.covering_shards(Key::MIN, Key::MAX), 0..4);
        // Every key of the sample lands inside its covering range.
        for k in (0..4000).step_by(97) {
            let covered = p.covering_shards(k - 3, k + 3);
            assert!(covered.contains(&p.node_of(k)), "key {k}");
        }
    }

    #[test]
    fn covering_shards_on_single_node_and_empty_sample() {
        let one = RangePartitioner::from_key_sample(1, &[5, 6, 7]);
        assert_eq!(one.covering_shards(Key::MIN, Key::MAX), 0..1);
        assert_eq!(one.covering_shards(3, 3), 0..1);
        // Without a sample every key is owned by shard 0, so any
        // non-degenerate range covers exactly shard 0.
        let unsampled = RangePartitioner::from_key_sample(4, &[]);
        assert_eq!(unsampled.covering_shards(-100, 100), 0..1);
        assert_eq!(unsampled.covering_shards(100, -100), 0..0);
    }

    #[test]
    fn single_node_owns_everything() {
        let p = RangePartitioner::from_key_sample(1, &[1, 2, 3]);
        assert_eq!(p.node_of(Key::MIN), 0);
        assert_eq!(p.node_of(Key::MAX), 0);
    }

    #[test]
    fn empty_sample_degenerates_gracefully() {
        let p = RangePartitioner::from_key_sample(4, &[]);
        assert_eq!(p.nodes(), 4);
        assert_eq!(
            p.node_of(12345),
            0,
            "all keys land on node 0 without a sample"
        );
    }

    #[test]
    fn drift_monitor_triggers_only_after_real_drift() {
        let initial: Vec<Key> = (0..1000).collect();
        let p = RangePartitioner::from_key_sample(4, &initial);
        let mut monitor = DriftMonitor::new(400, 1.5);
        assert!(monitor.is_empty());
        // A balanced stream (spread over the whole key domain) never
        // triggers.
        for k in 0..400 {
            monitor.observe((k * 5) % 1000, 0);
        }
        assert_eq!(monitor.len(), 400);
        assert!(
            !monitor.should_repartition(&p),
            "balanced load must not trigger"
        );
        // Drifted keys overwrite the window (ring eviction) and trigger.
        for k in 0..400 {
            monitor.observe(5000 + k, 0);
        }
        assert_eq!(monitor.len(), 400, "window stays bounded");
        assert!(monitor.imbalance(&p) > 1.5);
        assert!(monitor.should_repartition(&p));
        let plan = monitor.plan(&p);
        assert!(plan.new_partitioner.imbalance(monitor.sample()) < 1.3);
        assert!(plan.moved_fraction > 0.5);
        monitor.clear();
        assert!(monitor.is_empty());
        assert!(
            !monitor.should_repartition(&p),
            "a cleared (undersized) sample must not trigger"
        );
    }

    #[test]
    fn constant_sample_dedupes_boundaries_and_keeps_fanout_consistent() {
        // Every sampled key is 7: without deduplication the boundaries
        // collapse to [7, 7, 7], every tuple lands on shard 0 or 3, and
        // `covering_shards` still reports 4-way fan-out for band ranges.
        let p = RangePartitioner::from_weighted_sample(4, &vec![(7, 0); 100]);
        assert_eq!(p.boundaries(), &[7, Key::MAX, Key::MAX]);
        assert_eq!(p.node_of(7), 0);
        assert_eq!(p.node_of(8), 1);
        // Fan-out is consistent with node_of: a band around the constant key
        // covers exactly the shards that own keys in it.
        assert_eq!(p.covering_shards(5, 9), 0..2);
        assert_eq!(p.covering_shards(8, 100), 1..2);
        // The shards behind the deduplicated boundaries own empty intervals.
        assert_eq!(p.shard_interval(0), Some((Key::MIN, 7)));
        assert_eq!(p.shard_interval(1), Some((8, Key::MAX)));
        assert_eq!(p.shard_interval(2), None);
        assert_eq!(p.shard_interval(3), None);
        // Every key's owner has a non-empty interval containing it.
        for key in [Key::MIN, 0, 7, 8, Key::MAX] {
            let (lo, hi) = p.shard_interval(p.node_of(key)).expect("owner non-empty");
            assert!((lo..=hi).contains(&key), "key {key}");
        }
    }

    #[test]
    fn two_value_sample_splits_between_the_values() {
        // Half the weight on key 10, half on key 20: shard 0 gets [MIN, 10],
        // shard 1 the rest, and the two trailing shards stay empty.
        let mut sample: Vec<(Key, u64)> = vec![(10, 0); 50];
        sample.extend(vec![(20, 0); 50]);
        let p = RangePartitioner::from_weighted_sample(4, &sample);
        assert_eq!(p.node_of(10), 0);
        assert_eq!(p.node_of(11), p.node_of(20), "both route to the same shard");
        assert!(p.node_of(20) < 4);
        // covering_shards only reports shards node_of can route to.
        let covered = p.covering_shards(0, 100);
        for shard in covered.clone() {
            assert!(
                p.shard_interval(shard).is_some(),
                "covered shard {shard} must own a non-empty interval"
            );
        }
        assert_eq!(covered, 0..3, "boundaries [10, 20, MAX]: three live shards");
    }

    #[test]
    fn shard_interval_checked_math_at_domain_edges() {
        // A boundary at Key::MAX: the shard above it owns nothing, and the
        // naive `boundary + 1` lower bound would wrap to Key::MIN.
        let p = RangePartitioner::from_weighted_sample(2, &[(Key::MAX, 0), (Key::MAX, 0)]);
        assert_eq!(p.boundaries(), &[Key::MAX]);
        assert_eq!(p.shard_interval(0), Some((Key::MIN, Key::MAX)));
        assert_eq!(p.shard_interval(1), None);
        assert_eq!(p.node_of(Key::MAX), 0);
        assert_eq!(p.covering_shards(Key::MIN, Key::MAX), 0..1);
        // A boundary at Key::MIN leaves the minimum key on shard 0 and
        // everything else above it.
        let p = RangePartitioner::from_weighted_sample(2, &[(Key::MIN, 0), (Key::MAX, 0)]);
        let b = p.boundaries()[0];
        let interval0 = p.shard_interval(0).expect("shard 0 non-empty");
        assert_eq!(interval0, (Key::MIN, b));
        if b < Key::MAX {
            assert_eq!(p.shard_interval(1), Some((b + 1, Key::MAX)));
        }
    }

    #[test]
    fn shard_intervals_partition_the_domain() {
        let keys: Vec<Key> = (0..4000).collect();
        let p = RangePartitioner::from_key_sample(4, &keys);
        let mut expected_lo = Key::MIN;
        for shard in 0..4 {
            let (lo, hi) = p
                .shard_interval(shard)
                .expect("uniform sample: all non-empty");
            assert_eq!(lo, expected_lo, "intervals are contiguous");
            assert!(lo <= hi);
            assert_eq!(p.node_of(lo), shard);
            assert_eq!(p.node_of(hi), shard);
            if shard < 3 {
                expected_lo = hi + 1;
            } else {
                assert_eq!(hi, Key::MAX);
            }
        }
    }

    #[test]
    fn adoption_clears_the_sample_and_cools_down() {
        let initial: Vec<Key> = (0..1000).collect();
        let p = RangePartitioner::from_key_sample(4, &initial);
        let mut monitor = DriftMonitor::new(400, 1.5);
        // Drift the whole window to a disjoint key range: triggers.
        for k in 0..400 {
            monitor.observe(5000 + k, 0);
        }
        assert!(monitor.should_repartition(&p));
        let plan = monitor.plan(&p);
        let adopted = plan.new_partitioner;
        // Regression: before the fix the stale pre-migration sample stayed
        // in the window and could immediately re-trigger after adoption.
        monitor.note_adoption();
        assert!(monitor.is_empty(), "sample cleared on adoption");
        assert_eq!(monitor.cooldown(), 400);
        assert!(!monitor.should_repartition(&adopted));
        assert!(
            !monitor.should_repartition(&p),
            "no trigger from an empty sample"
        );
        // Even a refilled, maximally imbalanced sample must wait out the
        // cooldown of `capacity` observations...
        for k in 0..399 {
            monitor.observe(k % 7, 0);
            assert!(
                !monitor.should_repartition(&adopted),
                "cooldown must hold at observation {k}"
            );
        }
        // ...and may trigger again only once it expired.
        monitor.observe(3, 0);
        assert_eq!(monitor.cooldown(), 0);
        assert!(monitor.should_repartition(&adopted));
        // Steady state under the adopted partitioner never re-triggers: the
        // post-adoption stream is balanced by construction of the plan.
        let mut steady = DriftMonitor::new(400, 1.5);
        for k in 0..1200 {
            steady.observe(5000 + (k % 400), 0);
        }
        assert!(
            !steady.should_repartition(&adopted),
            "adoption must not oscillate: imbalance {}",
            steady.imbalance(&adopted)
        );
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn drift_monitor_rejects_zero_capacity() {
        let _ = DriftMonitor::new(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn drift_monitor_rejects_sub_one_trigger() {
        let _ = DriftMonitor::new(16, 0.5);
    }

    #[test]
    fn repartitioning_restores_balance_after_drift() {
        // Initial distribution around 0..1000.
        let initial: Vec<Key> = (0..1000).collect();
        let p = RangePartitioner::from_key_sample(4, &initial);
        // The distribution drifts to 5000..6000: the old partitioning sends
        // everything to the last node.
        let drifted: Vec<(Key, u64)> = (5000..6000).map(|k| (k as Key, 0)).collect();
        assert!(p.imbalance(&drifted) > 3.0);
        let plan = p.repartition(&drifted);
        assert!(plan.new_partitioner.imbalance(&drifted) < 1.3);
        // Rebalancing a fully drifted distribution must move a large share of
        // the data.
        assert!(plan.moved_fraction > 0.5);
        // Repartitioning an unchanged distribution moves (almost) nothing.
        let stable: Vec<(Key, u64)> = initial.iter().map(|&k| (k, 0)).collect();
        let noop = p.repartition(&stable);
        assert!(noop.moved_fraction < 0.05, "moved {}", noop.moved_fraction);
    }

    #[test]
    fn handoff_steps_cover_exactly_the_owner_changes() {
        // Initial distribution around 0..1000; drifted to 5000..6000.
        let old = RangePartitioner::from_key_sample(4, &(0..1000).collect::<Vec<Key>>());
        let drifted: Vec<(Key, u64)> = (5000..6000).map(|k| (k as Key, 0)).collect();
        let new = old.repartition(&drifted).new_partitioner;
        let steps = handoff_steps(&old, &new);
        assert!(!steps.is_empty(), "a full drift must move something");
        // Steps are sorted, disjoint, and each really changes the owner.
        for w in steps.windows(2) {
            assert!(w[0].hi < w[1].lo, "steps overlap: {w:?}");
        }
        for s in &steps {
            assert!(s.lo <= s.hi);
            assert_ne!(s.src, s.dst);
            assert_eq!(old.node_of(s.lo), s.src);
            assert_eq!(old.node_of(s.hi), s.src);
            assert_eq!(new.node_of(s.lo), s.dst);
            assert_eq!(new.node_of(s.hi), s.dst);
        }
        // Identity migrations decompose into nothing.
        assert!(handoff_steps(&old, &old).is_empty());
        assert!(handoff_steps(&new, &new).is_empty());
    }

    #[test]
    fn handoff_steps_handle_domain_edge_boundaries() {
        // A trailing Key::MAX boundary (empty shard) must not wrap the cut
        // arithmetic or produce a bogus step above the domain edge.
        let old = RangePartitioner::from_weighted_sample(2, &[(Key::MAX, 0), (Key::MAX, 0)]);
        assert_eq!(old.boundaries(), &[Key::MAX]);
        let new = RangePartitioner::from_key_sample(2, &(0..100).collect::<Vec<Key>>());
        let steps = handoff_steps(&old, &new);
        // Everything above new's boundary moves from shard 0 to shard 1.
        assert_eq!(steps.len(), 1);
        let s = steps[0];
        assert_eq!((s.src, s.dst), (0, 1));
        assert_eq!(s.hi, Key::MAX);
        assert_eq!(s.lo, new.boundaries()[0] + 1);
        // And the reverse direction moves the same interval back.
        let back = handoff_steps(&new, &old);
        assert_eq!(back.len(), 1);
        assert_eq!((back[0].src, back[0].dst), (1, 0));
        assert_eq!((back[0].lo, back[0].hi), (s.lo, s.hi));
    }

    #[test]
    #[should_panic(expected = "equal shard counts")]
    fn handoff_steps_reject_mismatched_node_counts() {
        let a = RangePartitioner::from_key_sample(2, &[1, 2, 3, 4]);
        let b = RangePartitioner::from_key_sample(4, &[1, 2, 3, 4]);
        let _ = handoff_steps(&a, &b);
    }

    proptest! {
        /// The frontier invariant the incremental migration relies on: for
        /// every key, either some step covers it and rehomes it from its old
        /// owner to its new owner, or no step covers it and its owner is
        /// unchanged — so applying any prefix of the steps yields a
        /// consistent hybrid ownership, and applying all of them yields
        /// exactly `new`.
        #[test]
        fn handoff_steps_rehome_every_key_exactly_once(
            old_keys in proptest::collection::vec(-1000i64..1000, 1..100),
            new_keys in proptest::collection::vec(-1000i64..1000, 1..100),
            nodes in 1usize..8,
            probe in any::<i64>(),
        ) {
            let old = RangePartitioner::from_key_sample(nodes, &old_keys);
            let new = RangePartitioner::from_key_sample(nodes, &new_keys);
            let steps = handoff_steps(&old, &new);
            for w in steps.windows(2) {
                prop_assert!(w[0].hi < w[1].lo);
            }
            let covering: Vec<&HandoffStep> = steps
                .iter()
                .filter(|s| (s.lo..=s.hi).contains(&probe))
                .collect();
            prop_assert!(covering.len() <= 1, "steps must be disjoint");
            match covering.first() {
                Some(s) => {
                    prop_assert_eq!(s.src, old.node_of(probe));
                    prop_assert_eq!(s.dst, new.node_of(probe));
                    prop_assert_ne!(s.src, s.dst);
                }
                None => prop_assert_eq!(old.node_of(probe), new.node_of(probe)),
            }
        }

        #[test]
        fn every_key_is_owned_by_exactly_one_node(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            probe in any::<i64>(),
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            let node = p.node_of(probe);
            prop_assert!(node < nodes);
        }

        #[test]
        fn covering_shards_agrees_with_node_of(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            a in -1000i64..1000,
            b in -1000i64..1000,
            probe in -1000i64..1000,
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let covered = p.covering_shards(lo, hi);
            prop_assert!(covered.end <= nodes);
            prop_assert!(!covered.is_empty());
            // A shard is covered iff it owns at least one key of [lo, hi]:
            // node_of is monotone, so membership of the probe key decides it.
            if (lo..=hi).contains(&probe) {
                prop_assert!(covered.contains(&p.node_of(probe)));
            }
            prop_assert!(p.covering_shards(hi, lo).is_empty() || lo == hi);
        }

        #[test]
        fn shard_interval_agrees_with_node_of(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            probe in any::<i64>(),
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            // The owner of any key has a non-empty interval containing it.
            let owner = p.node_of(probe);
            let (lo, hi) = p.shard_interval(owner).expect("owner interval non-empty");
            prop_assert!(lo <= probe && probe <= hi);
            // Intervals are consistent with ownership at both ends, and
            // empty intervals are never owners.
            for shard in 0..nodes {
                if let Some((lo, hi)) = p.shard_interval(shard) {
                    prop_assert!(lo <= hi);
                    prop_assert_eq!(p.node_of(lo), shard);
                    prop_assert_eq!(p.node_of(hi), shard);
                }
            }
        }

        #[test]
        fn node_of_is_monotone_in_the_key(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            nodes in 1usize..8,
            a in any::<i64>(),
            b in any::<i64>(),
        ) {
            let p = RangePartitioner::from_key_sample(nodes, &keys);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.node_of(lo) <= p.node_of(hi));
        }
    }
}
