//! Multithreaded window join based on round-robin (context-insensitive)
//! window partitioning (§2.2.3).
//!
//! This models the family of low-latency handshake join / SplitJoin /
//! BiStream operators: the sliding window is split across `P` join cores by
//! arrival order (tuple `seq` is *owned* by core `seq mod P`), every core
//! keeps a local window partition (and, in the indexed variant, a local
//! B+-Tree over it), and producing the join result of a single tuple requires
//! **all** cores to probe their local partition, while only the owning core
//! updates its partition. The redundant probing across all cores is exactly
//! the inefficiency the paper's Equation 4 attributes to context-insensitive
//! partitioning for index-based joins.
//!
//! The implementation exchanges batches over channels rather than modelling
//! the linear chain of the original handshake join; the fast-forwarding
//! variant the paper compares against has the same computational structure
//! (every tuple meets every core once, and is indexed by exactly one core),
//! which is what the throughput figures measure.

use std::time::Instant;

use crossbeam::channel;
use pimtree_btree::BTreeIndex;
use pimtree_common::{BandPredicate, JoinResult, Seq, StreamSide, Tuple};

use crate::stats::JoinRunStats;

/// Whether join cores keep a local index over their partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeMode {
    /// Nested-loop probing of the local partitions.
    Nlwj,
    /// Each core maintains a local B+-Tree over its partition (indexed
    /// round-robin join).
    Ibwj,
}

/// The round-robin partitioned parallel join operator.
#[derive(Debug, Clone)]
pub struct HandshakeJoin {
    threads: usize,
    window_r: usize,
    window_s: usize,
    predicate: BandPredicate,
    mode: HandshakeMode,
    batch_size: usize,
    collect_results: bool,
}

/// A tuple along with the size of the opposite window at its arrival
/// (pre-computed by the driver so that workers can filter expired tuples with
/// exact arrival semantics).
#[derive(Debug, Clone, Copy)]
struct Enriched {
    tuple: Tuple,
    opposite_head: Seq,
}

impl HandshakeJoin {
    /// Creates the operator.
    pub fn new(
        threads: usize,
        window_r: usize,
        window_s: usize,
        predicate: BandPredicate,
        mode: HandshakeMode,
    ) -> Self {
        assert!(threads >= 1, "at least one join core is required");
        HandshakeJoin {
            threads,
            window_r,
            window_s,
            predicate,
            mode,
            batch_size: 256,
            collect_results: false,
        }
    }

    /// Collect result tuples (for tests); by default only counts are kept.
    pub fn with_collected_results(mut self, collect: bool) -> Self {
        self.collect_results = collect;
        self
    }

    /// Overrides the driver batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch_size = batch;
        self
    }

    /// Runs the join over a tuple sequence.
    pub fn run(&self, tuples: &[Tuple]) -> (JoinRunStats, Vec<JoinResult>) {
        let start = Instant::now();
        // Pre-compute, for every tuple, the number of opposite-stream tuples
        // that arrived before it (its probe horizon).
        let mut heads = [0u64, 0u64];
        let enriched: Vec<Enriched> = tuples
            .iter()
            .map(|&t| {
                let e = Enriched {
                    tuple: t,
                    opposite_head: heads[t.side.opposite().index()],
                };
                heads[t.side.index()] += 1;
                e
            })
            .collect();

        let (result_tx, result_rx) = channel::unbounded::<(u64, Vec<JoinResult>)>();
        let mut batch_txs = Vec::with_capacity(self.threads);
        std::thread::scope(|scope| {
            for core in 0..self.threads {
                let (tx, rx) = channel::bounded::<std::sync::Arc<Vec<Enriched>>>(4);
                batch_txs.push(tx);
                let result_tx = result_tx.clone();
                let op = self.clone();
                scope.spawn(move || {
                    let out = op.run_core(core, rx);
                    let _ = result_tx.send(out);
                });
            }
            drop(result_tx);
            for chunk in enriched.chunks(self.batch_size) {
                let batch = std::sync::Arc::new(chunk.to_vec());
                for tx in &batch_txs {
                    tx.send(std::sync::Arc::clone(&batch))
                        .expect("worker alive");
                }
            }
            drop(batch_txs);
        });

        let mut results = Vec::new();
        let mut count = 0u64;
        for (c, rs) in result_rx.iter() {
            count += c;
            results.extend(rs);
        }
        let stats = JoinRunStats {
            tuples: tuples.len() as u64,
            results: count,
            elapsed: start.elapsed(),
            ..Default::default()
        };
        (stats, results)
    }

    fn run_core(
        &self,
        core: usize,
        rx: channel::Receiver<std::sync::Arc<Vec<Enriched>>>,
    ) -> (u64, Vec<JoinResult>) {
        // Local state per stream side: the owned partition (seq, key) in
        // arrival order, plus an optional local index over it.
        let mut partitions: [std::collections::VecDeque<(Seq, i64)>; 2] =
            [Default::default(), Default::default()];
        let mut indexes: [BTreeIndex; 2] = [BTreeIndex::new(), BTreeIndex::new()];
        let window_of = |side: StreamSide| match side {
            StreamSide::R => self.window_r,
            StreamSide::S => self.window_s,
        };
        let mut matches = 0u64;
        let mut collected = Vec::new();

        for batch in rx.iter() {
            for item in batch.iter() {
                let t = item.tuple;
                let probe_idx = t.side.opposite().index();
                let range = self.predicate.probe_range(t.key);
                // Every core probes its local partition of the opposite side.
                let live_from = item
                    .opposite_head
                    .saturating_sub(window_of(t.side.opposite()) as u64);
                match self.mode {
                    HandshakeMode::Nlwj => {
                        for &(seq, key) in &partitions[probe_idx] {
                            if seq >= live_from && seq < item.opposite_head && range.contains(key) {
                                matches += 1;
                                if self.collect_results {
                                    collected.push(JoinResult::new(
                                        t,
                                        Tuple::new(t.side.opposite(), seq, key),
                                    ));
                                }
                            }
                        }
                    }
                    HandshakeMode::Ibwj => {
                        indexes[probe_idx].range_for_each(range, |e| {
                            if e.seq >= live_from && e.seq < item.opposite_head {
                                matches += 1;
                                if self.collect_results {
                                    collected.push(JoinResult::new(
                                        t,
                                        Tuple::new(t.side.opposite(), e.seq, e.key),
                                    ));
                                }
                            }
                        });
                    }
                }
                // Only the owning core stores and indexes the tuple.
                if t.seq as usize % self.threads == core {
                    let own_idx = t.side.index();
                    partitions[own_idx].push_back((t.seq, t.key));
                    if self.mode == HandshakeMode::Ibwj {
                        indexes[own_idx].insert(t.key, t.seq);
                    }
                    // Evict tuples this core owns that have expired from the
                    // global window.
                    let horizon = (t.seq + 1).saturating_sub(window_of(t.side) as u64);
                    while let Some(&(seq, key)) = partitions[own_idx].front() {
                        if seq < horizon {
                            partitions[own_idx].pop_front();
                            if self.mode == HandshakeMode::Ibwj {
                                let removed = indexes[own_idx].remove(key, seq);
                                debug_assert!(removed);
                            }
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        (matches, collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{canonical, reference_join};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64, 0u64];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, rng.gen_range(0..domain))
            })
            .collect()
    }

    #[test]
    fn nlwj_mode_matches_reference() {
        let tuples = random_tuples(2000, 250, 21);
        let predicate = BandPredicate::new(2);
        let expected = canonical(&reference_join(&tuples, predicate, 128, 128, false));
        assert!(!expected.is_empty());
        for threads in [1, 2, 4] {
            let op = HandshakeJoin::new(threads, 128, 128, predicate, HandshakeMode::Nlwj)
                .with_collected_results(true);
            let (stats, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
            assert_eq!(stats.results as usize, expected.len());
        }
    }

    #[test]
    fn ibwj_mode_matches_reference() {
        let tuples = random_tuples(3000, 400, 22);
        let predicate = BandPredicate::new(3);
        let expected = canonical(&reference_join(&tuples, predicate, 256, 256, false));
        assert!(!expected.is_empty());
        for threads in [1, 3, 8] {
            let op = HandshakeJoin::new(threads, 256, 256, predicate, HandshakeMode::Ibwj)
                .with_collected_results(true);
            let (_, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "threads = {threads}");
        }
    }

    #[test]
    fn asymmetric_windows() {
        let tuples = random_tuples(2500, 200, 23);
        let predicate = BandPredicate::new(1);
        let expected = canonical(&reference_join(&tuples, predicate, 32, 512, false));
        let op = HandshakeJoin::new(4, 32, 512, predicate, HandshakeMode::Ibwj)
            .with_collected_results(true);
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
    }

    #[test]
    fn counting_mode_reports_same_totals() {
        let tuples = random_tuples(2000, 300, 24);
        let predicate = BandPredicate::new(2);
        let counting = HandshakeJoin::new(4, 128, 128, predicate, HandshakeMode::Ibwj);
        let (stats, results) = counting.run(&tuples);
        assert!(results.is_empty(), "counting mode keeps no result tuples");
        let expected = reference_join(&tuples, predicate, 128, 128, false).len() as u64;
        assert_eq!(stats.results, expected);
        assert!(stats.million_tuples_per_second() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one join core")]
    fn zero_threads_rejected() {
        let _ = HandshakeJoin::new(0, 8, 8, BandPredicate::new(1), HandshakeMode::Nlwj);
    }
}
