//! Time-based index-based window join.
//!
//! The paper presents its operators on count-based sliding windows and notes
//! (§2.1) that "there is no technical limitation for applying our approach to
//! time-based sliding windows". This module substantiates that claim: a
//! band join over two streams whose windows are bounded by *event time*
//! rather than by a tuple count, indexed by the same PIM-Tree.
//!
//! The key observation is that a time-based window over an in-order stream
//! still expires tuples in arrival order, so the expiry horizon can be
//! expressed as a sequence number exactly like in the count-based case: the
//! operator keeps, per stream, the arrival timestamps of live tuples and
//! advances an `earliest_live` sequence pointer as the watermark moves. The
//! PIM-Tree neither knows nor cares whether that pointer was derived from a
//! count or from a timestamp.

use std::collections::VecDeque;

use pimtree_common::{BandPredicate, JoinResult, Key, PimConfig, Seq, StreamSide, Tuple};
use pimtree_core::PimTree;

use crate::stats::JoinRunStats;

/// A stream tuple carrying an event timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedStreamTuple {
    /// Which stream the tuple belongs to.
    pub side: StreamSide,
    /// Join attribute.
    pub key: Key,
    /// Event timestamp in arbitrary monotone units (e.g. milliseconds).
    /// Timestamps must be non-decreasing across the merged input sequence.
    pub timestamp: u64,
}

impl TimedStreamTuple {
    /// Creates a tuple for stream `R`.
    pub fn r(key: Key, timestamp: u64) -> Self {
        TimedStreamTuple {
            side: StreamSide::R,
            key,
            timestamp,
        }
    }

    /// Creates a tuple for stream `S`.
    pub fn s(key: Key, timestamp: u64) -> Self {
        TimedStreamTuple {
            side: StreamSide::S,
            key,
            timestamp,
        }
    }
}

/// Per-stream state of the time-based join: the PIM-Tree index plus the
/// timestamp bookkeeping needed to translate the time horizon into a
/// sequence-number horizon.
#[derive(Debug)]
struct TimedSide {
    index: PimTree,
    /// Arrival timestamps of tuples that have not yet been declared expired,
    /// front = oldest. Only `(seq, timestamp)` is kept; keys live in the index
    /// and are dropped from it lazily at merge time, exactly as in the
    /// count-based operator.
    live: VecDeque<(Seq, u64)>,
    /// Sequence number of the earliest tuple that is still inside the time
    /// window. Everything before it is expired.
    earliest_live: Seq,
    /// Next sequence number to assign on this stream.
    next_seq: Seq,
}

impl TimedSide {
    fn new(config: PimConfig) -> Self {
        TimedSide {
            index: PimTree::new(config),
            live: VecDeque::new(),
            earliest_live: 0,
            next_seq: 0,
        }
    }

    /// Advances the expiry horizon to `watermark - duration` (saturating) and
    /// returns the new earliest live sequence number.
    fn advance(&mut self, watermark: u64, duration: u64) -> Seq {
        let horizon = watermark.saturating_sub(duration);
        while let Some(&(seq, ts)) = self.live.front() {
            if ts < horizon {
                self.live.pop_front();
                self.earliest_live = seq + 1;
            } else {
                break;
            }
        }
        self.earliest_live
    }
}

/// A single-threaded time-based window band join indexed by PIM-Trees.
///
/// Tuples of both streams arrive as one sequence ordered by event time. Each
/// arriving tuple joins against the opposite stream's tuples whose timestamps
/// lie within the last `duration` time units, under the band predicate
/// `|R.x - S.x| <= diff`.
#[derive(Debug)]
pub struct TimeBasedIbwj {
    duration: u64,
    predicate: BandPredicate,
    sides: [TimedSide; 2],
    watermark: u64,
    results: u64,
    merges: u64,
    merge_time: std::time::Duration,
    tuples: u64,
}

impl TimeBasedIbwj {
    /// Creates the operator.
    ///
    /// `expected_tuples_per_window` sizes the PIM-Tree's merge threshold: it
    /// plays the role that the window length `w` plays for count-based
    /// windows and should be an estimate of how many tuples arrive per
    /// `duration` on one stream. It only affects performance (merge cadence),
    /// never correctness.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero, `expected_tuples_per_window` is zero, or
    /// the PIM-Tree configuration derived from it is invalid.
    pub fn new(duration: u64, expected_tuples_per_window: usize, predicate: BandPredicate) -> Self {
        Self::with_pim_config(
            duration,
            predicate,
            PimConfig::for_window(expected_tuples_per_window.max(1)),
        )
    }

    /// Creates the operator with an explicit PIM-Tree configuration.
    pub fn with_pim_config(duration: u64, predicate: BandPredicate, config: PimConfig) -> Self {
        assert!(duration > 0, "window duration must be positive");
        config.validate().expect("invalid PIM-Tree configuration");
        TimeBasedIbwj {
            duration,
            predicate,
            sides: [TimedSide::new(config), TimedSide::new(config)],
            watermark: 0,
            results: 0,
            merges: 0,
            merge_time: std::time::Duration::ZERO,
            tuples: 0,
        }
    }

    /// Window duration in event-time units.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Current event-time watermark (largest timestamp seen).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Number of live (non-expired) tuples currently held for `side`.
    pub fn live_len(&self, side: StreamSide) -> usize {
        self.sides[side.index()].live.len()
    }

    /// Processes one arriving tuple and appends its join results to `out`.
    ///
    /// Results pair the arriving tuple with every live tuple of the opposite
    /// stream whose key is within the band predicate, ordered by the matched
    /// tuple's arrival.
    ///
    /// # Panics
    ///
    /// Panics if `tuple.timestamp` is smaller than a previously seen
    /// timestamp (the operator expects an in-order stream; out-of-order
    /// streams need a reordering buffer in front of it).
    pub fn process(&mut self, tuple: TimedStreamTuple, out: &mut Vec<JoinResult>) {
        assert!(
            tuple.timestamp >= self.watermark,
            "timestamps must be non-decreasing (got {} after {})",
            tuple.timestamp,
            self.watermark
        );
        self.watermark = tuple.timestamp;
        self.tuples += 1;

        let own = tuple.side.index();
        let other = tuple.side.opposite().index();

        // Step 1: expire, then probe the opposite window.
        let duration = self.duration;
        let opposite_earliest = self.sides[other].advance(self.watermark, duration);
        let own_earliest = self.sides[own].advance(self.watermark, duration);
        let range = self.predicate.probe_range(tuple.key);
        let probe_seq = self.sides[own].next_seq;
        let probe_tuple = Tuple::new(tuple.side, probe_seq, tuple.key);
        let matched_side = tuple.side.opposite();
        let before = out.len();
        self.sides[other]
            .index
            .range_live(range, opposite_earliest, |e| {
                out.push(JoinResult::new(
                    probe_tuple,
                    Tuple::new(matched_side, e.seq, e.key),
                ));
            });
        out[before..].sort_by_key(|r| r.matched.seq);
        self.results += (out.len() - before) as u64;

        // Step 2 is implicit: expired tuples are dropped lazily at merge time,
        // bounded below by `own_earliest`.

        // Step 3: insert the tuple into its own window's index.
        let side = &mut self.sides[own];
        let seq = side.next_seq;
        side.next_seq += 1;
        side.index.insert(tuple.key, seq);
        side.live.push_back((seq, tuple.timestamp));
        if side.index.needs_merge() {
            let report = side.index.merge(own_earliest);
            self.merges += 1;
            self.merge_time += report.duration;
        }
    }

    /// Advances the watermark without a tuple (a punctuation), expiring old
    /// tuples on both sides.
    pub fn advance_watermark(&mut self, timestamp: u64) {
        assert!(
            timestamp >= self.watermark,
            "watermark cannot move backwards"
        );
        self.watermark = timestamp;
        let duration = self.duration;
        for side in &mut self.sides {
            side.advance(timestamp, duration);
        }
    }

    /// Runs the operator over an in-order tuple sequence.
    pub fn run(&mut self, tuples: &[TimedStreamTuple]) -> (JoinRunStats, Vec<JoinResult>) {
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        for &t in tuples {
            self.process(t, &mut out);
        }
        let elapsed = start.elapsed();
        let stats = JoinRunStats {
            tuples: self.tuples,
            results: self.results,
            elapsed,
            merges: self.merges,
            merge_time: self.merge_time,
            ..Default::default()
        };
        (stats, out)
    }
}

/// Brute-force time-based band join used to validate [`TimeBasedIbwj`].
pub fn reference_time_join(
    tuples: &[TimedStreamTuple],
    predicate: BandPredicate,
    duration: u64,
) -> Vec<JoinResult> {
    let mut live: [Vec<(Seq, Key, u64)>; 2] = [Vec::new(), Vec::new()];
    let mut next_seq = [0 as Seq; 2];
    let mut out = Vec::new();
    for &t in tuples {
        let own = t.side.index();
        let other = t.side.opposite().index();
        let horizon = t.timestamp.saturating_sub(duration);
        let probe = Tuple::new(t.side, next_seq[own], t.key);
        for &(seq, key, ts) in &live[other] {
            if ts >= horizon && predicate.matches(t.key, key) {
                out.push(JoinResult::new(
                    probe,
                    Tuple::new(t.side.opposite(), seq, key),
                ));
            }
        }
        live[own].push((next_seq[own], t.key, t.timestamp));
        next_seq[own] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::canonical;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config(window: usize) -> PimConfig {
        let mut c = PimConfig::for_window(window)
            .with_merge_ratio(0.5)
            .with_insertion_depth(2);
        c.css_fanout = 8;
        c.css_leaf_size = 8;
        c.btree_fanout = 8;
        c
    }

    fn random_timed(n: usize, domain: i64, max_gap: u64, seed: u64) -> Vec<TimedStreamTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = 0u64;
        (0..n)
            .map(|_| {
                ts += rng.gen_range(0..=max_gap);
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                TimedStreamTuple {
                    side,
                    key: rng.gen_range(0..domain),
                    timestamp: ts,
                }
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_streams() {
        for seed in [1, 2, 3] {
            let tuples = random_timed(3000, 300, 4, seed);
            let predicate = BandPredicate::new(2);
            let duration = 200;
            let expected = canonical(&reference_time_join(&tuples, predicate, duration));
            assert!(!expected.is_empty());
            let mut op = TimeBasedIbwj::with_pim_config(duration, predicate, small_config(256));
            let (stats, results) = op.run(&tuples);
            assert_eq!(canonical(&results), expected, "seed {seed}");
            assert_eq!(stats.results as usize, expected.len());
            assert!(stats.merges > 0, "the merge path must be exercised");
        }
    }

    #[test]
    fn only_tuples_within_the_duration_match() {
        let predicate = BandPredicate::new(0);
        let mut op = TimeBasedIbwj::with_pim_config(100, predicate, small_config(64));
        let mut out = Vec::new();
        op.process(TimedStreamTuple::r(42, 0), &mut out);
        assert!(out.is_empty());
        // Within the window: matches.
        op.process(TimedStreamTuple::s(42, 50), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // Exactly at the horizon boundary (timestamp >= watermark - duration)
        // the old tuple is still live.
        op.process(TimedStreamTuple::s(42, 100), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // At t=150 the horizon is 50, so both S tuples (t=50 and t=100) are
        // still live and match the probing R tuple.
        op.process(TimedStreamTuple::r(42, 150), &mut out);
        assert_eq!(out.len(), 2, "both S tuples (t=50, t=100) are still live");
        out.clear();
        op.process(TimedStreamTuple::r(42, 500), &mut out);
        assert!(out.is_empty(), "everything has expired by t=500");
    }

    #[test]
    fn watermark_punctuation_expires_tuples() {
        let predicate = BandPredicate::new(1);
        let mut op = TimeBasedIbwj::with_pim_config(10, predicate, small_config(64));
        let mut out = Vec::new();
        op.process(TimedStreamTuple::r(5, 0), &mut out);
        op.process(TimedStreamTuple::r(6, 1), &mut out);
        assert_eq!(op.live_len(StreamSide::R), 2);
        op.advance_watermark(100);
        assert_eq!(op.live_len(StreamSide::R), 0);
        op.process(TimedStreamTuple::s(5, 120), &mut out);
        assert!(
            out.is_empty(),
            "expired tuples must not match after a punctuation"
        );
    }

    #[test]
    fn burst_of_identical_timestamps_is_handled() {
        let predicate = BandPredicate::new(1);
        let duration = 5;
        let tuples: Vec<TimedStreamTuple> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    TimedStreamTuple::r(i as Key % 20, 7)
                } else {
                    TimedStreamTuple::s(i as Key % 20, 7)
                }
            })
            .collect();
        let expected = canonical(&reference_time_join(&tuples, predicate, duration));
        let mut op = TimeBasedIbwj::with_pim_config(duration, predicate, small_config(64));
        let (_, results) = op.run(&tuples);
        assert_eq!(canonical(&results), expected);
    }

    #[test]
    fn results_are_ordered_by_matched_arrival_within_a_probe() {
        let predicate = BandPredicate::new(10);
        let mut op = TimeBasedIbwj::with_pim_config(1000, predicate, small_config(64));
        let mut out = Vec::new();
        for (i, key) in [5i64, 3, 9, 1].into_iter().enumerate() {
            op.process(TimedStreamTuple::r(key, i as u64), &mut out);
        }
        out.clear();
        op.process(TimedStreamTuple::s(4, 10), &mut out);
        let seqs: Vec<Seq> = out.iter().map(|r| r.matched.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_timestamps_are_rejected() {
        let mut op = TimeBasedIbwj::new(10, 64, BandPredicate::new(1));
        let mut out = Vec::new();
        op.process(TimedStreamTuple::r(1, 100), &mut out);
        op.process(TimedStreamTuple::r(2, 50), &mut out);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let _ = TimeBasedIbwj::new(0, 64, BandPredicate::new(1));
    }
}
