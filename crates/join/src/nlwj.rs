//! Single-threaded nested-loop window join (NLWJ): the index-free baseline.

use pimtree_common::{BandPredicate, JoinResult, StreamSide, Tuple};
use pimtree_window::SlidingWindow;

use crate::ibwj::SingleThreadJoin;

/// The nested-loop window join: every arriving tuple is compared against every
/// live tuple of the opposite window. Its per-tuple cost is linear in the
/// window size, which is why Figure 8a shows it degrading steeply as the
/// window grows.
#[derive(Debug)]
pub struct NlwjOperator {
    windows: [SlidingWindow; 2],
    predicate: BandPredicate,
    self_join: bool,
}

impl NlwjOperator {
    /// Creates a two-way NLWJ with the given window sizes.
    pub fn new(window_r: usize, window_s: usize, predicate: BandPredicate) -> Self {
        NlwjOperator {
            windows: [
                SlidingWindow::with_default_slack(window_r),
                SlidingWindow::with_default_slack(window_s),
            ],
            predicate,
            self_join: false,
        }
    }

    /// Creates a self-join NLWJ: each tuple probes the window of its own
    /// stream.
    pub fn new_self_join(window: usize, predicate: BandPredicate) -> Self {
        NlwjOperator {
            windows: [
                SlidingWindow::with_default_slack(window),
                SlidingWindow::with_default_slack(1),
            ],
            predicate,
            self_join: true,
        }
    }
}

impl SingleThreadJoin for NlwjOperator {
    fn name(&self) -> String {
        "nlwj".to_string()
    }

    fn process(&mut self, tuple: Tuple, out: &mut Vec<JoinResult>) {
        let (probe_idx, own_idx, matched_side) = if self.self_join {
            (0, 0, StreamSide::R)
        } else {
            (
                tuple.side.opposite().index(),
                tuple.side.index(),
                tuple.side.opposite(),
            )
        };
        // Step 1: scan the opposite live window.
        let probe_window = &self.windows[probe_idx];
        let bounds = probe_window.bounds();
        let range = self.predicate.probe_range(tuple.key);
        probe_window.scan_linear(
            bounds.earliest,
            bounds.latest_exclusive,
            range,
            |seq, key| {
                out.push(JoinResult::new(tuple, Tuple::new(matched_side, seq, key)));
            },
        );
        // Steps 2 and 3: slide the own window (expiry is implicit for NLWJ).
        let seq = self.windows[own_idx]
            .append(tuple.key)
            .expect("sliding window slack exhausted");
        debug_assert_eq!(
            seq, tuple.seq,
            "input sequence numbers must match arrival order"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{canonical, reference_join};
    use pimtree_common::Tuple;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, domain: i64, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = [0u64, 0u64];
        (0..n)
            .map(|_| {
                let side = if rng.gen::<bool>() {
                    StreamSide::R
                } else {
                    StreamSide::S
                };
                let seq = seqs[side.index()];
                seqs[side.index()] += 1;
                Tuple::new(side, seq, rng.gen_range(0..domain))
            })
            .collect()
    }

    #[test]
    fn matches_reference_join_two_way() {
        let tuples = random_tuples(2000, 300, 1);
        let predicate = BandPredicate::new(2);
        let mut op = NlwjOperator::new(128, 128, predicate);
        let (_, results) = op.run(&tuples, true);
        let expected = reference_join(&tuples, predicate, 128, 128, false);
        assert!(!expected.is_empty(), "test workload must produce matches");
        assert_eq!(canonical(&results), canonical(&expected));
    }

    #[test]
    fn matches_reference_join_self_join() {
        let tuples: Vec<Tuple> = {
            let mut rng = StdRng::seed_from_u64(2);
            (0..1500u64)
                .map(|i| Tuple::r(i, rng.gen_range(0..200)))
                .collect()
        };
        let predicate = BandPredicate::new(1);
        let mut op = NlwjOperator::new_self_join(64, predicate);
        let (_, results) = op.run(&tuples, true);
        let expected = reference_join(&tuples, predicate, 64, 64, true);
        assert_eq!(canonical(&results), canonical(&expected));
    }

    #[test]
    fn results_preserve_arrival_order() {
        let tuples = random_tuples(500, 50, 3);
        let predicate = BandPredicate::new(3);
        let mut op = NlwjOperator::new(64, 64, predicate);
        let (_, results) = op.run(&tuples, true);
        // The probing tuple's global position must be non-decreasing.
        let pos_of = |t: &Tuple| {
            tuples
                .iter()
                .position(|x| x.side == t.side && x.seq == t.seq)
                .unwrap()
        };
        let positions: Vec<usize> = results.iter().map(|r| pos_of(&r.probe)).collect();
        assert!(positions.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn run_reports_throughput_stats() {
        let tuples = random_tuples(1000, 1000, 4);
        let mut op = NlwjOperator::new(64, 64, BandPredicate::new(0));
        let (stats, _) = op.run(&tuples, false);
        assert_eq!(stats.tuples, 1000);
        assert!(stats.elapsed.as_nanos() > 0);
        assert!(stats.million_tuples_per_second() > 0.0);
    }
}
