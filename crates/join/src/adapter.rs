//! Adapters that give every index structure a uniform face for the
//! single-threaded index-based window join.
//!
//! The operators in [`crate::ibwj`] only need four things from an index:
//! insert a new tuple, react to a tuple's expiry, answer a range probe, and
//! perform periodic maintenance (the merge of the two-stage trees). How each
//! index maps onto these four calls is exactly the difference the paper's §2
//! cost analysis works out:
//!
//! * the **B+-Tree** and the **Bw-Tree-style** index delete expired tuples
//!   eagerly, one by one;
//! * the **chained index** ignores individual expiries and drops whole
//!   sub-indexes as a side effect of inserts;
//! * the **IM-Tree** and **PIM-Tree** ignore individual expiries and drop
//!   expired tuples in bulk during their merge, which shows up as the
//!   `maintain` call.

use pimtree_btree::{BTreeIndex, Entry};
use pimtree_bwtree::BwTreeIndex;
use pimtree_chained::{ChainVariant, ChainedIndex};
use pimtree_common::{
    CostBreakdown, Key, KeyRange, PimConfig, ProbeConfig, ProbeCounters, Seq, Step, StepTimer,
};
use pimtree_core::{ImTree, MergeReport, PimTree};

/// Uniform interface over the sliding-window index structures, used by the
/// single-threaded join operators.
pub trait WindowIndexAdapter {
    /// Short name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Inserts the newly arrived tuple.
    fn insert(&mut self, key: Key, seq: Seq);

    /// Reacts to the expiry of a tuple. Eager-deletion indexes remove the
    /// entry; merge-based and chain-based indexes do nothing.
    fn on_expire(&mut self, key: Key, seq: Seq);

    /// Calls `f` for candidate entries with key in `range`. Entries of
    /// expired tuples may be reported; the caller filters by sequence number.
    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry));

    /// Batched range probe: calls `f(i, entry)` for candidate entries with
    /// key in `ranges[i]`, entries of each range in the same order as
    /// [`WindowIndexAdapter::probe`] would deliver them.
    ///
    /// The default implementation answers each range through the scalar
    /// probe (recorded in `counters.scalar_probes`); indexes with a genuine
    /// group probe — the PIM-Tree's prefetched CSS-Tree descent — override
    /// it. `probe` carries the per-level prefetch lookahead and the
    /// interleaved-descent ring width.
    fn probe_batch(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut ProbeCounters,
        f: &mut dyn FnMut(usize, Entry),
    ) {
        let _ = probe;
        for (i, &range) in ranges.iter().enumerate() {
            counters.scalar_probes += 1;
            self.probe(range, &mut |e| f(i, e));
        }
    }

    /// Scalar batch probe: answers each of `ranges` with one scalar descent
    /// (no grouping, deduplication or prefetching), calling `f(i, entry)`
    /// for candidate entries with key in `ranges[i]` in the same per-range
    /// order as [`WindowIndexAdapter::probe`].
    ///
    /// The default implementation is exactly a loop of scalar probes;
    /// indexes with partitioned mutable state — the PIM-Tree — override it
    /// to batch the *partition routing* (one mutable-partition lock per
    /// unique partition per call instead of one per range, recorded in
    /// `counters.ti_partition_locks`) while keeping the per-range descents
    /// scalar (or interleaving them when `probe.interleave >= 2`).
    fn probe_ranges_scalar(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut ProbeCounters,
        f: &mut dyn FnMut(usize, Entry),
    ) {
        let _ = (probe, counters);
        for (i, &range) in ranges.iter().enumerate() {
            self.probe(range, &mut |e| f(i, e));
        }
    }

    /// Periodic maintenance (the merge of the two-stage trees). Returns a
    /// report when maintenance actually ran.
    fn maintain(&mut self, earliest_live: Seq) -> Option<MergeReport>;

    /// Instrumented probe used by the per-step cost experiment: returns the
    /// live matches and charges traversal/scan time to `breakdown`. The
    /// default implementation charges the whole probe to [`Step::Search`].
    fn probe_instrumented(
        &self,
        range: KeyRange,
        earliest_live: Seq,
        breakdown: &mut CostBreakdown,
    ) -> Vec<Entry> {
        let timer = StepTimer::start(Step::Search);
        let mut out = Vec::new();
        self.probe(range, &mut |e| {
            if e.seq >= earliest_live {
                out.push(e);
            }
        });
        timer.finish(breakdown);
        out
    }

    /// Approximate number of bytes a probe touches per visited entry, used
    /// for the logical memory-traffic accounting.
    fn entry_bytes(&self) -> u64 {
        std::mem::size_of::<Entry>() as u64
    }
}

// ---------------------------------------------------------------- B+-Tree

/// Adapter over the classic B+-Tree with eager expiry deletion (§2.2.1).
#[derive(Debug, Default)]
pub struct BTreeAdapter {
    tree: BTreeIndex,
}

impl BTreeAdapter {
    /// Creates an adapter with the default fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an adapter with an explicit fan-out.
    pub fn with_fanout(fanout: usize) -> Self {
        BTreeAdapter {
            tree: BTreeIndex::with_fanout(fanout),
        }
    }

    /// Read access to the underlying tree (for stats and tests).
    pub fn tree(&self) -> &BTreeIndex {
        &self.tree
    }
}

impl WindowIndexAdapter for BTreeAdapter {
    fn name(&self) -> &'static str {
        "b+tree"
    }

    fn insert(&mut self, key: Key, seq: Seq) {
        self.tree.insert(key, seq);
    }

    fn on_expire(&mut self, key: Key, seq: Seq) {
        let removed = self.tree.remove(key, seq);
        debug_assert!(
            removed,
            "expired tuple (key={key}, seq={seq}) was not indexed"
        );
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        self.tree.range_for_each(range, f);
    }

    fn maintain(&mut self, _earliest_live: Seq) -> Option<MergeReport> {
        None
    }

    fn probe_instrumented(
        &self,
        range: KeyRange,
        earliest_live: Seq,
        breakdown: &mut CostBreakdown,
    ) -> Vec<Entry> {
        let timer = StepTimer::start(Step::Search);
        let first = self.tree.first_at_or_after(range.lo);
        timer.finish(breakdown);
        let timer = StepTimer::start(Step::Scan);
        let mut out = Vec::new();
        if first.is_some() {
            self.tree.range_for_each(range, |e| {
                if e.seq >= earliest_live {
                    out.push(e);
                }
            });
        }
        timer.finish(breakdown);
        out
    }
}

// ----------------------------------------------------------- chained index

/// Adapter over the chained index (§2.2.2).
#[derive(Debug)]
pub struct ChainedAdapter {
    chain: ChainedIndex,
}

impl ChainedAdapter {
    /// Creates a chained-index adapter.
    pub fn new(variant: ChainVariant, window_size: usize, chain_length: usize) -> Self {
        ChainedAdapter {
            chain: ChainedIndex::new(variant, window_size, chain_length),
        }
    }

    /// Read access to the underlying chain.
    pub fn chain(&self) -> &ChainedIndex {
        &self.chain
    }
}

impl WindowIndexAdapter for ChainedAdapter {
    fn name(&self) -> &'static str {
        match self.chain.variant() {
            ChainVariant::BChain => "b-chain",
            ChainVariant::IbChain => "ib-chain",
        }
    }

    fn insert(&mut self, key: Key, seq: Seq) {
        self.chain.insert(key, seq);
    }

    fn on_expire(&mut self, _key: Key, _seq: Seq) {
        // Coarse-grained disposal: whole sub-indexes are dropped as the chain
        // rotates; individual expiries are ignored.
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        self.chain.range_for_each(range, f);
    }

    fn maintain(&mut self, _earliest_live: Seq) -> Option<MergeReport> {
        None
    }
}

// ----------------------------------------------------------------- IM-Tree

/// Adapter over the IM-Tree (§3.2).
#[derive(Debug)]
pub struct ImTreeAdapter {
    tree: ImTree,
}

impl ImTreeAdapter {
    /// Creates an IM-Tree adapter.
    pub fn new(config: PimConfig) -> Self {
        ImTreeAdapter {
            tree: ImTree::new(config),
        }
    }

    /// Read access to the underlying tree.
    pub fn tree(&self) -> &ImTree {
        &self.tree
    }
}

impl WindowIndexAdapter for ImTreeAdapter {
    fn name(&self) -> &'static str {
        "im-tree"
    }

    fn insert(&mut self, key: Key, seq: Seq) {
        self.tree.insert(key, seq);
    }

    fn on_expire(&mut self, _key: Key, _seq: Seq) {
        // Expired tuples are dropped in bulk by the merge.
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        self.tree.range_for_each(range, f);
    }

    fn maintain(&mut self, earliest_live: Seq) -> Option<MergeReport> {
        if self.tree.needs_merge() {
            Some(self.tree.merge(earliest_live))
        } else {
            None
        }
    }

    fn probe_instrumented(
        &self,
        range: KeyRange,
        earliest_live: Seq,
        breakdown: &mut CostBreakdown,
    ) -> Vec<Entry> {
        self.tree
            .probe_with_breakdown(range, earliest_live, breakdown)
    }
}

// ---------------------------------------------------------------- PIM-Tree

/// Adapter over the PIM-Tree (§3.3) for single-threaded use; the parallel
/// engine uses the [`PimTree`] directly.
#[derive(Debug)]
pub struct PimTreeAdapter {
    tree: PimTree,
}

impl PimTreeAdapter {
    /// Creates a PIM-Tree adapter.
    pub fn new(config: PimConfig) -> Self {
        PimTreeAdapter {
            tree: PimTree::new(config),
        }
    }

    /// Read access to the underlying tree.
    pub fn tree(&self) -> &PimTree {
        &self.tree
    }
}

impl WindowIndexAdapter for PimTreeAdapter {
    fn name(&self) -> &'static str {
        "pim-tree"
    }

    fn insert(&mut self, key: Key, seq: Seq) {
        self.tree.insert(key, seq);
    }

    fn on_expire(&mut self, _key: Key, _seq: Seq) {
        // Expired tuples are dropped in bulk by the merge.
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        self.tree.range_for_each(range, f);
    }

    fn probe_batch(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut ProbeCounters,
        f: &mut dyn FnMut(usize, Entry),
    ) {
        self.tree.probe_batch(ranges, probe, counters, f);
    }

    fn probe_ranges_scalar(
        &self,
        ranges: &[KeyRange],
        probe: &ProbeConfig,
        counters: &mut ProbeCounters,
        f: &mut dyn FnMut(usize, Entry),
    ) {
        self.tree.probe_ranges_scalar(ranges, probe, counters, f);
    }

    fn maintain(&mut self, earliest_live: Seq) -> Option<MergeReport> {
        if self.tree.needs_merge() {
            Some(self.tree.merge(earliest_live))
        } else {
            None
        }
    }

    fn probe_instrumented(
        &self,
        range: KeyRange,
        earliest_live: Seq,
        breakdown: &mut CostBreakdown,
    ) -> Vec<Entry> {
        self.tree
            .probe_with_breakdown(range, earliest_live, breakdown)
    }
}

// ---------------------------------------------------------------- Bw-Tree

/// Adapter over the Bw-Tree-style concurrent index, used single-threaded for
/// comparison (the multithreaded runs go through the parallel engine).
#[derive(Debug, Default)]
pub struct BwTreeAdapter {
    tree: BwTreeIndex,
}

impl BwTreeAdapter {
    /// Creates a Bw-Tree adapter with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the underlying index.
    pub fn tree(&self) -> &BwTreeIndex {
        &self.tree
    }
}

impl WindowIndexAdapter for BwTreeAdapter {
    fn name(&self) -> &'static str {
        "bw-tree"
    }

    fn insert(&mut self, key: Key, seq: Seq) {
        self.tree.insert(key, seq);
    }

    fn on_expire(&mut self, key: Key, seq: Seq) {
        let removed = self.tree.remove(key, seq);
        debug_assert!(
            removed,
            "expired tuple (key={key}, seq={seq}) was not indexed"
        );
    }

    fn probe(&self, range: KeyRange, f: &mut dyn FnMut(Entry)) {
        self.tree.range_for_each(range, f);
    }

    fn maintain(&mut self, _earliest_live: Seq) -> Option<MergeReport> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(adapter: &mut dyn WindowIndexAdapter) {
        // Simulate a small sliding window of 64 tuples with periodic probes.
        let w = 64u64;
        let key_of = |i: u64| ((i * 37) % 1000) as Key;
        for i in 0..512u64 {
            // Probe before updating, like the join operator does.
            let range = KeyRange::new(key_of(i) - 5, key_of(i) + 5);
            let earliest = (i + 1).saturating_sub(w);
            let mut matches = Vec::new();
            adapter.probe(range, &mut |e| {
                if e.seq >= earliest && e.seq < i {
                    matches.push(e);
                }
            });
            for e in &matches {
                assert!(range.contains(e.key));
                assert_eq!(e.key, key_of(e.seq), "index returned a corrupted entry");
            }
            if i >= w {
                adapter.on_expire(key_of(i - w), i - w);
            }
            adapter.insert(key_of(i), i);
            adapter.maintain(i.saturating_sub(w) + 1);
        }
    }

    #[test]
    fn all_adapters_support_the_window_protocol() {
        let pim_cfg = PimConfig::for_window(64)
            .with_merge_ratio(0.5)
            .with_insertion_depth(2);
        let mut adapters: Vec<Box<dyn WindowIndexAdapter>> = vec![
            Box::new(BTreeAdapter::new()),
            Box::new(ChainedAdapter::new(ChainVariant::BChain, 64, 3)),
            Box::new(ChainedAdapter::new(ChainVariant::IbChain, 64, 3)),
            Box::new(ImTreeAdapter::new(pim_cfg)),
            Box::new(PimTreeAdapter::new(pim_cfg)),
            Box::new(BwTreeAdapter::new()),
        ];
        for a in adapters.iter_mut() {
            exercise(a.as_mut());
        }
    }

    #[test]
    fn probes_agree_across_adapters() {
        // All adapters must return exactly the same live matches.
        let w = 128u64;
        let pim_cfg = PimConfig::for_window(128)
            .with_merge_ratio(0.25)
            .with_insertion_depth(2);
        let mut adapters: Vec<Box<dyn WindowIndexAdapter>> = vec![
            Box::new(BTreeAdapter::new()),
            Box::new(ChainedAdapter::new(ChainVariant::BChain, 128, 3)),
            Box::new(ChainedAdapter::new(ChainVariant::IbChain, 128, 3)),
            Box::new(ImTreeAdapter::new(pim_cfg)),
            Box::new(PimTreeAdapter::new(pim_cfg)),
            Box::new(BwTreeAdapter::new()),
        ];
        let key_of = |i: u64| ((i * 257 + 11) % 4096) as Key;
        for i in 0..1024u64 {
            if i >= w {
                for a in adapters.iter_mut() {
                    a.on_expire(key_of(i - w), i - w);
                }
            }
            for a in adapters.iter_mut() {
                a.insert(key_of(i), i);
                a.maintain(i.saturating_sub(w) + 1);
            }
            if i % 64 == 63 {
                let range = KeyRange::new(1000, 1200);
                let earliest = (i + 1).saturating_sub(w);
                let mut reference: Option<Vec<(Key, Seq)>> = None;
                for a in adapters.iter() {
                    let mut got = Vec::new();
                    a.probe(range, &mut |e| {
                        if e.seq >= earliest {
                            got.push((e.key, e.seq));
                        }
                    });
                    got.sort_unstable();
                    got.dedup();
                    match &reference {
                        None => reference = Some(got),
                        Some(r) => assert_eq!(&got, r, "{} disagrees at i={i}", a.name()),
                    }
                }
            }
        }
    }

    #[test]
    fn instrumented_probe_matches_plain_probe() {
        let pim_cfg = PimConfig::for_window(256).with_insertion_depth(2);
        let mut adapters: Vec<Box<dyn WindowIndexAdapter>> = vec![
            Box::new(BTreeAdapter::new()),
            Box::new(ImTreeAdapter::new(pim_cfg)),
            Box::new(PimTreeAdapter::new(pim_cfg)),
            Box::new(BwTreeAdapter::new()),
        ];
        for a in adapters.iter_mut() {
            for i in 0..256u64 {
                a.insert((i * 3) as Key, i);
            }
            a.maintain(0);
        }
        let range = KeyRange::new(100, 200);
        for a in adapters.iter() {
            let mut breakdown = CostBreakdown::new();
            let mut instrumented = a.probe_instrumented(range, 10, &mut breakdown);
            let mut plain = Vec::new();
            a.probe(range, &mut |e| {
                if e.seq >= 10 {
                    plain.push(e);
                }
            });
            instrumented.sort();
            plain.sort();
            assert_eq!(instrumented, plain, "{}", a.name());
            assert!(breakdown.count(Step::Search) >= 1, "{}", a.name());
        }
    }

    #[test]
    fn batched_probe_matches_scalar_probe_for_every_adapter() {
        let pim_cfg = PimConfig::for_window(256).with_insertion_depth(2);
        let mut adapters: Vec<Box<dyn WindowIndexAdapter>> = vec![
            Box::new(BTreeAdapter::new()),
            Box::new(ChainedAdapter::new(ChainVariant::BChain, 256, 3)),
            Box::new(ImTreeAdapter::new(pim_cfg)),
            Box::new(PimTreeAdapter::new(pim_cfg)),
            Box::new(BwTreeAdapter::new()),
        ];
        for a in adapters.iter_mut() {
            for i in 0..256u64 {
                a.insert(((i * 7) % 300) as Key, i);
            }
            a.maintain(0);
            // Keep some entries in the PIM/IM mutable component as well.
            for i in 256..300u64 {
                a.insert(((i * 7) % 300) as Key, i);
            }
        }
        let ranges = [
            KeyRange::new(50, 80),
            KeyRange::new(50, 80), // duplicate
            KeyRange::new(-10, -1),
            KeyRange::new(290, 400),
        ];
        for a in adapters.iter() {
            // Every adapter must answer identically at every ring width,
            // interleaved or not (non-PIM backends simply ignore the knob).
            for interleave in [0usize, 4, 8] {
                let probe = ProbeConfig::default().with_interleave(interleave);
                let mut counters = ProbeCounters::default();
                let mut batched: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
                a.probe_batch(&ranges, &probe, &mut counters, &mut |i, e| {
                    batched[i].push(e)
                });
                for (range, got) in ranges.iter().zip(&batched) {
                    let mut scalar = Vec::new();
                    a.probe(*range, &mut |e| scalar.push(e));
                    assert_eq!(
                        got,
                        &scalar,
                        "{} range {range:?} interleave {interleave}",
                        a.name()
                    );
                }
            }
        }
        // The PIM-Tree adapter routes the batch through the real group probe.
        let pim = PimTreeAdapter::new(pim_cfg);
        let mut counters = ProbeCounters::default();
        pim.probe_batch(
            &ranges,
            &ProbeConfig::default(),
            &mut counters,
            &mut |_, _| {},
        );
        assert_eq!(counters.batches, 1);
        assert_eq!(counters.scalar_probes, 0);
        // The B+-Tree adapter falls back to scalar probes.
        let bt = BTreeAdapter::new();
        let mut counters = ProbeCounters::default();
        bt.probe_batch(
            &ranges,
            &ProbeConfig::default(),
            &mut counters,
            &mut |_, _| {},
        );
        assert_eq!(counters.scalar_probes, ranges.len() as u64);
    }

    #[test]
    fn scalar_ranges_probe_matches_scalar_probe_for_every_adapter() {
        let pim_cfg = PimConfig::for_window(256).with_insertion_depth(2);
        let mut adapters: Vec<Box<dyn WindowIndexAdapter>> = vec![
            Box::new(BTreeAdapter::new()),
            Box::new(ChainedAdapter::new(ChainVariant::BChain, 256, 3)),
            Box::new(ImTreeAdapter::new(pim_cfg)),
            Box::new(PimTreeAdapter::new(pim_cfg)),
            Box::new(BwTreeAdapter::new()),
        ];
        for a in adapters.iter_mut() {
            for i in 0..256u64 {
                a.insert(((i * 7) % 300) as Key, i);
            }
            a.maintain(0);
            for i in 256..300u64 {
                a.insert(((i * 7) % 300) as Key, i);
            }
        }
        let ranges = [
            KeyRange::new(50, 120),
            KeyRange::new(80, 160), // overlaps the first range's partitions
            KeyRange::new(-10, -1),
            KeyRange::new(290, 400),
        ];
        for a in adapters.iter() {
            for interleave in [0usize, 8] {
                let probe = ProbeConfig::scalar().with_interleave(interleave);
                let mut counters = ProbeCounters::default();
                let mut batched: Vec<Vec<Entry>> = vec![Vec::new(); ranges.len()];
                a.probe_ranges_scalar(&ranges, &probe, &mut counters, &mut |i, e| {
                    batched[i].push(e)
                });
                for (range, got) in ranges.iter().zip(&batched) {
                    let mut scalar = Vec::new();
                    a.probe(*range, &mut |e| scalar.push(e));
                    assert_eq!(
                        got,
                        &scalar,
                        "{} range {range:?} interleave {interleave}",
                        a.name()
                    );
                }
                assert_eq!(
                    counters.batches,
                    0,
                    "{}: the scalar path never group-descends",
                    a.name()
                );
            }
        }
        // The PIM-Tree adapter batches the mutable-side partition locks; the
        // overlapping ranges above must share at least one acquisition.
        let pim = PimTreeAdapter::new(pim_cfg);
        for i in 0..256u64 {
            pim.tree().insert(((i * 7) % 300) as Key, i);
        }
        pim.tree().merge(0);
        for i in 256..300u64 {
            pim.tree().insert(((i * 7) % 300) as Key, i);
        }
        let mut counters = ProbeCounters::default();
        pim.probe_ranges_scalar(
            &ranges,
            &ProbeConfig::scalar(),
            &mut counters,
            &mut |_, _| {},
        );
        assert!(counters.ti_range_visits > 0);
        assert!(counters.ti_partition_locks <= counters.ti_range_visits);
    }

    #[test]
    fn merge_based_adapters_report_merges() {
        let cfg = PimConfig::for_window(32).with_merge_ratio(0.5);
        let mut im = ImTreeAdapter::new(cfg);
        let mut pim = PimTreeAdapter::new(cfg);
        let mut im_merges = 0;
        let mut pim_merges = 0;
        for i in 0..64u64 {
            im.insert(i as Key, i);
            pim.insert(i as Key, i);
            if im.maintain(0).is_some() {
                im_merges += 1;
            }
            if pim.maintain(0).is_some() {
                pim_merges += 1;
            }
        }
        assert_eq!(im_merges, 4);
        assert_eq!(pim_merges, 4);
        // Eager indexes never merge.
        let mut b = BTreeAdapter::new();
        b.insert(1, 1);
        assert!(b.maintain(0).is_none());
    }
}
