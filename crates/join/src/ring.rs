//! Lock-free MPMC task ring for the parallel join engine.
//!
//! The ring replaces the engine's original `Mutex<VecDeque>` work queue: every
//! coordination point — ingestion, task acquisition, result publication and
//! in-order propagation — is a handful of atomic operations on a fixed array
//! of slots, so no worker ever blocks behind another worker's critical
//! section.
//!
//! # Slot life cycle
//!
//! Each slot moves through four states, always in this order:
//!
//! ```text
//! Empty ──ingest──▶ Ingested ──claim──▶ Active ──publish──▶ Completed ──drain──▶ Empty
//! ```
//!
//! Slots are addressed by a monotonically increasing *global id* (`gid`); slot
//! `gid` lives at array index `gid & (capacity - 1)`, so ids double as
//! wraparound-free positions and the state field disambiguates laps.
//!
//! # Roles and their synchronisation
//!
//! * **Ingest** is serialised by a try-lock *ingest token*: whichever worker
//!   wins the token batch-fills empty slots at `tail` and publishes them with
//!   a release store of the slot state followed by a release store of `tail`.
//!   Workers that lose the token simply skip ingestion — a supplier already
//!   exists.
//! * **Acquisition** is a bounded ticket claim: workers advance `next_claim`
//!   towards `tail` with a CAS loop, claiming up to `task_size` consecutive
//!   ids per attempt. A successful CAS transfers exclusive ownership of the
//!   claimed slots; failed attempts retry against the observed value, so the
//!   loop is lock-free (some worker always makes progress).
//! * **Publication** needs no shared counter at all: the owning worker writes
//!   the slot's results and releases them with a single store of the slot
//!   state to `Completed`.
//! * **Propagation** is serialised by a try-lock *drain token*: the winner
//!   advances the `head` cursor over the completed prefix, emitting each
//!   slot's results in arrival order and recycling the slot to `Empty`.
//!   Losers go back to useful work — exactly the paper's test-and-set
//!   propagation scheme, minus the queue mutex it used to guard.
//!
//! # Invariants
//!
//! * `head <= next_claim <= tail` and `tail - head <= capacity`.
//! * Slot `gid` is written by at most one thread at any instant: the ingest
//!   token holder while `Empty`, the claiming worker between `Ingested` and
//!   `Completed`, the drain token holder while recycling.
//! * `tail` is written only under the ingest token, `head` only under the
//!   drain token; both are read lock-free by everyone.
//! * Results leave the ring in `gid` order — the drain cursor never skips a
//!   slot, so arrival-order propagation is structural, not scheduled.

use std::time::Duration;

use crossbeam::utils::CachePadded;
use pimtree_common::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use pimtree_common::sync::Mutex;
use pimtree_common::{JoinResult, RingConfig, StreamSide, Tuple};
use pimtree_window::WindowBounds;

use crate::stats::RingCounters;

const EMPTY: u8 = 0;
const INGESTED: u8 = 1;
const ACTIVE: u8 = 2;
const COMPLETED: u8 = 3;

/// One ring slot. All scalar fields are plain atomics written with relaxed
/// ordering and published/consumed through the `state` field's release/acquire
/// pair, so the whole structure is safe Rust with no `UnsafeCell`.
struct Slot {
    state: AtomicU8,
    side: AtomicU8,
    seq: AtomicU64,
    key: AtomicI64,
    bound_earliest: AtomicU64,
    bound_latest: AtomicU64,
    result_count: AtomicU64,
    /// Global arrival stamp of the ingested tuple. Within a single ring it
    /// equals the slot's gid; under the sharded engine it is the position in
    /// the *global* arrival order, which the cross-shard merge cursor uses to
    /// interleave per-shard drains back into one ordered stream.
    arrival: AtomicU64,
    /// Collected matches; only touched when result collection is enabled
    /// (tests), and then only by the slot's current owner, so the mutex is
    /// uncontended by construction.
    results: Mutex<Vec<JoinResult>>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(EMPTY),
            side: AtomicU8::new(0),
            seq: AtomicU64::new(0),
            key: AtomicI64::new(0),
            bound_earliest: AtomicU64::new(0),
            bound_latest: AtomicU64::new(0),
            result_count: AtomicU64::new(0),
            arrival: AtomicU64::new(0),
            results: Mutex::new(Vec::new()),
        }
    }
}

/// A tuple claimed from the ring together with its slot id and the opposite
/// window's boundary snapshot captured at ingestion.
#[derive(Debug, Clone, Copy)]
pub struct ClaimedTask {
    /// Global slot id of the claim; passed back to [`TaskRing::complete`].
    pub gid: u64,
    /// The claimed tuple.
    pub tuple: Tuple,
    /// Boundary snapshot of the opposite window, taken at ingestion.
    pub bounds: WindowBounds,
}

/// The lock-free MPMC task ring.
pub struct TaskRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Global id one past the newest ingested slot (written under the ingest
    /// token only).
    tail: CachePadded<AtomicU64>,
    /// Global id of the next slot to claim.
    next_claim: CachePadded<AtomicU64>,
    /// Global id of the next slot to drain (written under the drain token
    /// only).
    head: CachePadded<AtomicU64>,
    ingest_token: CachePadded<AtomicBool>,
    drain_token: CachePadded<AtomicBool>,
}

impl TaskRing {
    /// Creates a ring with at least `capacity` slots (rounded up to a power
    /// of two, minimum 4).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(4).next_power_of_two();
        TaskRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: capacity as u64 - 1,
            tail: CachePadded::new(AtomicU64::new(0)),
            next_claim: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            ingest_token: CachePadded::new(AtomicBool::new(false)),
            drain_token: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, gid: u64) -> &Slot {
        &self.slots[(gid & self.mask) as usize]
    }

    /// Ingested-but-unclaimed tuples currently available for acquisition.
    #[inline]
    pub fn available(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let claim = self.next_claim.load(Ordering::Relaxed);
        tail.saturating_sub(claim) as usize
    }

    /// Whether every ingested slot has been drained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }

    /// Occupied slots (ingested and not yet drained).
    #[inline]
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Tries to win the ingest token. At most one token exists at a time;
    /// the token is released when the guard drops.
    pub fn try_ingest(&self) -> Option<IngestGuard<'_>> {
        if self.ingest_token.swap(true, Ordering::AcqRel) {
            return None;
        }
        Some(IngestGuard { ring: self })
    }

    /// Claims up to `max` consecutive ingested slots, appending them to `out`
    /// and returning how many were claimed. Lock-free: contended attempts
    /// retry against the freshly observed ticket, and `retries` (reported via
    /// `counters`) measures that contention.
    pub fn claim(
        &self,
        max: usize,
        out: &mut Vec<ClaimedTask>,
        counters: &mut RingCounters,
    ) -> usize {
        debug_assert!(max > 0);
        let mut claim = self.next_claim.load(Ordering::Relaxed);
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            if claim >= tail {
                return 0;
            }
            let end = tail.min(claim + max as u64);
            match self.next_claim.compare_exchange_weak(
                claim,
                end,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    for gid in claim..end {
                        let slot = self.slot(gid);
                        debug_assert_eq!(slot.state.load(Ordering::Relaxed), INGESTED);
                        slot.state.store(ACTIVE, Ordering::Relaxed);
                        let side = if slot.side.load(Ordering::Relaxed) == 0 {
                            StreamSide::R
                        } else {
                            StreamSide::S
                        };
                        out.push(ClaimedTask {
                            gid,
                            tuple: Tuple::new(
                                side,
                                slot.seq.load(Ordering::Relaxed),
                                slot.key.load(Ordering::Relaxed),
                            ),
                            bounds: WindowBounds::new(
                                slot.bound_earliest.load(Ordering::Relaxed),
                                slot.bound_latest.load(Ordering::Relaxed),
                            ),
                        });
                    }
                    counters.tasks_acquired += 1;
                    counters.tuples_acquired += end - claim;
                    return (end - claim) as usize;
                }
                Err(current) => {
                    counters.claim_retries += 1;
                    claim = current;
                }
            }
        }
    }

    /// Publishes the results of a claimed slot, making it eligible for
    /// in-order propagation. `results` is only consulted when the caller
    /// collects result tuples.
    pub fn complete(&self, gid: u64, result_count: u64, results: Vec<JoinResult>) {
        let slot = self.slot(gid);
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), ACTIVE);
        slot.result_count.store(result_count, Ordering::Relaxed);
        if !results.is_empty() {
            *slot.results.lock() = results;
        }
        slot.state.store(COMPLETED, Ordering::Release);
    }

    /// Advances the drain cursor over the completed prefix, invoking
    /// `emit(result_count, results)` per slot in arrival order and recycling
    /// each drained slot. Serialised internally by the drain token: when
    /// another thread is draining, returns `None` immediately so the caller
    /// can go back to useful work.
    pub fn try_drain<F: FnMut(u64, Vec<JoinResult>)>(
        &self,
        collect: bool,
        mut emit: F,
    ) -> Option<u64> {
        if self.drain_token.swap(true, Ordering::AcqRel) {
            return None;
        }
        let mut head = self.head.load(Ordering::Relaxed);
        let start = head;
        loop {
            if head == self.tail.load(Ordering::Acquire) {
                break;
            }
            let slot = self.slot(head);
            if slot.state.load(Ordering::Acquire) != COMPLETED {
                break;
            }
            let count = slot.result_count.load(Ordering::Relaxed);
            let results = if collect {
                std::mem::take(&mut *slot.results.lock())
            } else {
                Vec::new()
            };
            slot.state.store(EMPTY, Ordering::Release);
            head += 1;
            self.head.store(head, Ordering::Release);
            emit(count, results);
        }
        self.drain_token.store(false, Ordering::Release);
        Some(head - start)
    }

    /// Arrival stamp and completion state of the head (next-to-drain) slot,
    /// or `None` when every ingested slot has been drained. Used by the
    /// sharded ring's cross-shard merge cursor: the shard whose head carries
    /// the smallest arrival stamp holds the globally next result. The peek is
    /// only stable while the caller serialises draining (the sharded ring's
    /// global drain token does); concurrent ingestion can only *add* slots
    /// with larger arrival stamps, never disturb the head.
    pub fn head_arrival(&self) -> Option<(u64, bool)> {
        let head = self.head.load(Ordering::Acquire);
        if head == self.tail.load(Ordering::Acquire) {
            return None;
        }
        let slot = self.slot(head);
        let state = slot.state.load(Ordering::Acquire);
        Some((slot.arrival.load(Ordering::Relaxed), state == COMPLETED))
    }

    /// Drains exactly the head slot if it is completed, invoking `emit` and
    /// recycling the slot. Returns `None` when another thread holds the drain
    /// token, otherwise whether a slot was drained. The sharded ring uses
    /// this to interleave drains across shards one arrival at a time.
    pub fn drain_one<F: FnOnce(u64, Vec<JoinResult>)>(
        &self,
        collect: bool,
        emit: F,
    ) -> Option<bool> {
        if self.drain_token.swap(true, Ordering::AcqRel) {
            return None;
        }
        let head = self.head.load(Ordering::Relaxed);
        let mut drained = false;
        if head != self.tail.load(Ordering::Acquire) {
            let slot = self.slot(head);
            if slot.state.load(Ordering::Acquire) == COMPLETED {
                let count = slot.result_count.load(Ordering::Relaxed);
                let results = if collect {
                    std::mem::take(&mut *slot.results.lock())
                } else {
                    Vec::new()
                };
                slot.state.store(EMPTY, Ordering::Release);
                self.head.store(head + 1, Ordering::Release);
                emit(count, results);
                drained = true;
            }
        }
        self.drain_token.store(false, Ordering::Release);
        Some(drained)
    }
}

/// Exclusive ingestion handle; released on drop.
pub struct IngestGuard<'a> {
    ring: &'a TaskRing,
}

impl IngestGuard<'_> {
    /// Whether the slot at `tail` can accept a new tuple right now. Checked
    /// *before* the caller performs its side effects (window append), so a
    /// subsequent [`push`](Self::push) cannot fail: between the check and the
    /// push only the drainer touches the ring, and it only frees slots.
    pub fn can_push(&self) -> bool {
        self.ring.can_push_unguarded()
    }

    /// Ingests one tuple with its opposite-window boundary snapshot. The
    /// caller must gate on [`can_push`](Self::can_push) — pushing into a full
    /// ring corrupts an undrained slot (checked in debug builds only, to keep
    /// the redundant loads off the release ingest path). The slot's arrival
    /// stamp is its gid — correct for a stand-alone ring, where arrival order
    /// and slot order coincide.
    pub fn push(&self, tuple: Tuple, bounds: WindowBounds) -> u64 {
        let gid = self.ring.tail.load(Ordering::Relaxed);
        self.push_with_arrival(tuple, bounds, gid)
    }

    /// [`push`](Self::push) with an explicit arrival stamp, used by the
    /// sharded ring whose router spreads one global arrival order over
    /// several rings. Stamps must be strictly increasing per ring (the
    /// sharded ingest, serialised by its global token, guarantees this).
    pub fn push_with_arrival(&self, tuple: Tuple, bounds: WindowBounds, arrival: u64) -> u64 {
        self.ring.push_unguarded(tuple, bounds, arrival)
    }
}

impl TaskRing {
    /// [`IngestGuard::can_push`] without the token. Crate-internal: the
    /// sharded ring's single *global* ingest token already serialises all
    /// pushes across its shards, so taking every shard's token per ingest
    /// batch would only add allocation and atomic traffic to the hot path.
    #[inline]
    pub(crate) fn can_push_unguarded(&self) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        tail - head < self.capacity() as u64
            && self.slot(tail).state.load(Ordering::Acquire) == EMPTY
    }

    /// [`IngestGuard::push_with_arrival`] without the token; see
    /// [`can_push_unguarded`](Self::can_push_unguarded) for why the sharded
    /// ring may call this. The caller must hold whatever exclusion makes it
    /// the only ingester of this ring.
    pub(crate) fn push_unguarded(&self, tuple: Tuple, bounds: WindowBounds, arrival: u64) -> u64 {
        debug_assert!(self.can_push_unguarded(), "TaskRing::push on a full ring");
        let tail = self.tail.load(Ordering::Relaxed);
        let slot = self.slot(tail);
        slot.arrival.store(arrival, Ordering::Relaxed);
        slot.side.store(tuple.side.index() as u8, Ordering::Relaxed);
        slot.seq.store(tuple.seq, Ordering::Relaxed);
        slot.key.store(tuple.key, Ordering::Relaxed);
        slot.bound_earliest
            .store(bounds.earliest, Ordering::Relaxed);
        slot.bound_latest
            .store(bounds.latest_exclusive, Ordering::Relaxed);
        slot.result_count.store(0, Ordering::Relaxed);
        slot.state.store(INGESTED, Ordering::Release);
        self.tail.store(tail + 1, Ordering::Release);
        tail
    }
}

impl Drop for IngestGuard<'_> {
    fn drop(&mut self) {
        self.ring.ingest_token.store(false, Ordering::Release);
    }
}

// ----------------------------------------------------------------- back-off

/// What one idle round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleKind {
    /// Busy-spun for a short exponentially growing window.
    Spin,
    /// Yielded the time slice to the scheduler.
    Yield,
    /// Slept for the configured short park duration.
    Park,
}

/// Adaptive idle back-off: exponentially growing busy-spin windows, then
/// yields, then short parks. Replaces the engine's former fixed 20µs sleep —
/// a worker that just missed a task burns a few nanoseconds spinning instead
/// of handing its core to the OS, while a genuinely starved worker backs off
/// to a park and stops hammering the shared counters the productive workers
/// need.
#[derive(Debug)]
pub struct Backoff {
    spin_limit: u32,
    yield_limit: u32,
    park: Duration,
    step: u32,
}

impl Backoff {
    /// Creates a back-off following the limits in `config`.
    pub fn new(config: &RingConfig) -> Self {
        Backoff {
            spin_limit: config.spin_limit,
            yield_limit: config.yield_limit,
            park: Duration::from_micros(config.park_micros),
            step: 0,
        }
    }

    /// Forgets accumulated back-off after useful work was found.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Performs one idle round and reports which stage it used.
    pub fn idle(&mut self) -> IdleKind {
        let kind = if self.step < self.spin_limit {
            // 2^step spin hints, capped at 2^10 per round.
            for _ in 0..(1u32 << self.step.min(10)) {
                pimtree_common::sync::hint::spin_loop();
            }
            IdleKind::Spin
        } else if self.step < self.spin_limit.saturating_add(self.yield_limit)
            || self.park.is_zero()
        {
            pimtree_common::sync::hint::yield_now();
            IdleKind::Yield
        } else {
            // Parking blocks the OS thread, which would stall the model
            // scheduler's baton; under the checker it degrades to a yield.
            #[cfg(not(pimtree_model))]
            std::thread::sleep(self.park);
            #[cfg(pimtree_model)]
            pimtree_common::sync::hint::yield_now();
            IdleKind::Park
        };
        self.step = self.step.saturating_add(1);
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimtree_common::RingConfig;

    fn counters() -> RingCounters {
        RingCounters::default()
    }

    fn push_n(ring: &TaskRing, start: u64, n: u64) {
        let guard = ring.try_ingest().expect("token free");
        for i in start..start + n {
            assert!(guard.can_push());
            let gid = guard.push(Tuple::r(i, i as i64 * 10), WindowBounds::new(i, i + 1));
            assert_eq!(gid, i, "gids are assigned consecutively");
        }
    }

    #[test]
    fn capacity_is_rounded_to_a_power_of_two() {
        assert_eq!(TaskRing::with_capacity(0).capacity(), 4);
        assert_eq!(TaskRing::with_capacity(4).capacity(), 4);
        assert_eq!(TaskRing::with_capacity(5).capacity(), 8);
        assert_eq!(TaskRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn claim_is_bounded_by_ingested_tail() {
        let ring = TaskRing::with_capacity(8);
        let mut c = counters();
        let mut out = Vec::new();
        assert_eq!(
            ring.claim(4, &mut out, &mut c),
            0,
            "empty ring yields no tasks"
        );
        push_n(&ring, 0, 3);
        assert_eq!(ring.available(), 3);
        assert_eq!(ring.claim(8, &mut out, &mut c), 3, "claim clamps to tail");
        assert_eq!(ring.claim(8, &mut out, &mut c), 0);
        assert_eq!(out.len(), 3);
        for (i, task) in out.iter().enumerate() {
            assert_eq!(task.gid, i as u64);
            assert_eq!(task.tuple.key, i as i64 * 10);
            assert_eq!(task.bounds.earliest, i as u64);
        }
        assert_eq!(c.tasks_acquired, 1);
        assert_eq!(c.tuples_acquired, 3);
    }

    #[test]
    // 1000 tuples × full state machine per lap: tractable natively, hours
    // under Miri's interpreter. The CI Miri leg runs the short unit tests.
    #[cfg_attr(miri, ignore)]
    fn ticket_claim_and_drain_survive_many_wraparounds() {
        // Capacity 4 and 1000 tuples: every slot is reused 250 times. The
        // single-threaded cycle exercises the full state machine per lap and
        // the gid arithmetic across index wraps.
        let ring = TaskRing::with_capacity(4);
        let mut c = counters();
        let mut next = 0u64;
        let mut drained_order = Vec::new();
        while drained_order.len() < 1000 {
            {
                let guard = ring.try_ingest().unwrap();
                while next < 1000 && guard.can_push() {
                    guard.push(Tuple::r(next, next as i64), WindowBounds::new(0, next + 1));
                    next += 1;
                }
            }
            let mut out = Vec::new();
            while ring.claim(3, &mut out, &mut c) > 0 {}
            for task in out.drain(..) {
                assert_eq!(
                    task.gid, task.tuple.seq,
                    "slot contents follow the gid across wraps"
                );
                ring.complete(task.gid, task.gid * 2, Vec::new());
            }
            ring.try_drain(false, |count, _| drained_order.push(count))
                .unwrap();
        }
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
        // Drained in arrival order: counts are 0, 2, 4, ...
        assert_eq!(drained_order.len(), 1000);
        for (i, &count) in drained_order.iter().enumerate() {
            assert_eq!(count, i as u64 * 2);
        }
        assert_eq!(c.tuples_acquired, 1000);
    }

    #[test]
    fn ingest_stops_at_capacity_until_drained() {
        let ring = TaskRing::with_capacity(4);
        let mut c = counters();
        push_n(&ring, 0, 4);
        {
            let guard = ring.try_ingest().unwrap();
            assert!(!guard.can_push(), "ring full");
        }
        let mut out = Vec::new();
        assert_eq!(ring.claim(2, &mut out, &mut c), 2);
        for t in &out {
            ring.complete(t.gid, 0, Vec::new());
        }
        // Still full: completed slots free up only after the drain.
        assert!(!ring.try_ingest().unwrap().can_push());
        assert_eq!(ring.try_drain(false, |_, _| {}), Some(2));
        push_n(&ring, 4, 2);
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn drain_stops_at_the_first_uncompleted_slot() {
        let ring = TaskRing::with_capacity(8);
        let mut c = counters();
        push_n(&ring, 0, 4);
        let mut out = Vec::new();
        ring.claim(4, &mut out, &mut c);
        // Complete out of order: 1, 2 and 3 but not 0.
        for t in out.iter().skip(1) {
            ring.complete(t.gid, 7, Vec::new());
        }
        assert_eq!(
            ring.try_drain(false, |_, _| panic!("nothing completed at head")),
            Some(0)
        );
        ring.complete(out[0].gid, 7, Vec::new());
        let mut drained = 0;
        assert_eq!(ring.try_drain(false, |_, _| drained += 1), Some(4));
        assert_eq!(drained, 4, "whole completed prefix drains at once");
    }

    #[test]
    fn tokens_are_exclusive() {
        let ring = TaskRing::with_capacity(8);
        let guard = ring.try_ingest().unwrap();
        assert!(ring.try_ingest().is_none(), "second ingest token denied");
        drop(guard);
        assert!(ring.try_ingest().is_some(), "token released on drop");
        push_n(&ring, 0, 1);
        let mut out = Vec::new();
        ring.claim(1, &mut out, &mut counters());
        ring.complete(0, 0, Vec::new());
        // A drain in progress blocks a second drainer (observed via the
        // callback running while the second attempt happens).
        let ring2 = &ring;
        ring.try_drain(false, |_, _| {
            assert!(ring2.try_drain(false, |_, _| {}).is_none());
        })
        .unwrap();
    }

    #[test]
    fn collected_results_travel_through_the_slot() {
        let ring = TaskRing::with_capacity(4);
        let mut c = counters();
        push_n(&ring, 0, 1);
        let mut out = Vec::new();
        ring.claim(1, &mut out, &mut c);
        let probe = out[0].tuple;
        let matched = Tuple::s(9, 99);
        ring.complete(0, 1, vec![JoinResult::new(probe, matched)]);
        let mut seen = Vec::new();
        ring.try_drain(true, |count, results| seen.push((count, results)))
            .unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 1);
        assert_eq!(seen[0].1.len(), 1);
        assert_eq!(seen[0].1[0].matched.key, 99);
    }

    #[test]
    // 9 OS threads spin-waiting on each other: Miri serialises them and the
    // back-off never sleeps, so this takes unbounded wall-clock there.
    #[cfg_attr(miri, ignore)]
    fn concurrent_claims_partition_the_ring() {
        // 8 claimers race over one producer's slots; every gid must be
        // claimed exactly once and drain in order.
        let ring = std::sync::Arc::new(TaskRing::with_capacity(64));
        let total = 20_000u64;
        let claimed = std::sync::Arc::new(AtomicU64::new(0));
        let drained = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ring = ring.clone();
                let claimed = claimed.clone();
                let drained = drained.clone();
                scope.spawn(move || {
                    let mut c = RingCounters::default();
                    let mut out = Vec::new();
                    loop {
                        out.clear();
                        if ring.claim(2, &mut out, &mut c) > 0 {
                            for t in &out {
                                // gid uniqueness: seq must equal gid, and the
                                // per-gid counter below must never double-add.
                                assert_eq!(t.gid, t.tuple.seq);
                                ring.complete(t.gid, 1, Vec::new());
                                claimed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let mut local = 0;
                        if let Some(n) = ring.try_drain(false, |count, _| local += count) {
                            assert_eq!(local, n);
                            drained.fetch_add(n, Ordering::Relaxed);
                        }
                        if drained.load(Ordering::Relaxed) == total {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            let ring = ring.clone();
            scope.spawn(move || {
                let mut next = 0u64;
                while next < total {
                    if let Some(guard) = ring.try_ingest() {
                        while next < total && guard.can_push() {
                            guard.push(Tuple::r(next, 0), WindowBounds::empty());
                            next += 1;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(claimed.load(Ordering::Relaxed), total);
        assert_eq!(drained.load(Ordering::Relaxed), total);
        assert!(ring.is_empty());
    }

    #[test]
    fn head_arrival_and_drain_one_step_through_slots() {
        let ring = TaskRing::with_capacity(8);
        let mut c = counters();
        assert_eq!(ring.head_arrival(), None, "empty ring has no head");
        // Explicit arrival stamps (as the sharded router would assign them).
        {
            let guard = ring.try_ingest().unwrap();
            for (i, arrival) in [5u64, 9, 12].into_iter().enumerate() {
                guard.push_with_arrival(Tuple::r(i as u64, 0), WindowBounds::empty(), arrival);
            }
        }
        assert_eq!(ring.head_arrival(), Some((5, false)), "ingested, not done");
        assert_eq!(
            ring.drain_one(false, |_, _| panic!("head not completed")),
            Some(false)
        );
        let mut out = Vec::new();
        ring.claim(3, &mut out, &mut c);
        // Complete out of order: the head peek reflects only the head slot.
        ring.complete(out[1].gid, 1, Vec::new());
        assert_eq!(ring.head_arrival(), Some((5, false)));
        ring.complete(out[0].gid, 7, Vec::new());
        assert_eq!(ring.head_arrival(), Some((5, true)));
        let mut seen = Vec::new();
        assert_eq!(ring.drain_one(false, |n, _| seen.push(n)), Some(true));
        assert_eq!(ring.head_arrival(), Some((9, true)));
        assert_eq!(ring.drain_one(false, |n, _| seen.push(n)), Some(true));
        assert_eq!(ring.head_arrival(), Some((12, false)));
        ring.complete(out[2].gid, 3, Vec::new());
        assert_eq!(ring.drain_one(false, |n, _| seen.push(n)), Some(true));
        assert_eq!(seen, vec![7, 1, 3]);
        assert!(ring.is_empty());
        assert_eq!(ring.head_arrival(), None);
        // Plain pushes stamp the gid as the arrival.
        push_n(&ring, 3, 1);
        assert_eq!(ring.head_arrival(), Some((3, false)));
    }

    #[test]
    fn backoff_escalates_spin_yield_park_and_resets() {
        let config = RingConfig::default().with_backoff(2, 2, 1);
        let mut b = Backoff::new(&config);
        assert_eq!(b.idle(), IdleKind::Spin);
        assert_eq!(b.idle(), IdleKind::Spin);
        assert_eq!(b.idle(), IdleKind::Yield);
        assert_eq!(b.idle(), IdleKind::Yield);
        assert_eq!(b.idle(), IdleKind::Park);
        assert_eq!(b.idle(), IdleKind::Park);
        b.reset();
        assert_eq!(b.idle(), IdleKind::Spin);
        // park_micros == 0 never parks.
        let mut b = Backoff::new(&RingConfig::default().with_backoff(1, 1, 0));
        b.idle();
        b.idle();
        assert_eq!(b.idle(), IdleKind::Yield);
        assert_eq!(b.idle(), IdleKind::Yield);
    }
}
