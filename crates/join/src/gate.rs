//! The migration quiesce gate: the Dekker-style handshake that stops task
//! acquisition before a merge phase transition or repartition mutates shared
//! index structures.
//!
//! # Protocol
//!
//! Workers bracket every task with [`QuiesceGate::try_enter`] /
//! [`QuiesceGate::exit`]; a phase transition calls [`QuiesceGate::close`]
//! followed by [`QuiesceGate::await_quiesce`] and reopens with
//! [`QuiesceGate::open`] once the mutation is done.
//!
//! The handshake is a store-then-load on both sides, and both sides are
//! `SeqCst`, which is what makes it race-free:
//!
//! * the worker *increments `in_flight`, then loads the gate*;
//! * the closer *stores the gate, then loads `in_flight`*.
//!
//! In every interleaving the closer either observes the worker's increment
//! and waits for it to drain, or the worker observes the closed gate and
//! backs out — a claim can never slip past a closing gate unnoticed. With
//! any weaker ordering both loads may read stale values (both sides pass),
//! and a worker keeps mutating the index mid-migration. The model test
//! `checker/tests/gate_model.rs` pins exactly this property, and the
//! mutation harness (`checker/tests/mutation_harness.rs`) proves the
//! checker catches the skipped-gate-check variant.

use pimtree_common::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Close-and-drain gate guarding task acquisition against concurrent
/// structural mutation. See the module docs for the protocol.
#[derive(Debug, Default)]
pub struct QuiesceGate {
    /// Blocks new task acquisition while a phase transition is pending.
    closed: AtomicBool,
    /// Number of tasks currently being processed (entered, not yet done with
    /// their index updates) — transiently also counts entry attempts, which
    /// is what makes the handshake race-free.
    in_flight: AtomicUsize,
}

impl QuiesceGate {
    /// An open gate with nothing in flight.
    pub fn new() -> Self {
        QuiesceGate {
            closed: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Announces a task attempt and checks the gate. Returns `true` with the
    /// in-flight count held (the caller must [`Self::exit`] when the task is
    /// done); on `false` the attempt has already been withdrawn.
    ///
    /// The increment *must* precede the gate load, and both must be
    /// `SeqCst`: this store-then-load against [`Self::close`]'s opposite
    /// store-then-load is the whole protocol.
    pub fn try_enter(&self) -> bool {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Retires a task previously admitted by [`Self::try_enter`].
    pub fn exit(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Closes the gate: subsequent [`Self::try_enter`] calls fail until
    /// [`Self::open`]. Does not wait for in-flight tasks — pair with
    /// [`Self::await_quiesce`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Spins until every admitted task has exited. With the gate closed, no
    /// new task can be admitted, so quiescence is stable until [`Self::open`].
    pub fn await_quiesce(&self) {
        while self.in_flight.load(Ordering::SeqCst) > 0 {
            pimtree_common::sync::hint::yield_now();
        }
    }

    /// Reopens the gate.
    pub fn open(&self) {
        self.closed.store(false, Ordering::SeqCst);
    }

    /// Snapshot of the in-flight count (telemetry only; racy by nature).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }
}
